//! SchemaLog_d in action (paper §4.2 / Theorem 4.5): querying *and*
//! restructuring with relation and attribute names as first-class
//! citizens, evaluated natively and — equivalently — through the tabular
//! algebra.
//!
//! ```sh
//! cargo run --example schemalog_interop
//! ```

use tables_paradigm::prelude::*;
use tables_paradigm::schemalog::{
    eval::{eval, SlLimits, Strategy},
    parser::parse as sl_parse,
    quads::QuadDb,
    translate::run_translated,
};

fn main() {
    let db = RelDatabase::from_relations([
        Relation::new(
            "sales",
            &["part", "region", "sold"],
            &[
                &["nuts", "east", "50"],
                &["nuts", "west", "60"],
                &["screws", "north", "60"],
                &["bolts", "east", "70"],
                &["bolts", "north", "40"],
            ],
        ),
        Relation::new("watchlist", &["part"], &[&["bolts"]]),
    ]);
    let quads = QuadDb::from_relations(&db);
    println!(
        "Input: {} relations, {} quadruple facts",
        db.relations().len(),
        quads.len()
    );

    // A program mixing querying (joins, negation, built-ins) with
    // SchemaLog's signature restructuring: a *variable* head relation
    // creates one relation per region — the logic-programming counterpart
    // of the paper's SPLIT (SalesInfo4).
    let src = "
        -- strong sales: at least 60 sold, not on the watchlist
        strong[T : part -> P, sold -> S] :-
            sales[T : part -> P], sales[T : sold -> S], S >= 60,
            not watchlist[U : part -> P].

        -- restructure: one relation per region, named by the region value
        R[T : part -> P, sold -> S] :-
            sales[T : region -> R], sales[T : part -> P], sales[T : sold -> S].
    ";
    let program = sl_parse(src).expect("program parses");
    println!("Program:\n{src}");

    let out = eval(&program, &quads, Strategy::SemiNaive, &SlLimits::default())
        .expect("evaluation succeeds");

    let strong = out.to_relations(&[Symbol::name("strong")]);
    println!("strong (native evaluation):");
    print_relation(strong.get_str("strong").unwrap());

    // The dynamically-created per-region relations are named by *values*.
    for region in ["east", "west", "north"] {
        let rels = out.to_relations(&[Symbol::value(region)]);
        let rel = rels.get(Symbol::value(region)).unwrap();
        println!("relation {region:?} ({} tuples):", rel.len());
        print_relation(rel);
    }

    // ------------------------------------------------------------------
    // Theorem 4.5: the program runs through the tabular algebra — order
    // built-ins included, via the materialized Ord relation.
    // ------------------------------------------------------------------
    let ta_fragment = sl_parse(
        "
        eastern[T : part -> P, sold -> S] :-
            sales[T : region -> v:east], sales[T : part -> P], sales[T : sold -> S],
            S >= 50, not watchlist[U : part -> P].
        ",
    )
    .unwrap();
    let native = eval(
        &ta_fragment,
        &quads,
        Strategy::SemiNaive,
        &SlLimits::default(),
    )
    .unwrap();
    let via_ta = run_translated(&ta_fragment, &quads, &EvalLimits::default())
        .expect("translation + TA run succeed");
    let native_rel = native.to_relations(&[Symbol::name("eastern")]);
    let ta_rel = via_ta.to_relations(&[Symbol::name("eastern")]);
    assert!(
        native_rel
            .get_str("eastern")
            .unwrap()
            .equiv(ta_rel.get_str("eastern").unwrap()),
        "Theorem 4.5: TA path must agree with native evaluation"
    );
    println!("eastern — native and TA-translated evaluations agree ✓");
    print_relation(ta_rel.get_str("eastern").unwrap());
}

fn print_relation(r: &Relation) {
    println!("{}", r.to_table());
}
