//! Quickstart: build tables, run tabular algebra statements, and print the
//! results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tables_paradigm::prelude::*;

fn main() {
    // A table is a matrix with a name, column attributes, row attributes,
    // and data entries (paper §2, Figure 2). Relational tables are the
    // special case with ⊥ row attributes.
    let sales = Table::relational(
        "Sales",
        &["Part", "Region", "Sold"],
        &[
            &["nuts", "east", "50"],
            &["nuts", "west", "60"],
            &["bolts", "east", "70"],
        ],
    );
    println!("A relational table:\n{sales}");

    let db = Database::from_tables([sales]);

    // Tabular algebra programs are sequences of assignment statements; the
    // textual syntax mirrors the paper's notation.
    let program = parse(
        "
        -- restructure: one Sold column per region (cf. SalesInfo2)
        Cross <- GROUP[by {Region} on {Sold}](Sales)
        Cross <- CLEANUP[by {Part} on {_}](Cross)
        Cross <- PURGE[on {Sold} by {Region}](Cross)

        -- query: parts sold in the east
        East  <- SELECTCONST[Region = v:east](Sales)
        East  <- PROJECT[{Part}](East)
        ",
    )
    .expect("program parses");

    let out = run(&program, &db, &EvalLimits::default()).expect("program runs");

    println!(
        "Cross-tab (GROUP + CLEAN-UP + PURGE):\n{}",
        out.table_str("Cross").expect("Cross produced")
    );
    println!(
        "Parts sold in the east:\n{}",
        out.table_str("East").expect("East produced")
    );

    // The same cross-tab via the OLAP layer's one-call pivot.
    let mut pivoted = pivot(
        db.table_str("Sales").unwrap(),
        Symbol::name("Region"),
        Symbol::name("Sold"),
        &EvalLimits::default(),
    )
    .expect("pivot runs");
    pivoted.set_name(Symbol::name("Cross"));
    assert!(pivoted.equiv(out.table_str("Cross").unwrap()));
    println!("olap::pivot agrees with the hand-written program ✓");
}
