//! GOOD, the graph-oriented object database model, embedded in the
//! tabular model (paper contribution 4): build an object base, transform
//! it with GOOD operations, and run the same program through the tabular
//! algebra.
//!
//! ```sh
//! cargo run --example good_objects
//! ```

use tables_paradigm::good::{
    compile::run_via_ta,
    embed::to_tabular,
    graph::Graph,
    ops::{GoodOp, GoodProgram},
    pattern::Pattern,
};
use tables_paradigm::prelude::*;

fn main() {
    // An object base: papers, authors, topics.
    let mut g = Graph::new();
    let alice = g.add_node(Symbol::name("Author"));
    let bob = g.add_node(Symbol::name("Author"));
    let p1 = g.add_node(Symbol::name("Paper"));
    let p2 = g.add_node(Symbol::name("Paper"));
    let p3 = g.add_node(Symbol::name("Paper"));
    let db_theory = g.add_node(Symbol::name("Topic"));
    let olap = g.add_node(Symbol::name("Topic"));
    for (paper, author) in [(p1, alice), (p2, alice), (p2, bob), (p3, bob)] {
        g.add_edge(paper, Symbol::name("by"), author);
    }
    for (paper, topic) in [(p1, db_theory), (p2, db_theory), (p3, olap)] {
        g.add_edge(paper, Symbol::name("about"), topic);
    }
    println!(
        "Object base: {} objects, {} edges",
        g.node_count(),
        g.edge_count()
    );
    println!("Tabular embedding:\n{}", to_tabular(&g));

    // A GOOD program: derive co-authorship edges, materialize a
    // Collaboration object per co-author pair, and abstract papers into
    // areas by their topic neighborhoods.
    let coauthor = GoodOp::EdgeAddition {
        pattern: Pattern::new()
            .node(0, "Author")
            .node(1, "Author")
            .node(2, "Paper")
            .edge(2, "by", 0)
            .edge(2, "by", 1),
        label: Symbol::name("coauthor"),
        from: 0,
        to: 1,
    };
    let collaboration = GoodOp::NodeAddition {
        pattern: Pattern::new()
            .node(0, "Author")
            .node(1, "Author")
            .edge(0, "coauthor", 1),
        label: Symbol::name("Collaboration"),
        edges: vec![(Symbol::name("member"), 0), (Symbol::name("member"), 1)],
        key: vec![],
    };
    let areas = GoodOp::Abstraction {
        node_label: Symbol::name("Paper"),
        via: Symbol::name("about"),
        label: Symbol::name("Area"),
        link: Symbol::name("contains"),
    };

    let program = GoodProgram::new()
        .op(coauthor.clone())
        .op(collaboration.clone())
        .op(areas);
    let out = program.run(&g, 100).expect("GOOD program runs");
    println!(
        "After the program: {} objects, {} edges",
        out.node_count(),
        out.edge_count()
    );
    println!(
        "Collaborations: {}  Areas: {}",
        out.nodes_labeled(Symbol::name("Collaboration")).len(),
        out.nodes_labeled(Symbol::name("Area")).len()
    );
    // Alice coauthors with herself? No: the homomorphism 0=1 exists, so a
    // coauthor self-loop appears per author with a shared paper — the
    // classic GOOD subtlety. Count the proper pairs.
    let coauthors = out
        .edges()
        .iter()
        .filter(|&&(s, l, d)| l == Symbol::name("coauthor") && s != d)
        .count();
    println!("Proper coauthor edges: {coauthors}");

    // The additive fragment (edge + node additions) runs through the
    // tabular algebra: compile to FO + while + new, then Theorem 4.1.
    // Note the asymmetric edge labels: native node addition carries GOOD's
    // no-duplicate guard, which collapses symmetric wirings (a
    // Collaboration{member→a, member→b} equals {member→b, member→a});
    // the compiled fragment is guard-free, so TA-compared programs use
    // wirings that identify the ordered footprint.
    let ordered_collab = GoodOp::NodeAddition {
        pattern: Pattern::new()
            .node(0, "Author")
            .node(1, "Author")
            .edge(0, "coauthor", 1),
        label: Symbol::name("OrderedCollab"),
        edges: vec![(Symbol::name("first"), 0), (Symbol::name("second"), 1)],
        key: vec![],
    };
    let additive = GoodProgram::new().op(coauthor).op(ordered_collab);
    let native = additive.run(&g, 100).unwrap();
    let via_ta =
        run_via_ta(&additive, &g, &EvalLimits::default()).expect("compiled TA program runs");
    assert!(
        native.equiv(&via_ta),
        "native and TA-compiled runs must be isomorphic"
    );
    println!("Additive fragment: native and TA-compiled runs are isomorphic ✓");
}
