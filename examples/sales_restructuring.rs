//! The paper's headline demonstration (Figure 1 and §1): the same sales
//! data in four tabular representations, with tabular algebra programs
//! restructuring between them — "it is possible to restructure the data
//! from any of the representations SalesInfo2–SalesInfo4 in Figure 1 to
//! any other".
//!
//! ```sh
//! cargo run --example sales_restructuring
//! ```

use tables_paradigm::prelude::*;

fn main() {
    let info1 = fixtures::sales_info1();
    let info2 = fixtures::sales_info2();
    let info4 = fixtures::sales_info4();

    println!("SalesInfo1 — the relational representation:\n{info1}");

    // ------------------------------------------------------------------
    // SalesInfo1 → SalesInfo2: the §3.4 walk-through
    //   GROUP by Region on Sold; CLEAN-UP by Part on ⊥; PURGE on Sold by Region
    // ------------------------------------------------------------------
    let to_info2 = parse(
        "
        Sales <- GROUP[by {Region} on {Sold}](Sales)
        Sales <- CLEANUP[by {Part} on {_}](Sales)
        Sales <- PURGE[on {Sold} by {Region}](Sales)
        ",
    )
    .unwrap();
    let got2 = run(&to_info2, &info1, &EvalLimits::default()).unwrap();
    println!("SalesInfo1 → SalesInfo2 (group, clean-up, purge):\n{got2}");
    assert!(got2.equiv(&info2), "must reproduce the bold SalesInfo2");

    // ------------------------------------------------------------------
    // SalesInfo2 → SalesInfo1: Figure 5's merge, then ⊥-row elimination
    // via the paper's projection/union/difference derivation.
    // ------------------------------------------------------------------
    let to_info1 = parse(
        "
        Flat  <- MERGE[on {Sold} by {Region}](Sales)
        Keys  <- PROJECT[{* \\ Sold}](Flat)
        VCol  <- PROJECT[{Sold}](Flat)
        VCol  <- DIFFERENCE(VCol, VCol)
        Pad   <- UNION(Keys, VCol)
        Flat  <- DIFFERENCE(Flat, Pad)
        Sales <- CLEANUP[by {*} on {_}](Flat)
        ",
    )
    .unwrap();
    let got1 = run_outputs(
        &to_info1,
        &info2,
        &[Symbol::name("Sales")],
        &EvalLimits::default(),
    )
    .unwrap();
    println!("SalesInfo2 → SalesInfo1 (merge, ⊥-elimination, clean-up):\n{got1}");
    let back = got1.table_str("Sales").unwrap();
    let rel = fixtures::sales_relation();
    assert_eq!(back.height(), rel.height());

    // ------------------------------------------------------------------
    // SalesInfo1 → SalesInfo4: SPLIT on Region.
    // ------------------------------------------------------------------
    let to_info4 = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
    let got4 = run(&to_info4, &info1, &EvalLimits::default()).unwrap();
    println!(
        "SalesInfo1 → SalesInfo4 (split): {} tables named Sales",
        got4.len()
    );
    println!("{got4}");
    assert!(got4.equiv(&info4));

    // ------------------------------------------------------------------
    // SalesInfo4 → SalesInfo1: COLLAPSE by Region, then redundancy removal.
    // ------------------------------------------------------------------
    let to_info1_from4 = parse(
        "
        Sales <- COLLAPSE[by {Region}](Sales)
        Sales <- PURGE[on {*} by {}](Sales)
        Sales <- CLEANUP[by {*} on {_}](Sales)
        ",
    )
    .unwrap();
    let got1b = run(&to_info1_from4, &info4, &EvalLimits::default()).unwrap();
    let collapsed = got1b.table_str("Sales").unwrap();
    println!("SalesInfo4 → relational form (collapse, purge, clean-up):\n{collapsed}");
    assert_eq!(collapsed.height(), rel.height());

    // ------------------------------------------------------------------
    // SalesInfo3: the 2-dimensional cube view (data as attributes).
    // ------------------------------------------------------------------
    let cube = Cube::from_table(
        &rel,
        &[Symbol::name("Region"), Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
    )
    .unwrap();
    let info3_table = cube.to_table_2d().unwrap();
    println!("SalesInfo3 — the cube view (row/column names are data):\n{info3_table}");
    let info3 = fixtures::sales_info3();
    assert!(info3_table.equiv(info3.table_str("Sales").unwrap()));

    // ------------------------------------------------------------------
    // Absorbing summary data (the regular-outline parts of Figure 1).
    // ------------------------------------------------------------------
    let with_totals = add_totals(
        got2.table_str("Sales").unwrap(),
        &[Symbol::name("Region")],
        &[Symbol::name("Part")],
        Agg::Sum,
    )
    .unwrap();
    println!("SalesInfo2 with absorbed OLAP summaries:\n{with_totals}");
    let full2 = fixtures::sales_info2_full();
    assert!(with_totals.equiv(full2.table_str("Sales").unwrap()));

    println!("All restructurings verified against Figure 1 ✓");
}
