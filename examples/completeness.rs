//! Theorem 4.4, the completeness normal form, end-to-end: schema-level
//! transformations that no fixed-scheme query could express, run through
//! `P_Rep ∘ P ∘ P_Rep⁻¹` — both with the reference FO interpreter in the
//! middle and with the middle program compiled to the tabular algebra.
//!
//! ```sh
//! cargo run --example completeness
//! ```

use tables_paradigm::canonical::normal_form::{drop_tables, rename_tables, transpose_all};
use tables_paradigm::canonical::{check_fds, decode, encode};
use tables_paradigm::prelude::*;

fn main() {
    let db = fixtures::sales_info1_full();
    println!(
        "Input: SalesInfo1-full, {} tables, {} cells",
        db.len(),
        db.cell_count()
    );

    // ------------------------------------------------------------------
    // The canonical representation (Lemmas 4.2/4.3) in action.
    // ------------------------------------------------------------------
    let rep = encode(&db);
    println!(
        "Rep(D): Data has {} quadruples, Map has {} id→entry pairs",
        rep.get_str("Data").unwrap().len(),
        rep.get_str("Map").unwrap().len()
    );
    assert_eq!(check_fds(&rep), None, "Rep functional dependencies hold");
    let back = decode(&rep).unwrap();
    assert!(back.equiv(&db), "D = Rep⁻¹(Rep(D))");
    println!("Round trip D = Rep⁻¹(Rep(D)) verified ✓\n");

    // ------------------------------------------------------------------
    // Transformation 1: rename every Sales table to Orders. Over Rep this
    // touches one relation (Map); over the original schemes it would not
    // even be a well-typed query.
    // ------------------------------------------------------------------
    let t = rename_tables("Sales", "Orders");
    let renamed = t.apply(&db, 1000).unwrap();
    println!(
        "rename-tables: Sales → Orders; tables now named: {:?}",
        renamed
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
    );
    let via_ta = t.apply_via_ta(&db, &EvalLimits::default()).unwrap();
    assert!(renamed.equiv(&via_ta));
    println!("  native pipeline = TA-compiled pipeline ✓\n");

    // ------------------------------------------------------------------
    // Transformation 2: transpose every table in the database — a global
    // exchange of the row and column axes, done by swapping two columns
    // of Data.
    // ------------------------------------------------------------------
    let t = transpose_all();
    let flipped = t.apply(&db, 1000).unwrap();
    let expected = Database::from_tables(db.tables().iter().map(|x| x.transpose()));
    assert!(flipped.equiv(&expected));
    println!("transpose-all: every table transposed (checked per-table) ✓");
    let twice = t.apply(&flipped, 1000).unwrap();
    assert!(twice.equiv(&db));
    println!("  involution: applying it twice is the identity ✓\n");

    // ------------------------------------------------------------------
    // Transformation 3: drop a whole name-group of tables.
    // ------------------------------------------------------------------
    let t = drop_tables("GrandTotal");
    let dropped = t.apply(&db, 1000).unwrap();
    assert_eq!(dropped.len(), db.len() - 1);
    assert!(dropped.table_str("GrandTotal").is_none());
    println!(
        "drop-tables: GrandTotal removed; {} tables remain ✓",
        dropped.len()
    );

    // ------------------------------------------------------------------
    // Composition: transformations compose like functions.
    // ------------------------------------------------------------------
    let composed = {
        let step1 = rename_tables("Sales", "Orders").apply(&db, 1000).unwrap();
        let step2 = drop_tables("GrandTotal").apply(&step1, 1000).unwrap();
        transpose_all().apply(&step2, 1000).unwrap()
    };
    println!(
        "composed (rename ∘ drop ∘ transpose): {} tables, {} cells",
        composed.len(),
        composed.cell_count()
    );
    println!("\nTheorem 4.4 normal form demonstrated end to end ✓");
}
