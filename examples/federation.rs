//! Federations of tabular databases (paper §4.2): several autonomous
//! databases flatten into one tabular database under qualified names, the
//! algebra runs unchanged across them, and results route back to members.
//!
//! ```sh
//! cargo run --example federation
//! ```

use tables_paradigm::algebra::federation::Federation;
use tables_paradigm::prelude::*;

fn main() {
    // Three branch databases, each with its own Sales table.
    let mut fed = Federation::new();
    for (branch, rows) in [
        ("east", vec![["nuts", "50"], ["bolts", "70"]]),
        ("west", vec![["nuts", "60"], ["screws", "50"]]),
        ("north", vec![["screws", "60"], ["bolts", "40"]]),
    ] {
        let refs: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        fed.insert(
            branch,
            Database::from_tables([Table::relational("Sales", &["Part", "Sold"], &refs)]),
        );
    }
    println!(
        "Federation members: {:?} ({} tables total)",
        fed.member_names(),
        fed.table_count()
    );
    println!("Flattened view:\n{}", fed.flatten());

    // One program, three databases: merge every branch into a warehouse
    // member, tag each row with its branch along the way (the branch name
    // is restructured *into* the data — interoperability à la SchemaLog).
    let program = parse(
        "
        Merged    <- CLASSICALUNION(east.Sales, west.Sales)
        Merged    <- CLASSICALUNION(Merged, north.Sales)
        warehouse.Sales <- COPY(Merged)

        -- per-branch cross-tabs computed in place, inside each member
        *1 <- GROUP[by {Part} on {Sold}](*1)
        *1 <- CLEANUP[by {} on {_}](*1)
        *1 <- PURGE[on {Sold} by {Part}](*1)
        ",
    )
    .expect("program parses");

    let out = fed
        .run_program(&program, "main", &EvalLimits::default())
        .expect("federated run succeeds");

    let warehouse = out.member("warehouse").expect("warehouse member created");
    println!("warehouse.Sales (cross-tab over the merged data):");
    println!("{}", warehouse.table_str("Sales").unwrap());

    for branch in ["east", "west", "north"] {
        let db = out.member(branch).unwrap();
        println!(
            "{branch}.Sales, pivoted in place:\n{}",
            db.table_str("Sales").unwrap()
        );
    }
    println!("Federated restructuring complete ✓");
}
