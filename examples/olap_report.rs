//! An OLAP session on a synthetic sales workload (paper §4.3): cube
//! construction, roll-ups, slicing, classification, and a pivoted report
//! with absorbed totals — all grounded in the tabular model.
//!
//! ```sh
//! cargo run --example olap_report
//! ```

use tables_paradigm::prelude::*;

fn main() {
    // A deterministic scaled-up SalesInfo1: 12 parts × 6 regions, ~75%
    // of the pairs have a sale.
    let facts = fixtures::make_sales_relation(12, 6);
    println!(
        "Fact table: {} rows over attributes {:?}",
        facts.height(),
        facts
            .col_attrs()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // Cube + roll-ups.
    // ------------------------------------------------------------------
    let cube = Cube::from_table(
        &facts,
        &[Symbol::name("Region"), Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
    )
    .unwrap();
    println!(
        "Cube: {} × {} cells",
        cube.dims()[0].members.len(),
        cube.dims()[1].members.len()
    );

    let by_region = cube.rollup(1, Agg::Sum);
    println!("\nSales per region (roll-up over parts):");
    for (i, region) in by_region.dims()[0].members.iter().enumerate() {
        let total = by_region.get(&[i]).unwrap_or(0.0);
        println!("  {region:<12} {total:>8}");
    }
    println!("Grand total: {}", cube.grand_total(Agg::Sum).unwrap_or(0.0));

    // Summaries as relations (the SalesInfo1 summary tables).
    let per_part = summarize(
        &facts,
        &[Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
        "TotalPartSales",
        "Total",
    )
    .unwrap();
    println!("\nTotalPartSales ({} rows), first rows:", per_part.height());
    let preview = per_part.retain_rows(|i| i <= 3);
    println!("{preview}");

    // ------------------------------------------------------------------
    // Classification (the paper's announced future-work operation).
    // ------------------------------------------------------------------
    let classifier = tabular_olap::Classifier::quantiles(
        &facts,
        Symbol::name("Sold"),
        3,
        &["low", "mid", "high"],
    )
    .unwrap();
    let classified = tabular_olap::classify::classify_table(
        &facts,
        Symbol::name("Sold"),
        &classifier,
        Symbol::name("Band"),
    )
    .unwrap();

    // ------------------------------------------------------------------
    // The pivoted report: parts × regions cross-tab with totals, computed
    // by a tabular algebra program.
    // ------------------------------------------------------------------
    let cross = pivot(
        &facts,
        Symbol::name("Region"),
        Symbol::name("Sold"),
        &EvalLimits::default(),
    )
    .unwrap();
    let report = add_totals(
        &cross,
        &[Symbol::name("Region")],
        &[Symbol::name("Part")],
        Agg::Sum,
    )
    .unwrap();
    println!("Cross-tab report with totals (first columns):");
    let slim = report.select_cols(&(1..=report.width().min(6)).collect::<Vec<_>>());
    println!("{slim}");

    // Cross-check: the report's grand total equals the cube's.
    let corner = report.get(report.height(), report.width());
    let expected = cube.grand_total(Agg::Sum).unwrap();
    assert_eq!(corner, Symbol::value(&format!("{}", expected as i64)));

    // Band × region cross-tab over the classified data.
    let band_cross = pivot(
        &classified.select_cols(&[2, 3, 4]), // Region, Sold, Band
        Symbol::name("Band"),
        Symbol::name("Sold"),
        &EvalLimits::default(),
    )
    .unwrap();
    println!("Bands cross-tab (region rows preserved implicitly):\n{band_cross}");

    println!("OLAP report complete; totals verified against the cube ✓");
}
