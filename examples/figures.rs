//! Regenerate every figure of the paper and check it against the stored
//! expectation — the per-figure index of EXPERIMENTS.md in executable
//! form.
//!
//! ```sh
//! cargo run --example figures
//! ```

use tables_paradigm::prelude::*;

fn check(label: &str, ok: bool) {
    println!("{} {label}", if ok { "✓" } else { "✗" });
    assert!(ok, "{label} failed");
}

fn main() {
    // ------------------------------------------------------------------
    // Figure 1: the four sales databases, bold and full versions.
    // ------------------------------------------------------------------
    println!("=== Figure 1 ===");
    for (name, db) in [
        ("SalesInfo1", fixtures::sales_info1_full()),
        ("SalesInfo2", fixtures::sales_info2_full()),
        ("SalesInfo3", fixtures::sales_info3_full()),
        ("SalesInfo4", fixtures::sales_info4_full()),
    ] {
        println!("\n--- {name} ---\n{db}");
    }

    // The four representations carry the same information: each derived
    // from SalesInfo1 by a tabular algebra program / cube view.
    let info1 = fixtures::sales_info1();
    let p2 = parse(
        "Sales <- GROUP[by {Region} on {Sold}](Sales)
         Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    check(
        "Figure 1: SalesInfo1 → SalesInfo2 by TA program",
        run(&p2, &info1, &EvalLimits::default())
            .unwrap()
            .equiv(&fixtures::sales_info2()),
    );
    let p4 = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
    check(
        "Figure 1: SalesInfo1 → SalesInfo4 by TA program",
        run(&p4, &info1, &EvalLimits::default())
            .unwrap()
            .equiv(&fixtures::sales_info4()),
    );
    let cube = Cube::from_table(
        &fixtures::sales_relation(),
        &[Symbol::name("Region"), Symbol::name("Part")],
        Symbol::name("Sold"),
        Agg::Sum,
    )
    .unwrap();
    check(
        "Figure 1: SalesInfo1 → SalesInfo3 via the 2-d cube view",
        cube.to_table_2d()
            .unwrap()
            .equiv(fixtures::sales_info3().table_str("Sales").unwrap()),
    );
    {
        use tables_paradigm::canonical::normal_form::{matrix_to_relation, relation_to_matrix};
        check(
            "Figure 1: SalesInfo3 → SalesInfo1 via the Theorem 4.4 normal form",
            matrix_to_relation("Sales", "Region", "Part", "Sold")
                .apply(&fixtures::sales_info3(), 1000)
                .unwrap()
                .equiv(&fixtures::sales_info1()),
        );
        check(
            "Figure 1: SalesInfo1 → SalesInfo3 via the Theorem 4.4 normal form",
            relation_to_matrix("Sales", "Region", "Part", "Sold")
                .apply(&fixtures::sales_info1(), 1000)
                .unwrap()
                .equiv(&fixtures::sales_info3()),
        );
    }
    check(
        "Figure 1: summary data absorbed into SalesInfo2",
        add_totals(
            fixtures::sales_info2().table_str("Sales").unwrap(),
            &[Symbol::name("Region")],
            &[Symbol::name("Part")],
            Agg::Sum,
        )
        .unwrap()
        .equiv(fixtures::sales_info2_full().table_str("Sales").unwrap()),
    );

    // ------------------------------------------------------------------
    // Figure 2: the four regions of a table.
    // ------------------------------------------------------------------
    println!("\n=== Figure 2 ===");
    let t = fixtures::sales_relation();
    check(
        "Figure 2: τ₀⁰ is the table name",
        t.name() == Symbol::name("Sales"),
    );
    check(
        "Figure 2: τ₀^(>0) are the column attributes",
        t.col_attrs()
            == [
                Symbol::name("Part"),
                Symbol::name("Region"),
                Symbol::name("Sold"),
            ],
    );
    check(
        "Figure 2: τ_(>0)⁰ are the row attributes (⊥ here)",
        t.row_attrs().iter().all(|a| a.is_null()),
    );
    check(
        "Figure 2: τ_>^> are the data entries",
        t.get(1, 3) == Symbol::value("50"),
    );

    // ------------------------------------------------------------------
    // Figure 3: union, difference, Cartesian product.
    // ------------------------------------------------------------------
    println!("\n=== Figure 3 ===");
    let r = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
    let s = Table::relational("S", &["A", "B"], &[&["1", "2"], &["5", "6"]]);
    let u = tables_paradigm::algebra::ops::union(&r, &s, Symbol::name("T"));
    println!("R ∪ S (tabular union pads with ⊥):\n{u}");
    check(
        "Figure 3: union concatenates column blocks",
        u.width() == 4 && u.height() == 4,
    );
    let d = tables_paradigm::algebra::ops::difference(&r, &s, Symbol::name("T"));
    check("Figure 3: difference", d.height() == 1);
    let x = tables_paradigm::algebra::ops::product(&r, &s, Symbol::name("T"));
    check("Figure 3: product", x.height() == 4 && x.width() == 4);

    // ------------------------------------------------------------------
    // Figure 4: GROUP by Region on Sold.
    // ------------------------------------------------------------------
    println!("\n=== Figure 4 ===");
    let grouped = tables_paradigm::algebra::ops::group(
        &fixtures::sales_relation(),
        &SymbolSet::from_iter([Symbol::name("Region")]),
        &SymbolSet::from_iter([Symbol::name("Sold")]),
        Symbol::name("Sales"),
    );
    println!("{grouped}");
    check(
        "Figure 4: exact grouped table",
        grouped == fixtures::figure4_grouped(),
    );

    // ------------------------------------------------------------------
    // Figure 5: MERGE on Sold by Region.
    // ------------------------------------------------------------------
    println!("\n=== Figure 5 ===");
    let info2 = fixtures::sales_info2();
    let merged = tables_paradigm::algebra::ops::merge(
        info2.table_str("Sales").unwrap(),
        &SymbolSet::from_iter([Symbol::name("Sold")]),
        &SymbolSet::from_iter([Symbol::name("Region")]),
        Symbol::name("Sales"),
    );
    println!("{merged}");
    check(
        "Figure 5: exact merged table",
        merged == fixtures::figure5_merged(),
    );

    println!("\nAll figures regenerated and verified ✓");
}
