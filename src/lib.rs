//! # tables-paradigm
//!
//! A full reproduction of Gyssens, Lakshmanan & Subramanian,
//! *Tables as a Paradigm for Querying and Restructuring* (PODS 1996), as a
//! Rust workspace. This umbrella crate re-exports the member crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] (`tabular-core`) | the tabular database model: symbols, tables, weak equality, subsumption, the Figure 1 fixtures |
//! | [`algebra`] (`tabular-algebra`) | the tabular algebra: all operations of §3, the parameter language, programs with `while`, interpreter, textual syntax |
//! | [`relational`] (`tabular-relational`) | relations, relational algebra, `FO + while + new`, and the **Theorem 4.1** compiler into TA |
//! | [`canonical`] (`tabular-canonical`) | the canonical representation (**Lemmas 4.2/4.3**) and the **Theorem 4.4** completeness normal form |
//! | [`schemalog`] (`tabular-schemalog`) | SchemaLog_d and its embedding into TA (**Theorem 4.5**) |
//! | [`olap`] (`tabular-olap`) | the OLAP layer of §4.3: cubes, algebraic pivot/unpivot, summarization, classification |
//! | [`good`] (`tabular-good`) | the GOOD graph-object model and its embedding into TA (contribution 4) |
//!
//! ## Quickstart
//!
//! ```
//! use tables_paradigm::prelude::*;
//!
//! // The paper's running example: the relational sales data (SalesInfo1).
//! let db = fixtures::sales_info1();
//!
//! // Figure 4: Sales ← GROUP by Region on Sold (Sales).
//! let program = parse("Sales <- GROUP[by {Region} on {Sold}](Sales)").unwrap();
//! let out = run(&program, &db, &EvalLimits::default()).unwrap();
//! assert_eq!(out.table_str("Sales").unwrap(), &fixtures::figure4_grouped());
//! ```

pub use tabular_algebra as algebra;
pub use tabular_canonical as canonical;
pub use tabular_core as core;
pub use tabular_good as good;
pub use tabular_olap as olap;
pub use tabular_relational as relational;
pub use tabular_schemalog as schemalog;

/// Convenient single import for examples and downstream users.
pub mod prelude {
    pub use tabular_algebra::{
        parser::parse, plan, plan_with_rules, pretty::render, pretty::render_plan,
        pretty::render_trace, run, run_governed, run_governed_traced, run_outputs, run_planned,
        run_planned_governed, run_planned_governed_traced, run_planned_traced, run_traced,
        run_with_stats, Budget, CancelToken, EvalLimits, OpKind, Param, PlanReport, Program,
        RestructureChain, Rule, Trace, TraceLevel, WhileStrategy, ALL_RULES,
    };
    pub use tabular_canonical::{decode, encode, encode_program, EncodeScheme, Transformation};
    pub use tabular_core::{fixtures, Database, Symbol, SymbolSet, Table};
    pub use tabular_olap::{add_totals, grand_total, pivot, summarize, unpivot, Agg, Cube};
    pub use tabular_relational::{FoProgram, RelDatabase, RelExpr, Relation};
    pub use tabular_schemalog as schemalog;
}
