//! `tabular` — run tabular algebra programs over CSV tables from the
//! command line.
//!
//! ```sh
//! tabular run program.ta --table sales.csv [--table more.csv …]
//!         [--out Name …] [--optimize] [--plan] [--stats] [--trace]
//!         [--deadline-ms N] [--cell-budget N]
//! ```
//!
//! Tables load via the CSV convention of `tabular_core::io` (first record:
//! table name + column attributes; `_` is ⊥; `n:`/`v:` sort tags).
//! Programs use the textual syntax of `tabular_algebra::parser`. Without
//! `--out`, every non-scratch table of the final database is printed.
//!
//! `--deadline-ms` and `--cell-budget` govern the run with a
//! `tabular_algebra::Budget`; when a resource trips, the run fails with
//! the structured `BudgetExceeded` error and `--stats`/`--trace` print
//! the *partial* statistics and trace collected up to the trip (the
//! interrupted span is marked `← budget tripped`).

use std::process::ExitCode;
use tables_paradigm::algebra::{
    optimize, parser, pretty, run_governed_traced, AlgebraError, Budget, EvalLimits, EvalStats,
    Trace, TraceLevel,
};
use tables_paradigm::core::{interner, io, Database, Symbol};

struct Options {
    program_path: String,
    tables: Vec<String>,
    outputs: Vec<String>,
    optimize: bool,
    plan: bool,
    stats: bool,
    trace: bool,
    deadline_ms: Option<u64>,
    cell_budget: Option<usize>,
}

const USAGE: &str = "usage: tabular run <program.ta> --table <file.csv> [--table …] \
[--out <Name> …] [--optimize] [--plan] [--stats] [--trace] [--deadline-ms <N>] [--cell-budget <N>]\n       \
tabular fmt <program.ta>\n\
\n\
--plan              run the cost-based planner against the loaded tables'\n\
                    statistics and print its rewrite decisions (EXPLAIN)\n\
--deadline-ms <N>   fail the run once N milliseconds of wall time pass\n\
--cell-budget <N>   fail the run once it has produced N cumulative cells\n\
                    (cells per table: (height+1)*(width+1))\n\
On a trip the run exits with error `<resource> budget exceeded: spent <S> of <L>`\n\
(or `evaluation cancelled cooperatively`); the error carries the partial\n\
statistics and trace, which --stats/--trace print with the interrupted span\n\
marked `← budget tripped`.";

fn parse_args(args: &[String]) -> Result<(String, Options), String> {
    let mut it = args.iter();
    let command = it.next().ok_or(USAGE)?.clone();
    let mut opts = Options {
        program_path: String::new(),
        tables: Vec::new(),
        outputs: Vec::new(),
        optimize: false,
        plan: false,
        stats: false,
        trace: false,
        deadline_ms: None,
        cell_budget: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => opts
                .tables
                .push(it.next().ok_or("--table needs a file")?.clone()),
            "--out" => opts
                .outputs
                .push(it.next().ok_or("--out needs a table name")?.clone()),
            "--optimize" => opts.optimize = true,
            "--plan" => opts.plan = true,
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a number")?;
                opts.deadline_ms = Some(v.parse().map_err(|_| format!("bad --deadline-ms {v:?}"))?);
            }
            "--cell-budget" => {
                let v = it.next().ok_or("--cell-budget needs a number")?;
                opts.cell_budget = Some(v.parse().map_err(|_| format!("bad --cell-budget {v:?}"))?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}\n{USAGE}")),
            _ if opts.program_path.is_empty() => opts.program_path = arg.clone(),
            _ => return Err(format!("unexpected argument {arg}\n{USAGE}")),
        }
    }
    if opts.program_path.is_empty() {
        return Err(format!("missing program file\n{USAGE}"));
    }
    Ok((command, opts))
}

fn load_database(paths: &[String]) -> Result<Database, String> {
    let mut db = Database::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let table = io::from_csv(&text).map_err(|e| format!("{path}: {e}"))?;
        db.insert(table);
    }
    Ok(db)
}

fn execute(command: &str, opts: &Options) -> Result<String, String> {
    let source = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("{}: {e}", opts.program_path))?;
    let mut program = parser::parse(&source).map_err(|e| e.to_string())?;

    if command == "fmt" {
        return Ok(pretty::render(&program));
    }
    if command != "run" {
        return Err(format!("unknown command {command:?}\n{USAGE}"));
    }

    let db = load_database(&opts.tables)?;
    if opts.optimize {
        program = optimize(&program);
    }
    let mut plan_section = String::new();
    if opts.plan {
        let (planned, report) = tables_paradigm::algebra::plan(&program, &db);
        program = planned;
        plan_section = format!("-- plan --\n{}", pretty::render_plan(&report));
    }
    let limits = EvalLimits {
        trace: if opts.trace {
            TraceLevel::Spans
        } else {
            TraceLevel::default()
        },
        ..EvalLimits::default()
    };
    let mut budget = Budget::from_limits(&limits);
    if let Some(ms) = opts.deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(cells) = opts.cell_budget {
        budget = budget.with_cell_budget(cells);
    }
    let (result, stats, trace) = match run_governed_traced(&program, &db, &budget) {
        Ok(parts) => parts,
        // A budget trip still reports the partial stats and trace it
        // carries — the graceful-degradation contract of the governor.
        Err(e @ AlgebraError::BudgetExceeded { .. }) => {
            let mut msg = e.to_string();
            let AlgebraError::BudgetExceeded { partial, .. } = e else {
                unreachable!("matched BudgetExceeded above");
            };
            msg.push('\n');
            msg.push_str(&plan_section);
            msg.push_str(&render_observability(opts, &partial.stats, &partial.trace));
            return Err(msg);
        }
        Err(e) => return Err(e.to_string()),
    };

    let mut out = String::new();
    let wanted: Vec<Symbol> = opts.outputs.iter().map(|n| Symbol::name(n)).collect();
    for t in result.tables() {
        let visible = if wanted.is_empty() {
            t.name()
                .text()
                .is_none_or(|text| !interner::is_reserved(text))
        } else {
            wanted.contains(&t.name())
        };
        if visible {
            out.push_str(&t.to_string());
            out.push('\n');
        }
    }
    out.push_str(&plan_section);
    out.push_str(&render_observability(opts, &stats, &trace));
    Ok(out)
}

/// The `--stats` / `--trace` sections, shared by the success path and
/// the partial report of a budget trip.
fn render_observability(opts: &Options, stats: &EvalStats, trace: &Trace) -> String {
    let mut out = String::new();
    if opts.stats {
        out.push_str("-- statistics --\n");
        for (op, micros, count) in stats.hottest() {
            out.push_str(&format!("{op:<15} {count:>6}× {micros:>10}µs\n"));
        }
        out.push_str(&format!(
            "while iterations: {}; tables produced: {}; peak table: {} cells\n",
            stats.while_iterations, stats.tables_produced, stats.max_table_cells
        ));
    }
    if opts.trace {
        out.push_str("-- trace --\n");
        out.push_str(&pretty::render_trace(trace));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|(cmd, opts)| execute(&cmd, &opts)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("tabular: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tables_paradigm::core::fixtures;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("tabular-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write temp file");
        path.to_string_lossy().into_owned()
    }

    fn sales_csv() -> String {
        write_temp("sales.csv", &io::to_csv(&fixtures::sales_relation()))
    }

    #[test]
    fn run_executes_a_pivot_program() {
        let program = write_temp(
            "pivot.ta",
            "Cross <- GROUP[by {Region} on {Sold}](Sales)\n\
             Cross <- CLEANUP[by {Part} on {_}](Cross)\n\
             Cross <- PURGE[on {Sold} by {Region}](Cross)\n",
        );
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--out".into(),
            "Cross".into(),
        ])
        .unwrap();
        let out = execute(&cmd, &opts).unwrap();
        assert!(out.contains("Cross"));
        assert!(out.contains("east"));
        assert!(out.contains("nuts"));
        // Only the requested table is printed.
        assert!(!out.contains("| Sales"));
    }

    #[test]
    fn stats_flag_appends_statistics() {
        let program = write_temp("t.ta", "T <- TRANSPOSE(Sales)\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--stats".into(),
        ])
        .unwrap();
        let out = execute(&cmd, &opts).unwrap();
        assert!(out.contains("-- statistics --"));
        assert!(out.contains("TRANSPOSE"));
    }

    #[test]
    fn trace_flag_appends_explain_tree() {
        let program = write_temp(
            "trace.ta",
            "T <- TRANSPOSE(Sales)\n\
             while W do W <- DIFFERENCE(W, W) end\n",
        );
        let work = write_temp("work.csv", "W,A\n_,1\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--table".into(),
            work,
            "--trace".into(),
        ])
        .unwrap();
        let out = execute(&cmd, &opts).unwrap();
        assert!(out.contains("-- trace --"), "trace section:\n{out}");
        assert!(out.contains("TRANSPOSE matched="), "span line:\n{out}");
        assert!(out.contains("while #1"), "iteration line:\n{out}");
    }

    #[test]
    fn optimize_flag_is_accepted() {
        let program = write_temp("opt.ta", "T <- COPY(Sales)\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--optimize".into(),
        ])
        .unwrap();
        let out = execute(&cmd, &opts).unwrap();
        assert!(out.contains("| T "));
    }

    #[test]
    fn plan_flag_appends_plan_section() {
        // Textual programs name every intermediate, and the planner's
        // rewrites only touch single-read *scratch* intermediates (fusing
        // a visible table away would change the output database) — so an
        // honest plan report for this program is "no rewrites".
        let program = write_temp("plan.ta", "T <- TRANSPOSE(Sales)\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--plan".into(),
        ])
        .unwrap();
        assert!(opts.plan);
        let out = execute(&cmd, &opts).unwrap();
        assert!(out.contains("| T "), "planned program still runs:\n{out}");
        assert!(out.contains("-- plan --"), "plan section:\n{out}");
        assert!(out.contains("plan: no rewrites"), "report:\n{out}");
    }

    #[test]
    fn fmt_pretty_prints() {
        let program = write_temp("fmt.ta", "T<-GROUP[by {A} on {B}](R)");
        let (cmd, opts) = parse_args(&["fmt".into(), program]).unwrap();
        let out = execute(&cmd, &opts).unwrap();
        assert_eq!(out, "T <- GROUP[by A on B](R)\n");
    }

    #[test]
    fn cell_budget_trip_reports_partial_stats_and_trace() {
        // A diverging loop that keeps growing its work table: only the
        // governor stops it (well before max_while_iters).
        let program = write_temp("diverge.ta", "while W do W <- PRODUCT(W, Sales) end\n");
        let work = write_temp("seed.csv", "W,A\nx,1\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--table".into(),
            work,
            "--stats".into(),
            "--trace".into(),
            "--cell-budget".into(),
            "5000".into(),
        ])
        .unwrap();
        let err = execute(&cmd, &opts).unwrap_err();
        assert!(
            err.contains("run cell budget budget exceeded"),
            "error line:\n{err}"
        );
        assert!(err.contains("-- statistics --"), "partial stats:\n{err}");
        assert!(err.contains("-- trace --"), "partial trace:\n{err}");
        assert!(err.contains("← budget tripped"), "tripped mark:\n{err}");
    }

    #[test]
    fn deadline_flag_is_parsed_and_zero_trips_immediately() {
        let program = write_temp("t2.ta", "T <- TRANSPOSE(Sales)\n");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            program,
            "--table".into(),
            sales_csv(),
            "--deadline-ms".into(),
            "0".into(),
        ])
        .unwrap();
        assert_eq!(opts.deadline_ms, Some(0));
        let err = execute(&cmd, &opts).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        assert!(parse_args(&["run".into(), "p.ta".into(), "--cell-budget".into()]).is_err());
        assert!(parse_args(&[
            "run".into(),
            "p.ta".into(),
            "--deadline-ms".into(),
            "soon".into()
        ])
        .is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["run".into()]).is_err());
        let bad = write_temp("bad.ta", "T <- NOPE(R)");
        let (cmd, opts) = parse_args(&["run".into(), bad]).unwrap();
        assert!(execute(&cmd, &opts)
            .unwrap_err()
            .contains("unknown operation"));
        let good = write_temp("good.ta", "T <- COPY(R)");
        let (cmd, opts) = parse_args(&[
            "run".into(),
            good,
            "--table".into(),
            "/nonexistent.csv".into(),
        ])
        .unwrap();
        assert!(execute(&cmd, &opts).is_err());
    }
}
