//! # tabular-core
//!
//! The **tabular database model** of Gyssens, Lakshmanan & Subramanian,
//! *Tables as a Paradigm for Querying and Restructuring* (PODS 1996), §2:
//!
//! * [`Symbol`] — the universe `S = N ∪ V ∪ {⊥}` of names, values, and the
//!   inapplicable null, backed by a global [`interner`];
//! * [`Table`] — a total mapping `{0..m} × {0..n} → S` with the four
//!   regions of Figure 2 (name, column attributes, row attributes, data);
//! * [`Database`] — a set of tables (several may share one name);
//! * [`SymbolSet`] with *weak containment / equality* (`A ≼ B` iff
//!   `A\{⊥} ⊆ B\{⊥}`) and row/column *subsumption*;
//! * [`fixtures`] — the paper's Figure 1 sales databases, the expected
//!   outputs of Figures 4 and 5, and scaled deterministic generators.
//!
//! The algebra itself lives in the `tabular-algebra` crate; this crate is
//! purely the data model.
//!
//! ## Quick example
//!
//! ```
//! use tabular_core::{Table, Symbol};
//!
//! let sales = Table::relational(
//!     "Sales",
//!     &["Part", "Region", "Sold"],
//!     &[&["nuts", "east", "50"], &["bolts", "east", "70"]],
//! );
//! assert_eq!(sales.name(), Symbol::name("Sales"));
//! assert_eq!(sales.get(2, 3), Symbol::value("70"));
//! println!("{sales}");
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod display;
pub mod error;
pub mod fixtures;
pub mod interner;
pub mod io;
pub mod stats;
pub mod symbol;
pub mod table;
pub mod weak;

mod serde_impl;

pub use database::Database;
pub use error::CoreError;
pub use interner::Istr;
pub use symbol::Symbol;
pub use table::{RowAppender, Table};
pub use weak::SymbolSet;
