//! Process-wide storage-engine counters.
//!
//! The structurally shared store ([`crate::Table`], [`crate::Database`])
//! makes three events interesting that a deep-copy store has no use for:
//! taking an O(1) *snapshot* (cloning a database handle), materializing a
//! table's cell buffer under copy-on-write (a *CoW copy*), and copying the
//! store's handle vector when a shared database is mutated (a *store
//! copy*). These counters are the ground truth that the evaluator's
//! `EvalStats` and the allocation-regression test read: they are global
//! monotonic totals, so callers measure a region of interest by
//! differencing (`let before = cow_copies(); …; cow_copies() - before`).
//!
//! The counters are `Relaxed` atomics — they order nothing and cost one
//! uncontended RMW per event, which only fires on the cold (copying)
//! paths anyway.

use std::sync::atomic::{AtomicU64, Ordering};

static SNAPSHOTS: AtomicU64 = AtomicU64::new(0);
static COW_COPIES: AtomicU64 = AtomicU64::new(0);
static STORE_COPIES: AtomicU64 = AtomicU64::new(0);

/// Total database snapshots (handle clones) taken by this process.
pub fn snapshots() -> u64 {
    SNAPSHOTS.load(Ordering::Relaxed)
}

/// Total table cell buffers materialized by copy-on-write: mutations of
/// a table whose cells were shared with at least one other handle.
pub fn cow_copies() -> u64 {
    COW_COPIES.load(Ordering::Relaxed)
}

/// Total store (table-handle vector + indexes) copies made when mutating
/// a database whose store was shared with a snapshot. A store copy
/// duplicates the *handles*, never the cell buffers.
pub fn store_copies() -> u64 {
    STORE_COPIES.load(Ordering::Relaxed)
}

pub(crate) fn record_snapshot() {
    SNAPSHOTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cow_copy() {
    COW_COPIES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_store_copy() {
    STORE_COPIES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let (s0, c0, t0) = (snapshots(), cow_copies(), store_copies());
        record_snapshot();
        record_cow_copy();
        record_store_copy();
        assert!(snapshots() > s0);
        assert!(cow_copies() > c0);
        assert!(store_copies() > t0);
    }
}
