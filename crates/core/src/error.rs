//! Error types for the tabular model.

use std::fmt;

/// Errors arising while constructing or manipulating tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A grid passed to [`Table::from_grid`](crate::Table::from_grid) had
    /// rows of differing lengths.
    RaggedGrid {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
        /// Expected length (that of row 0).
        expected: usize,
    },
    /// A grid had no rows or no columns; a table always has at least the
    /// name position (0,0).
    EmptyGrid,
    /// A position outside the table was addressed.
    OutOfBounds {
        /// Row index requested.
        row: usize,
        /// Column index requested.
        col: usize,
        /// Table height (max row index).
        height: usize,
        /// Table width (max column index).
        width: usize,
    },
    /// User input used the reserved fresh-symbol prefix.
    ReservedSymbol(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RaggedGrid { row, got, expected } => write!(
                f,
                "ragged grid: row {row} has {got} cells, expected {expected}"
            ),
            CoreError::EmptyGrid => write!(f, "empty grid: a table needs at least the name cell"),
            CoreError::OutOfBounds {
                row,
                col,
                height,
                width,
            } => write!(
                f,
                "position ({row},{col}) outside table of height {height}, width {width}"
            ),
            CoreError::ReservedSymbol(s) => {
                write!(f, "symbol {s:?} uses the reserved fresh-value prefix")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = CoreError::RaggedGrid {
            row: 2,
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("row 2"));
        assert!(CoreError::EmptyGrid.to_string().contains("empty"));
        let o = CoreError::OutOfBounds {
            row: 5,
            col: 6,
            height: 2,
            width: 2,
        };
        assert!(o.to_string().contains("(5,6)"));
    }
}
