//! CSV import/export for tables.
//!
//! The grid maps directly onto CSV: the first record holds the table name
//! followed by the column attributes; each further record holds a row
//! attribute followed by the data entries. Cells use the same syntax as
//! [`Table::from_grid`] (`_` for ⊥, `n:`/`v:` sort tags, positional
//! defaults), so sorts round-trip exactly.

use crate::error::CoreError;
use crate::symbol::{parse_cell, render_cell, Symbol};
use crate::table::Table;

/// Render a table as CSV (RFC-4180-style quoting; cells in the grid cell
/// syntax).
pub fn to_csv(t: &Table) -> String {
    let mut out = String::new();
    for i in 0..=t.height() {
        for j in 0..=t.width() {
            if j > 0 {
                out.push(',');
            }
            let cell = render_cell(t.get(i, j), i == 0 || j == 0);
            out.push_str(&quote(&cell));
        }
        out.push('\n');
    }
    out
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Parse a table from CSV produced by [`to_csv`] (or hand-written in the
/// same convention). All records must have the same field count.
pub fn from_csv(src: &str) -> Result<Table, CoreError> {
    let records = parse_records(src)?;
    if records.is_empty() || records[0].is_empty() {
        return Err(CoreError::EmptyGrid);
    }
    let width = records[0].len() - 1;
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != width + 1 {
            return Err(CoreError::RaggedGrid {
                row: i,
                got: rec.len(),
                expected: width + 1,
            });
        }
    }
    let mut t = Table::new(Symbol::Null, records.len() - 1, width);
    for (i, rec) in records.iter().enumerate() {
        for (j, cell) in rec.iter().enumerate() {
            if crate::interner::is_reserved(cell) {
                return Err(CoreError::ReservedSymbol(cell.clone()));
            }
            let default: fn(&str) -> Symbol = if i == 0 || j == 0 {
                Symbol::name
            } else {
                Symbol::value
            };
            t.set(i, j, parse_cell(cell, default));
        }
    }
    Ok(t)
}

/// A minimal RFC-4180 record parser (quotes, escaped quotes, embedded
/// newlines inside quoted fields).
fn parse_records(src: &str) -> Result<Vec<Vec<String>>, CoreError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = src.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => in_quotes = true,
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {}
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CoreError::EmptyGrid); // unterminated quote: no valid grid
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err(CoreError::EmptyGrid);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn fixtures_round_trip() {
        for db in [
            fixtures::sales_info1_full(),
            fixtures::sales_info2_full(),
            fixtures::sales_info3_full(),
            fixtures::sales_info4_full(),
        ] {
            for t in db.tables() {
                let csv = to_csv(t);
                let back = from_csv(&csv).unwrap();
                assert_eq!(&back, t, "csv:\n{csv}");
            }
        }
    }

    #[test]
    fn csv_shape_is_human_readable() {
        let csv = to_csv(&fixtures::sales_relation());
        let first = csv.lines().next().unwrap();
        assert_eq!(first, "Sales,Part,Region,Sold");
        assert!(csv.lines().nth(1).unwrap().starts_with("_,nuts,"));
    }

    #[test]
    fn quoting_round_trips() {
        let t = Table::from_grid(&[&["T", "v:a,b", "n:say \"hi\""], &["r", "x\ny", "_"]]).unwrap();
        let csv = to_csv(&t);
        assert!(csv.contains("\"v:a,b\""));
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn hand_written_csv_parses() {
        let t = from_csv("Sales,Part,Sold\n_,nuts,50\n_,bolts,70\n").unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.get(2, 2), Symbol::value("70"));
        assert!(t.get(1, 0).is_null());
        // Missing trailing newline is fine.
        let t2 = from_csv("Sales,Part,Sold\n_,nuts,50").unwrap();
        assert_eq!(t2.height(), 1);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(matches!(from_csv(""), Err(CoreError::EmptyGrid)));
        assert!(matches!(
            from_csv("T,A\nx\n"),
            Err(CoreError::RaggedGrid { .. })
        ));
        assert!(from_csv("T,\"unterminated\n").is_err());
        let reserved = "T,\u{1F}x\n_,1\n".to_string();
        assert!(matches!(
            from_csv(&reserved),
            Err(CoreError::ReservedSymbol(_))
        ));
    }

    #[test]
    fn empty_cells_are_empty_string_symbols() {
        // An empty unquoted cell is the empty-string name/value, not ⊥
        // (⊥ is spelled `_`). This keeps the mapping bijective.
        let t = from_csv("T,A\n_,\n").unwrap();
        assert_eq!(t.get(1, 1), Symbol::value(""));
    }
}
