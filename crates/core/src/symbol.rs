//! Symbols: the universe `S = N ∪ V ∪ {⊥}` of the tabular model (paper §2).
//!
//! * **Names** (`N`) generalize relation and attribute names. Algebra
//!   operations are allowed to distinguish individual names.
//! * **Values** (`V`) are data. For genericity (paper §4.1, condition (i)),
//!   operations never branch on individual values — they may only copy,
//!   compare for (weak) equality, and tag them.
//! * **⊥** is the *inapplicable null*, used wherever a table has no entry.
//!
//! In the paper's figures names are set in typewriter font; here the sort is
//! carried in the enum tag. The same spelling may exist both as a name and
//! as a value (`Symbol::name("east") != Symbol::value("east")`), exactly as
//! two fonts distinguish them on paper.

use crate::interner::{self, Istr};
use std::cmp::Ordering;
use std::fmt;

/// A symbol of the tabular model: a name, a value, or the inapplicable
/// null ⊥.
/// The derived `Ord` (names < values < ⊥, then interning order) is an
/// arbitrary total order used for set storage; the *canonical* order used
/// for normal forms is [`Symbol::canonical_cmp`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// A name (relation/attribute-style identifier); sort `N`.
    Name(Istr),
    /// A value (data); sort `V`.
    Value(Istr),
    /// The inapplicable null ⊥.
    Null,
}

impl Symbol {
    /// Intern `s` as a name.
    pub fn name(s: &str) -> Symbol {
        Symbol::Name(interner::intern(s))
    }

    /// Intern `s` as a value.
    pub fn value(s: &str) -> Symbol {
        Symbol::Value(interner::intern(s))
    }

    /// A fresh value never seen before (backs `tuple-new` / `set-new`).
    pub fn fresh_value() -> Symbol {
        Symbol::Value(interner::fresh("v"))
    }

    /// A fresh name never seen before (used for scratch table names).
    pub fn fresh_name() -> Symbol {
        Symbol::Name(interner::fresh("n"))
    }

    /// True for ⊥.
    pub fn is_null(self) -> bool {
        matches!(self, Symbol::Null)
    }

    /// True for names.
    pub fn is_name(self) -> bool {
        matches!(self, Symbol::Name(_))
    }

    /// True for values.
    pub fn is_value(self) -> bool {
        matches!(self, Symbol::Value(_))
    }

    /// The underlying string, or `None` for ⊥.
    pub fn text(self) -> Option<&'static str> {
        match self {
            Symbol::Name(i) | Symbol::Value(i) => Some(i.as_str()),
            Symbol::Null => None,
        }
    }

    /// *Weak equality* on individual symbols: `a ≐ b` iff `a = b` or either
    /// is ⊥. This is the entry-level analogue of the paper's weak equality
    /// on sets and is what selection uses to compare entries.
    pub fn weak_eq(self, other: Symbol) -> bool {
        self.is_null() || other.is_null() || self == other
    }

    /// Informational join: `⊥ ⊔ x = x`, `x ⊔ x = x`, conflicting non-null
    /// symbols have no join. This is the "least common tuple" combinator of
    /// the clean-up operation (paper §3.4).
    pub fn join(self, other: Symbol) -> Option<Symbol> {
        match (self, other) {
            (Symbol::Null, x) | (x, Symbol::Null) => Some(x),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// True if `self` carries no more information than `other`
    /// (`⊥ ⊑ x`, `x ⊑ x`).
    pub fn subsumed_by(self, other: Symbol) -> bool {
        self.is_null() || self == other
    }

    /// A total order used for canonicalization (sorting rows/columns into a
    /// normal form). ⊥ sorts first, then names, then values; within a sort,
    /// lexicographic on the string. The order is *not* part of the model —
    /// tables are permutation-invariant — it only pins down a canonical
    /// representative of each permutation class.
    pub fn canonical_cmp(self, other: Symbol) -> Ordering {
        fn rank(s: Symbol) -> u8 {
            match s {
                Symbol::Null => 0,
                Symbol::Name(_) => 1,
                Symbol::Value(_) => 2,
            }
        }
        rank(self)
            .cmp(&rank(other))
            .then_with(|| match (self, other) {
                (Symbol::Name(a), Symbol::Name(b)) | (Symbol::Value(a), Symbol::Value(b)) => {
                    a.as_str().cmp(b.as_str())
                }
                _ => Ordering::Equal,
            })
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Name(i) => write!(f, "n:{}", i.as_str()),
            Symbol::Value(i) => write!(f, "v:{}", i.as_str()),
            Symbol::Null => f.write_str("⊥"),
        }
    }
}

/// Names and values render bare, ⊥ renders as the bottom glyph. The sorts
/// are distinguishable via `Debug` / the grid cell syntax, not via
/// `Display`, mirroring how the paper distinguishes them by font.
impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Name(i) | Symbol::Value(i) => f.write_str(i.as_str()),
            Symbol::Null => f.write_str("⊥"),
        }
    }
}

/// Parse the grid cell syntax used by [`Table::from_grid`]
/// (crate::Table::from_grid) and the serde representation:
///
/// * `"_"` or `"⊥"` → ⊥
/// * `"n:xyz"` → the name `xyz`
/// * `"v:xyz"` → the value `xyz`
/// * anything else → `default_sort` applied to the whole cell
///
/// `default_sort` is `Symbol::name` in attribute positions and
/// `Symbol::value` in data positions, matching the paper's convention that
/// attribute positions *usually* hold names and data positions *usually*
/// hold values, while still allowing either (SalesInfo3 in Figure 1 puts
/// data in attribute positions; Figure 4 puts the name `Region` in a data
/// position).
pub fn parse_cell(cell: &str, default_sort: fn(&str) -> Symbol) -> Symbol {
    match cell {
        "_" | "⊥" => Symbol::Null,
        _ => {
            if let Some(rest) = cell.strip_prefix("n:") {
                Symbol::name(rest)
            } else if let Some(rest) = cell.strip_prefix("v:") {
                Symbol::value(rest)
            } else {
                default_sort(cell)
            }
        }
    }
}

/// Render a symbol in the grid cell syntax, round-tripping through
/// [`parse_cell`] with the given positional default.
pub fn render_cell(sym: Symbol, default_is_name: bool) -> String {
    match sym {
        Symbol::Null => "_".to_owned(),
        Symbol::Name(i) => {
            let s = i.as_str();
            if default_is_name && !needs_tag(s) {
                s.to_owned()
            } else {
                format!("n:{s}")
            }
        }
        Symbol::Value(i) => {
            let s = i.as_str();
            if !default_is_name && !needs_tag(s) {
                s.to_owned()
            } else {
                format!("v:{s}")
            }
        }
    }
}

fn needs_tag(s: &str) -> bool {
    s == "_" || s == "⊥" || s.starts_with("n:") || s.starts_with("v:")
}

/// An uninterned symbol representation, shipped solely for the
/// `ablation_interner` benchmark (DESIGN.md §6): identical semantics, but
/// strings are heap-allocated `Arc<str>`s compared bytewise.
pub mod uninterned {
    use std::sync::Arc;

    /// Uninterned analogue of [`super::Symbol`].
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    pub enum USymbol {
        /// A name.
        Name(Arc<str>),
        /// A value.
        Value(Arc<str>),
        /// ⊥.
        Null,
    }

    impl USymbol {
        /// Convert from the interned representation.
        pub fn from_symbol(s: super::Symbol) -> USymbol {
            match s {
                super::Symbol::Name(i) => USymbol::Name(Arc::from(i.as_str())),
                super::Symbol::Value(i) => USymbol::Value(Arc::from(i.as_str())),
                super::Symbol::Null => USymbol::Null,
            }
        }

        /// Weak equality, mirroring [`super::Symbol::weak_eq`].
        pub fn weak_eq(&self, other: &USymbol) -> bool {
            matches!(self, USymbol::Null) || matches!(other, USymbol::Null) || self == other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_are_distinct() {
        assert_ne!(Symbol::name("east"), Symbol::value("east"));
        assert!(Symbol::name("east").is_name());
        assert!(Symbol::value("east").is_value());
        assert!(Symbol::Null.is_null());
    }

    #[test]
    fn weak_eq_treats_null_as_wildcard() {
        let a = Symbol::value("50");
        assert!(a.weak_eq(a));
        assert!(a.weak_eq(Symbol::Null));
        assert!(Symbol::Null.weak_eq(a));
        assert!(!a.weak_eq(Symbol::value("60")));
        assert!(!Symbol::name("Sold").weak_eq(Symbol::value("Sold")));
    }

    #[test]
    fn join_is_least_upper_bound() {
        let v = Symbol::value("50");
        assert_eq!(Symbol::Null.join(v), Some(v));
        assert_eq!(v.join(Symbol::Null), Some(v));
        assert_eq!(v.join(v), Some(v));
        assert_eq!(v.join(Symbol::value("60")), None);
        assert_eq!(Symbol::Null.join(Symbol::Null), Some(Symbol::Null));
    }

    #[test]
    fn subsumption_ordering() {
        let v = Symbol::value("50");
        assert!(Symbol::Null.subsumed_by(v));
        assert!(v.subsumed_by(v));
        assert!(!v.subsumed_by(Symbol::Null));
        assert!(!v.subsumed_by(Symbol::value("60")));
    }

    #[test]
    fn canonical_order_is_total_and_stable() {
        let mut syms = vec![
            Symbol::value("b"),
            Symbol::name("b"),
            Symbol::Null,
            Symbol::value("a"),
            Symbol::name("a"),
        ];
        syms.sort_by(|a, b| a.canonical_cmp(*b));
        assert_eq!(
            syms,
            vec![
                Symbol::Null,
                Symbol::name("a"),
                Symbol::name("b"),
                Symbol::value("a"),
                Symbol::value("b"),
            ]
        );
    }

    #[test]
    fn cell_syntax_round_trips() {
        for (cell, default_name) in [
            ("Part", true),
            ("50", false),
            ("_", true),
            ("n:east", false),
            ("v:Sold", true),
        ] {
            let sort: fn(&str) -> Symbol = if default_name {
                Symbol::name
            } else {
                Symbol::value
            };
            let sym = parse_cell(cell, sort);
            let rendered = render_cell(sym, default_name);
            assert_eq!(parse_cell(&rendered, sort), sym, "cell {cell:?}");
        }
    }

    #[test]
    fn cell_syntax_handles_literal_underscore_value() {
        // A value spelled "_" must render tagged to avoid being read as ⊥.
        let sym = Symbol::value("_");
        let rendered = render_cell(sym, false);
        assert_eq!(rendered, "v:_");
        assert_eq!(parse_cell(&rendered, Symbol::value), sym);
    }

    #[test]
    fn fresh_values_are_values_and_distinct() {
        let a = Symbol::fresh_value();
        let b = Symbol::fresh_value();
        assert!(a.is_value());
        assert_ne!(a, b);
    }

    #[test]
    fn display_renders_bottom_glyph() {
        assert_eq!(Symbol::Null.to_string(), "⊥");
        assert_eq!(Symbol::name("Sales").to_string(), "Sales");
    }
}
