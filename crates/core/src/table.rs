//! Tables: total mappings `{0..m} × {0..n} → S` (paper §2, Figure 2).
//!
//! A table of *height* `m` and *width* `n` is stored as a dense row-major
//! `(m+1) × (n+1)` matrix of [`Symbol`]s. Four regions are distinguished
//! (Figure 2):
//!
//! ```text
//!            col 0        cols 1..=n
//!  row 0     τ₀⁰ name     τ₀^(>0)  column attributes
//!  rows 1..  τ_(>0)⁰      τ_>^>    data entries
//!            row attrs
//! ```
//!
//! Unlike relations, rows *and* columns may carry (possibly repeated,
//! possibly absent) attributes, data may occur in attribute positions, and
//! the width of a table is per-instance, not per-scheme.
//!
//! ## Storage
//!
//! A `Table` is a cheap *handle*: the cell matrix lives behind an
//! [`Arc`], so cloning a table (and, one level up, snapshotting a
//! [`Database`](crate::Database)) copies a pointer, not the buffer.
//! Mutation goes through [`Arc::make_mut`] — the buffer is copied lazily,
//! only when it is actually shared (copy-on-write; materializations are
//! counted in [`crate::stats::cow_copies`]). Each handle also caches a
//! 64-bit content [`fingerprint`](Table::fingerprint), computed on first
//! demand and invalidated by mutation, which the database's dedup index
//! and the delta evaluator's version tracking key on.

use crate::error::CoreError;
use crate::symbol::{parse_cell, Symbol};
use crate::weak::SymbolSet;
use std::sync::{Arc, OnceLock};

/// A table of the tabular database model. See the module docs.
///
/// Cloning is O(1): the cell buffer is [`Arc`]-shared and copied only on
/// mutation (copy-on-write). The derived `Clone` also carries the cached
/// fingerprint, so clones of a fingerprinted table stay fingerprinted.
#[derive(Clone, Debug)]
pub struct Table {
    height: usize,
    width: usize,
    cells: Arc<Vec<Symbol>>,
    /// Cached content fingerprint; set on first demand, cleared by any
    /// mutation. Cloned together with the handle.
    fp: OnceLock<u64>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        if self.height != other.height || self.width != other.width {
            return false;
        }
        // Structurally shared handles are equal without looking at cells.
        if Arc::ptr_eq(&self.cells, &other.cells) {
            return true;
        }
        // Already-computed fingerprints give a cheap negative.
        if let (Some(a), Some(b)) = (self.fp.get(), other.fp.get()) {
            if a != b {
                return false;
            }
        }
        self.cells == other.cells
    }
}

impl Eq for Table {}

impl std::hash::Hash for Table {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.height.hash(state);
        self.width.hash(state);
        self.cells.hash(state);
    }
}

impl Table {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// A table of the given height (data rows) and width (data columns),
    /// with the given name and every other cell ⊥.
    pub fn new(name: Symbol, height: usize, width: usize) -> Table {
        let mut cells = vec![Symbol::Null; (height + 1) * (width + 1)];
        cells[0] = name;
        Table::from_parts(height, width, cells)
    }

    /// Wrap a freshly built cell buffer in a handle (no fingerprint yet).
    fn from_parts(height: usize, width: usize, cells: Vec<Symbol>) -> Table {
        debug_assert_eq!(cells.len(), (height + 1) * (width + 1));
        Table {
            height,
            width,
            cells: Arc::new(cells),
            fp: OnceLock::new(),
        }
    }

    /// Mutable access to the cell buffer: invalidates the cached
    /// fingerprint and materializes a private copy iff the buffer is
    /// shared (counted in [`crate::stats::cow_copies`]).
    fn cells_mut(&mut self) -> &mut Vec<Symbol> {
        self.fp.take();
        if Arc::get_mut(&mut self.cells).is_none() {
            crate::stats::record_cow_copy();
        }
        Arc::make_mut(&mut self.cells)
    }

    /// Replace the cell buffer wholesale (structural rebuilds like
    /// [`Table::push_col`]); not a copy-on-write event.
    fn replace_cells(&mut self, cells: Vec<Symbol>) {
        self.fp.take();
        self.cells = Arc::new(cells);
    }

    /// The 64-bit content fingerprint: an FNV-1a-style hash over the
    /// dimensions and every cell, computed once and cached until the next
    /// mutation. Symbols hash by their interner index, which is stable for
    /// the lifetime of the process (fingerprints are *not* stable across
    /// processes and never serialized). Equal tables have equal
    /// fingerprints; the converse holds only modulo 64-bit collisions, so
    /// exact code paths (dedup, set semantics) use the fingerprint as a
    /// filter and confirm with `==`.
    pub fn fingerprint(&self) -> u64 {
        *self.fp.get_or_init(|| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |x: u64| {
                h ^= x;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            mix(self.height as u64);
            mix(self.width as u64);
            for &s in self.cells.iter() {
                mix(match s {
                    Symbol::Null => 0,
                    Symbol::Name(i) => 1 | (u64::from(i.index()) << 2),
                    Symbol::Value(i) => 2 | (u64::from(i.index()) << 2),
                });
            }
            h
        })
    }

    /// True if the two handles share one cell buffer (no copy has
    /// materialized between them). Diagnostic; equality of content is
    /// `==`.
    pub fn shares_cells_with(&self, other: &Table) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Build a table from a grid of cells in the cell syntax of
    /// [`parse_cell`]: row 0 is `name, column attributes…`; column 0 of
    /// later rows is the row attribute. Attribute positions default to
    /// names, data positions to values; `n:`/`v:` prefixes override, `_`
    /// is ⊥.
    ///
    /// ```
    /// # use tabular_core::Table;
    /// let t = Table::from_grid(&[
    ///     &["Sales", "Part", "Sold"],
    ///     &["_",     "nuts", "50"],
    /// ]).unwrap();
    /// assert_eq!(t.height(), 1);
    /// assert_eq!(t.width(), 2);
    /// ```
    pub fn from_grid(grid: &[&[&str]]) -> Result<Table, CoreError> {
        if grid.is_empty() || grid[0].is_empty() {
            return Err(CoreError::EmptyGrid);
        }
        let ncols = grid[0].len();
        for (i, row) in grid.iter().enumerate() {
            if row.len() != ncols {
                return Err(CoreError::RaggedGrid {
                    row: i,
                    got: row.len(),
                    expected: ncols,
                });
            }
        }
        let height = grid.len() - 1;
        let width = ncols - 1;
        let mut cells = Vec::with_capacity(grid.len() * ncols);
        for (i, row) in grid.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if crate::interner::is_reserved(cell) {
                    return Err(CoreError::ReservedSymbol((*cell).to_owned()));
                }
                let default: fn(&str) -> Symbol = if i == 0 || j == 0 {
                    Symbol::name
                } else {
                    Symbol::value
                };
                cells.push(parse_cell(cell, default));
            }
        }
        Ok(Table::from_parts(height, width, cells))
    }

    /// Convenience constructor for a *relational* table: named columns,
    /// ⊥ row attributes, all data entries values. This is the natural
    /// embedding of a relation into the tabular model (paper §1,
    /// SalesInfo1; §4.1 canonical representation).
    pub fn relational(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Table {
        let mut t = Table::new(Symbol::name(name), rows.len(), attrs.len());
        for (j, a) in attrs.iter().enumerate() {
            t.set(0, j + 1, Symbol::name(a));
        }
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), attrs.len(), "relational row {i} arity mismatch");
            for (j, cell) in row.iter().enumerate() {
                t.set(i + 1, j + 1, parse_cell(cell, Symbol::value));
            }
        }
        t
    }

    /// Like [`Table::relational`] but with already-built symbols.
    pub fn relational_syms(name: Symbol, attrs: &[Symbol], rows: &[Vec<Symbol>]) -> Table {
        let mut t = Table::new(name, rows.len(), attrs.len());
        for (j, a) in attrs.iter().enumerate() {
            t.set(0, j + 1, *a);
        }
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), attrs.len(), "relational row {i} arity mismatch");
            for (j, cell) in row.iter().enumerate() {
                t.set(i + 1, j + 1, *cell);
            }
        }
        t
    }

    // ------------------------------------------------------------------
    // Dimensions & cell access
    // ------------------------------------------------------------------

    /// Height `m`: the number of data rows (row indices are `0..=m`).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width `n`: the number of data columns (column indices are `0..=n`).
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * (self.width + 1) + j
    }

    /// The entry `τᵢ^j`. Panics on out-of-bounds (indices are internal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Symbol {
        assert!(
            i <= self.height && j <= self.width,
            "get({i},{j}) out of bounds"
        );
        self.cells[self.idx(i, j)]
    }

    /// Checked variant of [`Table::get`].
    pub fn try_get(&self, i: usize, j: usize) -> Result<Symbol, CoreError> {
        if i <= self.height && j <= self.width {
            Ok(self.cells[self.idx(i, j)])
        } else {
            Err(CoreError::OutOfBounds {
                row: i,
                col: j,
                height: self.height,
                width: self.width,
            })
        }
    }

    /// Overwrite the entry `τᵢ^j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, s: Symbol) {
        assert!(
            i <= self.height && j <= self.width,
            "set({i},{j}) out of bounds"
        );
        let ix = self.idx(i, j);
        self.cells_mut()[ix] = s;
    }

    // ------------------------------------------------------------------
    // Regions (Figure 2)
    // ------------------------------------------------------------------

    /// The table name `τ₀⁰`.
    pub fn name(&self) -> Symbol {
        self.cells[0]
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: Symbol) {
        self.cells_mut()[0] = name;
    }

    /// The column attributes `τ₀^(>0)` (length = width).
    pub fn col_attrs(&self) -> &[Symbol] {
        &self.cells[1..=self.width]
    }

    /// The column attribute of data column `j ∈ 1..=width`.
    pub fn col_attr(&self, j: usize) -> Symbol {
        assert!((1..=self.width).contains(&j));
        self.cells[j]
    }

    /// The row attributes `τ_(>0)⁰` (length = height).
    pub fn row_attrs(&self) -> Vec<Symbol> {
        (1..=self.height).map(|i| self.get(i, 0)).collect()
    }

    /// The row attribute of data row `i ∈ 1..=height`.
    pub fn row_attr(&self, i: usize) -> Symbol {
        assert!((1..=self.height).contains(&i));
        self.get(i, 0)
    }

    /// The data entries of row `i` (columns `1..=width`).
    pub fn data_row(&self, i: usize) -> &[Symbol] {
        assert!((1..=self.height).contains(&i));
        let start = self.idx(i, 1);
        &self.cells[start..start + self.width]
    }

    /// The full storage row `i` (row attribute followed by data entries).
    pub fn storage_row(&self, i: usize) -> &[Symbol] {
        let start = self.idx(i, 0);
        &self.cells[start..start + self.width + 1]
    }

    /// The full storage column `j` (attribute followed by data entries).
    pub fn storage_col(&self, j: usize) -> Vec<Symbol> {
        (0..=self.height).map(|i| self.get(i, j)).collect()
    }

    /// The set of column attributes, as a set (the table's *scheme*).
    pub fn scheme(&self) -> SymbolSet {
        SymbolSet::from_iter(self.col_attrs().iter().copied())
    }

    /// The set of row attributes.
    pub fn row_scheme(&self) -> SymbolSet {
        SymbolSet::from_iter((1..=self.height).map(|i| self.get(i, 0)))
    }

    /// Every symbol occurring anywhere in the table (incl. attributes and
    /// the name), ⊥ included.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.cells.iter().copied()
    }

    /// True if the table has the *shape* of a relation: pairwise-distinct
    /// name column attributes and all row attributes ⊥. Data entries may
    /// be any symbol — in the SchemaLog data model and the canonical
    /// representation (paper §4), names, values, and ⊥ are all first-class
    /// relation entries.
    pub fn is_relational(&self) -> bool {
        let attrs = self.col_attrs();
        let distinct: SymbolSet = attrs.iter().copied().collect();
        if distinct.len() != attrs.len() || !attrs.iter().all(|a| a.is_name()) {
            return false;
        }
        (1..=self.height).all(|i| self.get(i, 0).is_null())
    }

    // ------------------------------------------------------------------
    // Multi-occurrence attribute access & subsumption (paper §2)
    // ------------------------------------------------------------------

    /// Data columns whose attribute is `a` (indices into `1..=width`).
    pub fn cols_named(&self, a: Symbol) -> Vec<usize> {
        (1..=self.width)
            .filter(|&j| self.col_attr(j) == a)
            .collect()
    }

    /// Data columns whose attribute is in `set`.
    pub fn cols_in(&self, set: &SymbolSet) -> Vec<usize> {
        (1..=self.width)
            .filter(|&j| set.contains(self.col_attr(j)))
            .collect()
    }

    /// Data columns whose attribute is *not* in `set`.
    pub fn cols_not_in(&self, set: &SymbolSet) -> Vec<usize> {
        (1..=self.width)
            .filter(|&j| !set.contains(self.col_attr(j)))
            .collect()
    }

    /// Data rows whose row attribute is in `set`.
    pub fn rows_in(&self, set: &SymbolSet) -> Vec<usize> {
        (1..=self.height)
            .filter(|&i| set.contains(self.get(i, 0)))
            .collect()
    }

    /// Data rows whose row attribute is *not* in `set`.
    pub fn rows_not_in(&self, set: &SymbolSet) -> Vec<usize> {
        (1..=self.height)
            .filter(|&i| !set.contains(self.get(i, 0)))
            .collect()
    }

    /// `ρᵢ(a)`: the set of data entries of row `i` appearing in columns
    /// named `a`.
    pub fn row_entries_named(&self, i: usize, a: Symbol) -> SymbolSet {
        SymbolSet::from_iter(
            (1..=self.width)
                .filter(|&j| self.col_attr(j) == a)
                .map(|j| self.get(i, j)),
        )
    }

    /// Column-dual of [`Table::row_entries_named`]: entries of column `j`
    /// in rows whose row attribute is `a`.
    pub fn col_entries_named(&self, j: usize, a: Symbol) -> SymbolSet {
        SymbolSet::from_iter(
            (1..=self.height)
                .filter(|&i| self.get(i, 0) == a)
                .map(|i| self.get(i, j)),
        )
    }

    /// Row subsumption `ρᵢ ⊑ σₖ`: for every column attribute `a` of either
    /// table, `ρᵢ(a) ≼ σₖ(a)` (paper §2).
    pub fn row_subsumed_by(&self, i: usize, other: &Table, k: usize) -> bool {
        let attrs = self.scheme().union(&other.scheme());
        let ok = attrs.iter().all(|a| {
            self.row_entries_named(i, a)
                .weakly_contained_in(&other.row_entries_named(k, a))
        });
        ok
    }

    /// Mutual row subsumption `ρᵢ ≋ σₖ`.
    pub fn rows_subsume_each_other(&self, i: usize, other: &Table, k: usize) -> bool {
        self.row_subsumed_by(i, other, k) && other.row_subsumed_by(k, self, i)
    }

    /// Column subsumption (the row notion under transposition).
    pub fn col_subsumed_by(&self, j: usize, other: &Table, l: usize) -> bool {
        let attrs = self.row_scheme().union(&other.row_scheme());
        let ok = attrs.iter().all(|a| {
            self.col_entries_named(j, a)
                .weakly_contained_in(&other.col_entries_named(l, a))
        });
        ok
    }

    // ------------------------------------------------------------------
    // Structural editing
    // ------------------------------------------------------------------

    /// Append a data row: `row[0]` is the row attribute, `row[1..]` the
    /// data entries. Length must be `width + 1`.
    pub fn push_row(&mut self, row: Vec<Symbol>) {
        assert_eq!(row.len(), self.width + 1, "push_row arity mismatch");
        self.cells_mut().extend(row);
        self.height += 1;
    }

    /// Append a data row given as a slice (row attribute first), avoiding
    /// the caller-side `Vec` of [`Table::push_row`].
    pub fn push_row_slice(&mut self, row: &[Symbol]) {
        assert_eq!(row.len(), self.width + 1, "push_row arity mismatch");
        self.cells_mut().extend_from_slice(row);
        self.height += 1;
    }

    /// Append a batch of data rows through a [`RowAppender`], paying the
    /// copy-on-write materialization, fingerprint invalidation, and
    /// shared-buffer check **once** for the whole batch instead of once
    /// per row. The row-building loops of the algebra (products, unions,
    /// clean-ups) run through this; per-row [`Table::push_row`] costs an
    /// atomic uniqueness check on every call, which is measurable at
    /// product scale.
    pub fn append_rows<R>(&mut self, f: impl FnOnce(&mut RowAppender<'_>) -> R) -> R {
        let width = self.width;
        let cells = self.cells_mut();
        let mut appender = RowAppender {
            cells,
            width,
            added: 0,
        };
        let out = f(&mut appender);
        let added = appender.added;
        self.height += added;
        out
    }

    /// Append `rows` data rows in a single exact-size extension and hand
    /// the *uninitialized* fresh storage to `f` as one mutable slice of
    /// `rows * (width + 1)` [`MaybeUninit`] cells — each consecutive
    /// `width + 1` chunk is one storage row, attribute first. Splitting
    /// the slice into disjoint row ranges (`split_at_mut`) lets
    /// independent workers write their ranges in parallel. Unlike
    /// [`Table::append_rows`], which grows the buffer geometrically as
    /// rows arrive, this pays the copy-on-write materialization and
    /// exactly one allocation up front — and, unlike a ⊥-prefilled
    /// `resize`, never serially memsets storage the caller is about to
    /// overwrite anyway (on large joins that memset *is* the serial
    /// prelude). The new length is committed only after `f` returns, so
    /// a panicking `f` leaves the table's contents unchanged.
    ///
    /// # Safety
    ///
    /// `f` must initialize **every** cell of the slice before returning
    /// normally; returning with any cell uninitialized commits
    /// uninitialized memory as table contents, which is undefined
    /// behavior.
    pub unsafe fn append_rows_uninit<R>(
        &mut self,
        rows: usize,
        f: impl FnOnce(&mut [std::mem::MaybeUninit<Symbol>]) -> R,
    ) -> R {
        let n = rows * (self.width + 1);
        let cells = self.cells_mut();
        let start = cells.len();
        cells.reserve_exact(n);
        let out = f(&mut cells.spare_capacity_mut()[..n]);
        // SAFETY: the capacity holds `start + n` cells and the contract
        // requires `f` to have initialized all `n` new ones.
        unsafe { cells.set_len(start + n) };
        self.height += rows;
        out
    }

    /// Append a data column: `col[0]` is the column attribute, `col[1..]`
    /// the entries top to bottom. Length must be `height + 1`.
    pub fn push_col(&mut self, col: Vec<Symbol>) {
        assert_eq!(col.len(), self.height + 1, "push_col arity mismatch");
        let old_w = self.width + 1;
        let mut cells = Vec::with_capacity((self.height + 1) * (old_w + 1));
        for (i, &extra) in col.iter().enumerate() {
            cells.extend_from_slice(&self.cells[i * old_w..(i + 1) * old_w]);
            cells.push(extra);
        }
        self.replace_cells(cells);
        self.width += 1;
    }

    /// Keep only the data rows at the given indices (in the given order;
    /// repetitions allowed). Row 0 is always kept.
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        let mut cells = Vec::with_capacity((rows.len() + 1) * (self.width + 1));
        cells.extend_from_slice(self.storage_row(0));
        for &i in rows {
            assert!((1..=self.height).contains(&i));
            cells.extend_from_slice(self.storage_row(i));
        }
        Table::from_parts(rows.len(), self.width, cells)
    }

    /// Keep only the data columns at the given indices (in the given order;
    /// repetitions allowed). Column 0 is always kept.
    pub fn select_cols(&self, cols: &[usize]) -> Table {
        let mut cells = Vec::with_capacity((self.height + 1) * (cols.len() + 1));
        for i in 0..=self.height {
            cells.push(self.get(i, 0));
            for &j in cols {
                assert!((1..=self.width).contains(&j));
                cells.push(self.get(i, j));
            }
        }
        Table::from_parts(self.height, cols.len(), cells)
    }

    /// Keep data rows satisfying `pred` (called with the row index).
    pub fn retain_rows(&self, mut pred: impl FnMut(usize) -> bool) -> Table {
        let keep: Vec<usize> = (1..=self.height).filter(|&i| pred(i)).collect();
        self.select_rows(&keep)
    }

    /// Swap data-or-attribute rows `i` and `k` (either may be 0).
    pub fn swap_rows(&mut self, i: usize, k: usize) {
        assert!(i <= self.height && k <= self.height);
        if i == k {
            return;
        }
        for j in 0..=self.width {
            let (a, b) = (self.get(i, j), self.get(k, j));
            self.set(i, j, b);
            self.set(k, j, a);
        }
    }

    /// Swap columns `j` and `l` (either may be 0).
    pub fn swap_cols(&mut self, j: usize, l: usize) {
        assert!(j <= self.width && l <= self.width);
        if j == l {
            return;
        }
        for i in 0..=self.height {
            let (a, b) = (self.get(i, j), self.get(i, l));
            self.set(i, j, b);
            self.set(i, l, a);
        }
    }

    /// Matrix transposition: rows become columns (paper §3.3). The table
    /// name stays at (0,0); column attributes become row attributes and
    /// vice versa.
    pub fn transpose(&self) -> Table {
        let mut t = Table::new(self.name(), self.width, self.height);
        for i in 0..=self.height {
            for j in 0..=self.width {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Apply `f` to every cell (used by tests for genericity morphisms).
    pub fn map_symbols(&self, mut f: impl FnMut(Symbol) -> Symbol) -> Table {
        Table::from_parts(
            self.height,
            self.width,
            self.cells.iter().map(|&s| f(s)).collect(),
        )
    }

    // ------------------------------------------------------------------
    // Permutation-invariant comparison
    // ------------------------------------------------------------------

    /// A normal form under permutations of the non-attribute rows and
    /// non-attribute columns: repeatedly sort data columns by their full
    /// storage column and data rows by their full storage row, until a
    /// fixpoint. Deterministic; for tables whose attributes or data break
    /// ties (all tables in this repository and all the paper's examples)
    /// the fixpoint is a true canonical representative of the permutation
    /// class.
    pub fn canonicalize(&self) -> Table {
        let mut t = self.clone();
        for _ in 0..8 {
            let before = t.clone();
            // Sort data columns by (attribute, entries top-to-bottom).
            let mut cols: Vec<usize> = (1..=t.width).collect();
            cols.sort_by(|&a, &b| cmp_syms(&t.storage_col(a), &t.storage_col(b)));
            t = t.select_cols(&cols);
            // Sort data rows by full row content.
            let mut rows: Vec<usize> = (1..=t.height).collect();
            rows.sort_by(|&a, &b| cmp_syms(t.storage_row(a), t.storage_row(b)));
            t = t.select_rows(&rows);
            if t == before {
                break;
            }
        }
        t
    }

    /// Equality up to permutations of non-attribute rows and columns — the
    /// paper's notion of when two tables are "identical" (§4.1,
    /// condition (ii) of transformations).
    ///
    /// Fast path: the sort-fixpoint normal forms coincide. When they do
    /// not — which can only happen for tables with several
    /// indistinguishable columns, where the fixpoint is not confluent — an
    /// exact backtracking search over column matchings decides the
    /// question (grouped by column signature, so the search only branches
    /// among genuinely ambiguous columns).
    pub fn equiv(&self, other: &Table) -> bool {
        if self.height != other.height || self.width != other.width {
            return false;
        }
        if self.canonicalize() == other.canonicalize() {
            return true;
        }
        self.equiv_exact(other)
    }

    /// Exact permutation matching: find a bijection between data columns
    /// (respecting per-column content multisets) under which the row
    /// multisets agree.
    fn equiv_exact(&self, other: &Table) -> bool {
        // Column signature: (attribute, sorted entries). A valid column
        // bijection can only match equal signatures.
        let sig = |t: &Table, j: usize| -> Vec<Symbol> {
            let mut s = t.storage_col(j);
            s[1..].sort();
            s
        };
        let mine: Vec<Vec<Symbol>> = (1..=self.width).map(|j| sig(self, j)).collect();
        let theirs: Vec<Vec<Symbol>> = (1..=other.width).map(|j| sig(other, j)).collect();
        {
            let mut a = mine.clone();
            let mut b = theirs.clone();
            a.sort();
            b.sort();
            if a != b {
                return false;
            }
        }
        // Row attributes must agree as a multiset.
        {
            let mut a = self.row_attrs();
            let mut b = other.row_attrs();
            a.sort();
            b.sort();
            if a != b {
                return false;
            }
        }

        fn rows_match(a: &Table, b: &Table, perm: &[usize]) -> bool {
            let project = |t: &Table, order: &[usize]| -> Vec<Vec<Symbol>> {
                let mut rows: Vec<Vec<Symbol>> = (1..=t.height())
                    .map(|i| {
                        let mut row = vec![t.get(i, 0)];
                        row.extend(order.iter().map(|&j| t.get(i, j)));
                        row
                    })
                    .collect();
                rows.sort();
                rows
            };
            let identity: Vec<usize> = (1..=a.width()).collect();
            project(a, &identity) == project(b, perm)
        }

        fn search(
            a: &Table,
            b: &Table,
            mine: &[Vec<Symbol>],
            theirs: &[Vec<Symbol>],
            perm: &mut Vec<usize>,
            used: &mut Vec<bool>,
            budget: &mut usize,
        ) -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let k = perm.len();
            if k == mine.len() {
                return rows_match(a, b, perm);
            }
            for j in 0..theirs.len() {
                if used[j] || theirs[j] != mine[k] {
                    continue;
                }
                used[j] = true;
                perm.push(j + 1);
                if search(a, b, mine, theirs, perm, used, budget) {
                    return true;
                }
                perm.pop();
                used[j] = false;
            }
            false
        }

        let mut perm = Vec::with_capacity(self.width);
        let mut used = vec![false; self.width];
        // The budget bounds pathological inputs (many identical columns);
        // within it the answer is exact, beyond it we conservatively
        // report inequality.
        let mut budget = 1_000_000usize;
        search(
            self,
            other,
            &mine,
            &theirs,
            &mut perm,
            &mut used,
            &mut budget,
        )
    }

    /// Remove exactly-duplicate data rows (keeping first occurrences).
    /// This is *not* a paper operation (clean-up is); it is a convenience
    /// for building fixtures and baselines.
    pub fn dedup_rows(&self) -> Table {
        let mut seen = std::collections::HashSet::new();
        self.retain_rows(|i| seen.insert(self.storage_row(i).to_vec()))
    }
}

/// Writer handle for one [`Table::append_rows`] batch: the cell buffer is
/// already uniquely owned, so each push is a plain `Vec` extend. Rows are
/// arity-checked exactly as [`Table::push_row`] checks them; the table's
/// height is updated when the batch closes.
pub struct RowAppender<'a> {
    cells: &'a mut Vec<Symbol>,
    width: usize,
    added: usize,
}

impl RowAppender<'_> {
    /// Reserve buffer space for `rows` further data rows.
    pub fn reserve_rows(&mut self, rows: usize) {
        self.cells.reserve(rows * (self.width + 1));
    }

    /// Append one data row (row attribute first, then the entries).
    pub fn push_row(&mut self, row: &[Symbol]) {
        assert_eq!(row.len(), self.width + 1, "push_row arity mismatch");
        self.cells.extend_from_slice(row);
        self.added += 1;
    }

    /// Append the data row `attr · left · right` without materializing it
    /// first — the shape every product row has.
    pub fn push_row_parts(&mut self, attr: Symbol, left: &[Symbol], right: &[Symbol]) {
        assert_eq!(
            1 + left.len() + right.len(),
            self.width + 1,
            "push_row arity mismatch"
        );
        self.cells.push(attr);
        self.cells.extend_from_slice(left);
        self.cells.extend_from_slice(right);
        self.added += 1;
    }

    /// Append one data row from an iterator of its `width + 1` symbols.
    pub fn push_row_iter(&mut self, row: impl IntoIterator<Item = Symbol>) {
        let before = self.cells.len();
        self.cells.extend(row);
        assert_eq!(
            self.cells.len() - before,
            self.width + 1,
            "push_row arity mismatch"
        );
        self.added += 1;
    }
}

fn cmp_syms(a: &[Symbol], b: &[Symbol]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.canonical_cmp(*y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        Table::relational(
            "Sales",
            &["Part", "Region", "Sold"],
            &[
                &["nuts", "east", "50"],
                &["nuts", "west", "60"],
                &["bolts", "east", "70"],
            ],
        )
    }

    #[test]
    fn regions_match_figure_2() {
        let t = sales();
        assert_eq!(t.name(), Symbol::name("Sales"));
        assert_eq!(
            t.col_attrs(),
            &[
                Symbol::name("Part"),
                Symbol::name("Region"),
                Symbol::name("Sold")
            ]
        );
        assert!(t.row_attrs().iter().all(|a| a.is_null()));
        assert_eq!(t.get(1, 3), Symbol::value("50"));
        assert_eq!(t.height(), 3);
        assert_eq!(t.width(), 3);
    }

    #[test]
    fn append_rows_uninit_extends_exactly_and_matches_push_row() {
        let mut a = sales();
        let mut b = sales();
        let row = [
            Symbol::Null,
            Symbol::value("nuts"),
            Symbol::value("east"),
            Symbol::value("80"),
        ];
        b.push_row_slice(&row);
        b.push_row_slice(&row);
        // SAFETY: the closure writes every cell of the extension.
        unsafe {
            a.append_rows_uninit(2, |fresh| {
                assert_eq!(fresh.len(), 2 * (3 + 1));
                for (cell, &v) in fresh.iter_mut().zip(row.iter().cycle()) {
                    cell.write(v);
                }
            });
        }
        assert_eq!(a, b);
        assert_eq!(a.height(), 5);
        // SAFETY: zero rows — an empty slice is trivially initialized.
        unsafe {
            a.append_rows_uninit(0, |fresh| assert!(fresh.is_empty()));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn from_grid_positional_defaults() {
        let t = Table::from_grid(&[
            &["Sales", "Part", "Sold"],
            &["Region", "_", "east"],
            &["_", "nuts", "50"],
        ])
        .unwrap();
        // Row/column attributes default to names, data to values.
        assert_eq!(t.get(1, 0), Symbol::name("Region"));
        assert_eq!(t.get(1, 2), Symbol::value("east"));
        assert_eq!(t.get(2, 1), Symbol::value("nuts"));
        assert!(t.get(1, 1).is_null());
    }

    #[test]
    fn from_grid_rejects_ragged_and_empty() {
        assert_eq!(
            Table::from_grid(&[&["T", "A"], &["x"]]),
            Err(CoreError::RaggedGrid {
                row: 1,
                got: 1,
                expected: 2
            })
        );
        assert_eq!(Table::from_grid(&[]), Err(CoreError::EmptyGrid));
    }

    #[test]
    fn from_grid_rejects_reserved_prefix() {
        let reserved = "\u{1F}x".to_string();
        let r: &[&str] = &["T", &reserved];
        assert!(matches!(
            Table::from_grid(&[r, &["_", "y"]]),
            Err(CoreError::ReservedSymbol(_))
        ));
    }

    #[test]
    fn transpose_is_an_involution() {
        let t =
            Table::from_grid(&[&["T", "A", "B"], &["r1", "1", "2"], &["r2", "3", "4"]]).unwrap();
        assert_eq!(t.transpose().transpose(), t);
        let tt = t.transpose();
        assert_eq!(tt.height(), t.width());
        assert_eq!(tt.width(), t.height());
        assert_eq!(tt.col_attrs().to_vec(), t.row_attrs());
        assert_eq!(tt.name(), t.name());
        assert_eq!(tt.get(1, 2), t.get(2, 1));
    }

    #[test]
    fn multi_occurrence_row_entries() {
        // Two columns both named Sold, as in SalesInfo2 (Figure 1).
        let t = Table::from_grid(&[
            &["Sales", "Part", "Sold", "Sold"],
            &["_", "nuts", "50", "_"],
        ])
        .unwrap();
        let sold = Symbol::name("Sold");
        let entries = t.row_entries_named(1, sold);
        assert!(entries.contains(Symbol::value("50")));
        assert!(entries.contains(Symbol::Null));
        assert_eq!(t.cols_named(sold), vec![2, 3]);
    }

    #[test]
    fn subsumption_moves_values_between_same_named_columns() {
        let a = Table::from_grid(&[&["T", "X", "X"], &["_", "1", "_"]]).unwrap();
        let b = Table::from_grid(&[&["T", "X", "X"], &["_", "_", "1"]]).unwrap();
        // ρ₁(X) = {1, ⊥} in both: they subsume each other.
        assert!(a.rows_subsume_each_other(1, &b, 1));
    }

    #[test]
    fn subsumption_is_a_preorder() {
        let less = Table::from_grid(&[&["T", "A", "B"], &["_", "1", "_"]]).unwrap();
        let more = Table::from_grid(&[&["T", "A", "B"], &["_", "1", "2"]]).unwrap();
        assert!(less.row_subsumed_by(1, &more, 1));
        assert!(!more.row_subsumed_by(1, &less, 1));
        assert!(less.row_subsumed_by(1, &less, 1));
    }

    #[test]
    fn subsumption_respects_foreign_attributes() {
        // A row with a value under attribute C cannot be subsumed by a row
        // of a table that has no C column.
        let a = Table::from_grid(&[&["T", "C"], &["_", "9"]]).unwrap();
        let b = Table::from_grid(&[&["T", "A"], &["_", "9"]]).unwrap();
        assert!(!a.row_subsumed_by(1, &b, 1));
    }

    #[test]
    fn push_and_select() {
        let mut t = sales();
        t.push_row(vec![
            Symbol::Null,
            Symbol::value("screws"),
            Symbol::value("north"),
            Symbol::value("60"),
        ]);
        assert_eq!(t.height(), 4);
        t.push_col(vec![
            Symbol::name("Year"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
            Symbol::value("96"),
        ]);
        assert_eq!(t.width(), 4);
        assert_eq!(t.col_attr(4), Symbol::name("Year"));
        assert_eq!(t.get(4, 4), Symbol::value("96"));

        let proj = t.select_cols(&[1, 4]);
        assert_eq!(proj.width(), 2);
        assert_eq!(
            proj.col_attrs(),
            &[Symbol::name("Part"), Symbol::name("Year")]
        );

        let sel = t.retain_rows(|i| t.get(i, 2) == Symbol::value("east"));
        assert_eq!(sel.height(), 2);
    }

    #[test]
    fn swap_rows_and_cols() {
        let mut t = sales();
        let r1 = t.storage_row(1).to_vec();
        let r3 = t.storage_row(3).to_vec();
        t.swap_rows(1, 3);
        assert_eq!(t.storage_row(1), &r3[..]);
        assert_eq!(t.storage_row(3), &r1[..]);
        let c1 = t.storage_col(1);
        let c2 = t.storage_col(2);
        t.swap_cols(1, 2);
        assert_eq!(t.storage_col(1), c2);
        assert_eq!(t.storage_col(2), c1);
    }

    #[test]
    fn equiv_ignores_row_and_column_order() {
        let t = sales();
        let permuted = t.select_rows(&[3, 1, 2]).select_cols(&[3, 1, 2]);
        assert_ne!(t, permuted);
        assert!(t.equiv(&permuted));
        assert!(!t.equiv(&t.retain_rows(|i| i > 1)));
    }

    #[test]
    fn equiv_distinguishes_different_content() {
        let a = Table::relational("T", &["A"], &[&["1"], &["2"]]);
        let b = Table::relational("T", &["A"], &[&["1"], &["3"]]);
        assert!(!a.equiv(&b));
    }

    #[test]
    fn is_relational_checks() {
        assert!(sales().is_relational());
        let mut t = sales();
        t.set(1, 0, Symbol::name("Region"));
        assert!(!t.is_relational());
        let dup = Table::from_grid(&[&["T", "A", "A"], &["_", "1", "2"]]).unwrap();
        assert!(!dup.is_relational());
    }

    #[test]
    fn dedup_rows_keeps_first() {
        let t = Table::relational("T", &["A"], &[&["1"], &["1"], &["2"]]);
        let d = t.dedup_rows();
        assert_eq!(d.height(), 2);
    }

    #[test]
    fn try_get_bounds() {
        let t = sales();
        assert!(t.try_get(0, 0).is_ok());
        assert!(t.try_get(4, 0).is_err());
    }

    #[test]
    fn clone_shares_cells_until_mutation() {
        let t = sales();
        let mut c = t.clone();
        assert!(t.shares_cells_with(&c));
        assert_eq!(t, c);
        c.set(1, 1, Symbol::value("washers"));
        assert!(!t.shares_cells_with(&c));
        assert_ne!(t, c);
        assert_eq!(t.get(1, 1), Symbol::value("nuts"));
    }

    #[test]
    fn mutating_a_uniquely_owned_table_does_not_reallocate() {
        let mut t = sales();
        let before = std::sync::Arc::as_ptr(&t.cells);
        t.set(1, 1, Symbol::value("washers"));
        assert_eq!(std::sync::Arc::as_ptr(&t.cells), before);
    }

    #[test]
    fn mutating_a_shared_table_counts_a_cow_copy() {
        let t = sales();
        let mut c = t.clone();
        let before = crate::stats::cow_copies();
        c.set(1, 1, Symbol::value("washers"));
        assert!(crate::stats::cow_copies() > before);
    }

    #[test]
    fn fingerprint_caches_and_invalidates() {
        let t = sales();
        let f = t.fingerprint();
        assert_eq!(t.fingerprint(), f);
        // The cache travels with the clone…
        assert_eq!(t.clone().fingerprint(), f);
        // …and mutation invalidates it.
        let mut m = t.clone();
        m.set(1, 1, Symbol::value("x"));
        assert_ne!(m.fingerprint(), f);
        // Restoring the content restores the fingerprint.
        m.set(1, 1, Symbol::value("nuts"));
        assert_eq!(m.fingerprint(), f);
        assert_eq!(m, t);
    }

    #[test]
    fn fingerprint_agrees_across_independent_builds() {
        let a = sales();
        let b = sales();
        assert!(!a.shares_cells_with(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_shape_and_content() {
        let a = Table::relational("T", &["A"], &[&["1"]]);
        let b = Table::relational("T", &["A"], &[&["2"]]);
        let c = Table::relational("U", &["A"], &[&["1"]]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn push_row_slice_matches_push_row() {
        let mut a = sales();
        let mut b = sales();
        let row = vec![
            Symbol::Null,
            Symbol::value("screws"),
            Symbol::value("north"),
            Symbol::value("60"),
        ];
        a.push_row(row.clone());
        b.push_row_slice(&row);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_table_edge_cases() {
        let t = Table::new(Symbol::name("E"), 0, 0);
        assert_eq!(t.height(), 0);
        assert_eq!(t.width(), 0);
        assert!(t.col_attrs().is_empty());
        assert!(t.row_attrs().is_empty());
        assert_eq!(t.canonicalize(), t);
        assert!(t.equiv(&t));
        assert!(t.is_relational());
    }
}
