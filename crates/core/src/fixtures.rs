//! The paper's running example: the four sales databases of Figure 1 and
//! the expected outputs of Figures 4 and 5, plus deterministic scaled
//! generators used by the benchmark harness.
//!
//! Each `SalesInfo` database exists in two versions:
//!
//! * the **bold** version (the parts outlined in bold in Figure 1): the raw
//!   sales data;
//! * the **full** version, which additionally absorbs the OLAP summary data
//!   (per-part totals, per-region totals, grand total) shown in regular
//!   outline.
//!
//! One OCR note: the `north` row of `SalesInfo3` is garbled in the
//! available scan; we reconstruct it as `(⊥, 60, 40, 100)` — the unique
//! assignment consistent with the base relation (`screws/north/60`,
//! `bolts/north/40`) and the printed row total `100`.

use crate::database::Database;
use crate::symbol::Symbol;
use crate::table::Table;

/// The raw sales relation of `SalesInfo1` (bold part of Figure 1):
/// `Sales(Part, Region, Sold)` with eight tuples.
pub fn sales_relation() -> Table {
    Table::relational(
        "Sales",
        &["Part", "Region", "Sold"],
        &[
            &["nuts", "east", "50"],
            &["nuts", "west", "60"],
            &["nuts", "south", "40"],
            &["screws", "west", "50"],
            &["screws", "north", "60"],
            &["screws", "south", "50"],
            &["bolts", "east", "70"],
            &["bolts", "north", "40"],
        ],
    )
}

/// `SalesInfo1`, bold part: the relational representation.
pub fn sales_info1() -> Database {
    Database::from_tables([sales_relation()])
}

/// `SalesInfo1`, full: relational representation plus the three summary
/// relations (`TotalPartSales`, `TotalRegionSales`, `GrandTotal`).
pub fn sales_info1_full() -> Database {
    Database::from_tables([
        sales_relation(),
        Table::relational(
            "TotalPartSales",
            &["Part", "Total"],
            &[&["nuts", "150"], &["screws", "160"], &["bolts", "110"]],
        ),
        Table::relational(
            "TotalRegionSales",
            &["Region", "Total"],
            &[
                &["east", "120"],
                &["west", "110"],
                &["north", "100"],
                &["south", "90"],
            ],
        ),
        Table::relational("GrandTotal", &["Total"], &[&["420"]]),
    ])
}

/// `SalesInfo2`, bold part: sales organized per region; four columns all
/// named `Sold`, a `Region` header row naming each column's region.
pub fn sales_info2() -> Database {
    let t = Table::from_grid(&[
        &["Sales", "Part", "Sold", "Sold", "Sold", "Sold"],
        &["Region", "_", "east", "west", "north", "south"],
        &["_", "nuts", "50", "60", "_", "40"],
        &["_", "screws", "_", "50", "60", "50"],
        &["_", "bolts", "70", "_", "40", "_"],
    ])
    .unwrap();
    Database::from_tables([t])
}

/// `SalesInfo2`, full: the bold table extended with the `Total` summary
/// column (also headed `Sold`, region entry the *name* `Total`) and the
/// `Total` summary row.
pub fn sales_info2_full() -> Database {
    let t = Table::from_grid(&[
        &["Sales", "Part", "Sold", "Sold", "Sold", "Sold", "Sold"],
        &["Region", "_", "east", "west", "north", "south", "n:Total"],
        &["_", "nuts", "50", "60", "_", "40", "150"],
        &["_", "screws", "_", "50", "60", "50", "160"],
        &["_", "bolts", "70", "_", "40", "_", "110"],
        &["Total", "_", "120", "110", "100", "90", "420"],
    ])
    .unwrap();
    Database::from_tables([t])
}

/// `SalesInfo3`, bold part: parts as column attributes, regions as row
/// attributes — row and column names are *data* (values).
pub fn sales_info3() -> Database {
    let t = Table::from_grid(&[
        &["Sales", "v:nuts", "v:screws", "v:bolts"],
        &["v:east", "50", "_", "70"],
        &["v:west", "60", "50", "_"],
        &["v:north", "_", "60", "40"],
        &["v:south", "40", "50", "_"],
    ])
    .unwrap();
    Database::from_tables([t])
}

/// `SalesInfo3`, full: with the `Total` summary row and column (attribute
/// positions hold the *name* `Total`).
pub fn sales_info3_full() -> Database {
    let t = Table::from_grid(&[
        &["Sales", "v:nuts", "v:screws", "v:bolts", "n:Total"],
        &["v:east", "50", "_", "70", "120"],
        &["v:west", "60", "50", "_", "110"],
        &["v:north", "_", "60", "40", "100"],
        &["v:south", "40", "50", "_", "90"],
        &["n:Total", "150", "160", "110", "420"],
    ])
    .unwrap();
    Database::from_tables([t])
}

fn info4_table(region: &str, rows: &[(&str, &str)], total: Option<&str>) -> Table {
    let mut grid: Vec<Vec<String>> = vec![
        vec!["Sales".into(), "Part".into(), "Sold".into()],
        vec![
            "Region".into(),
            format!("v:{region}"),
            format!("v:{region}"),
        ],
    ];
    for (part, sold) in rows {
        grid.push(vec!["_".into(), (*part).into(), (*sold).into()]);
    }
    if let Some(tot) = total {
        grid.push(vec!["Total".into(), "_".into(), (*tot).into()]);
    }
    let borrowed: Vec<Vec<&str>> = grid
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let slices: Vec<&[&str]> = borrowed.iter().map(Vec::as_slice).collect();
    Table::from_grid(&slices).unwrap()
}

/// `SalesInfo4`, bold part: one `Sales` table per region — all four tables
/// share the name `Sales`; their number depends on the instance.
pub fn sales_info4() -> Database {
    Database::from_tables([
        info4_table("east", &[("nuts", "50"), ("bolts", "70")], None),
        info4_table("west", &[("nuts", "60"), ("screws", "50")], None),
        info4_table("north", &[("screws", "60"), ("bolts", "40")], None),
        info4_table("south", &[("nuts", "40"), ("screws", "50")], None),
    ])
}

/// `SalesInfo4`, full: each regional table gains its `Total` row, and a
/// fifth `Sales` table (region entry the name `Total`) holds the per-part
/// totals and the grand total.
pub fn sales_info4_full() -> Database {
    let totals = Table::from_grid(&[
        &["Sales", "Part", "Sold"],
        &["Region", "n:Total", "n:Total"],
        &["_", "nuts", "150"],
        &["_", "screws", "160"],
        &["_", "bolts", "110"],
        &["Total", "_", "420"],
    ])
    .unwrap();
    Database::from_tables([
        info4_table("east", &[("nuts", "50"), ("bolts", "70")], Some("120")),
        info4_table("west", &[("nuts", "60"), ("screws", "50")], Some("110")),
        info4_table("north", &[("screws", "60"), ("bolts", "40")], Some("100")),
        info4_table("south", &[("nuts", "40"), ("screws", "50")], Some("90")),
        totals,
    ])
}

/// The exact output of Figure 4 (bottom):
/// `Sales ← GROUP by Region on Sold (Sales)` applied to [`sales_relation`].
///
/// The attribute row keeps `Part` and gains one `Sold` per original data
/// row; the first data row (row attribute `Region`) transposes the original
/// `Region` column; original row `i` contributes its `Sold` entry under the
/// `i`-th `Sold` copy, everything else ⊥.
pub fn figure4_grouped() -> Table {
    Table::from_grid(&[
        &[
            "Sales", "Part", "Sold", "Sold", "Sold", "Sold", "Sold", "Sold", "Sold", "Sold",
        ],
        &[
            "Region", "_", "east", "west", "south", "west", "north", "south", "east", "north",
        ],
        &["_", "nuts", "50", "_", "_", "_", "_", "_", "_", "_"],
        &["_", "nuts", "_", "60", "_", "_", "_", "_", "_", "_"],
        &["_", "nuts", "_", "_", "40", "_", "_", "_", "_", "_"],
        &["_", "screws", "_", "_", "_", "50", "_", "_", "_", "_"],
        &["_", "screws", "_", "_", "_", "_", "60", "_", "_", "_"],
        &["_", "screws", "_", "_", "_", "_", "_", "50", "_", "_"],
        &["_", "bolts", "_", "_", "_", "_", "_", "_", "70", "_"],
        &["_", "bolts", "_", "_", "_", "_", "_", "_", "_", "40"],
    ])
    .unwrap()
}

/// The exact output of Figure 5:
/// `Sales ← MERGE on Sold by Region (Sales)` applied to the bold
/// `SalesInfo2` table — the "uneconomical" relational representation with
/// one row per (part, region) pair, ⊥ where no sale occurred.
pub fn figure5_merged() -> Table {
    Table::from_grid(&[
        &["Sales", "Part", "Region", "Sold"],
        &["_", "nuts", "east", "50"],
        &["_", "nuts", "west", "60"],
        &["_", "nuts", "north", "_"],
        &["_", "nuts", "south", "40"],
        &["_", "screws", "east", "_"],
        &["_", "screws", "west", "50"],
        &["_", "screws", "north", "60"],
        &["_", "screws", "south", "50"],
        &["_", "bolts", "east", "70"],
        &["_", "bolts", "west", "_"],
        &["_", "bolts", "north", "40"],
        &["_", "bolts", "south", "_"],
    ])
    .unwrap()
}

// ----------------------------------------------------------------------
// Scaled generators (deterministic; the benchmark harness sweeps these)
// ----------------------------------------------------------------------

/// Deterministic "sold" figure for a (part, region) pair; `None` encodes a
/// missing sale. Roughly 3/4 of the pairs have a sale, mimicking the ~70%
/// density of the paper's example.
fn sold_amount(p: usize, r: usize) -> Option<u64> {
    // A small mixing function keeps the pattern irregular but reproducible.
    let h = (p as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(r as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    if h.is_multiple_of(4) {
        None
    } else {
        Some(10 + h % 90)
    }
}

/// Name of the `i`-th synthetic part.
pub fn part_name(i: usize) -> String {
    format!("part{i:04}")
}

/// Name of the `i`-th synthetic region.
pub fn region_name(i: usize) -> String {
    format!("region{i:04}")
}

/// A scaled `SalesInfo1`-shaped relation: one row per (part, region) pair
/// that has a sale.
pub fn make_sales_relation(parts: usize, regions: usize) -> Table {
    let attrs = [
        Symbol::name("Part"),
        Symbol::name("Region"),
        Symbol::name("Sold"),
    ];
    let mut rows = Vec::new();
    for p in 0..parts {
        for r in 0..regions {
            if let Some(s) = sold_amount(p, r) {
                rows.push(vec![
                    Symbol::value(&part_name(p)),
                    Symbol::value(&region_name(r)),
                    Symbol::value(&s.to_string()),
                ]);
            }
        }
    }
    Table::relational_syms(Symbol::name("Sales"), &attrs, &rows)
}

/// A scaled `SalesInfo2`-shaped cross-tab: one `Sold` column per region.
pub fn make_sales_info2(parts: usize, regions: usize) -> Table {
    let mut t = Table::new(Symbol::name("Sales"), parts + 1, regions + 1);
    t.set(0, 1, Symbol::name("Part"));
    for r in 0..regions {
        t.set(0, r + 2, Symbol::name("Sold"));
    }
    t.set(1, 0, Symbol::name("Region"));
    for r in 0..regions {
        t.set(1, r + 2, Symbol::value(&region_name(r)));
    }
    for p in 0..parts {
        t.set(p + 2, 1, Symbol::value(&part_name(p)));
        for r in 0..regions {
            if let Some(s) = sold_amount(p, r) {
                t.set(p + 2, r + 2, Symbol::value(&s.to_string()));
            }
        }
    }
    t
}

/// A scaled `SalesInfo4`-shaped database: one `Sales` table per region.
pub fn make_sales_info4(parts: usize, regions: usize) -> Database {
    let mut db = Database::new();
    for r in 0..regions {
        let region = Symbol::value(&region_name(r));
        let mut t = Table::new(Symbol::name("Sales"), 1, 2);
        t.set(0, 1, Symbol::name("Part"));
        t.set(0, 2, Symbol::name("Sold"));
        t.set(1, 0, Symbol::name("Region"));
        t.set(1, 1, region);
        t.set(1, 2, region);
        for p in 0..parts {
            if let Some(s) = sold_amount(p, r) {
                t.push_row(vec![
                    Symbol::Null,
                    Symbol::value(&part_name(p)),
                    Symbol::value(&s.to_string()),
                ]);
            }
        }
        db.insert(t);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_dimensions() {
        assert_eq!(sales_relation().height(), 8);
        assert_eq!(sales_relation().width(), 3);
        assert!(sales_relation().is_relational());

        let info2 = sales_info2();
        let t = info2.table_str("Sales").unwrap();
        assert_eq!(t.width(), 5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.cols_named(Symbol::name("Sold")).len(), 4);

        assert_eq!(sales_info4().len(), 4);
        assert_eq!(sales_info4_full().len(), 5);
    }

    #[test]
    fn info2_region_row_names_the_columns() {
        let info2 = sales_info2();
        let t = info2.table_str("Sales").unwrap();
        assert_eq!(t.get(1, 0), Symbol::name("Region"));
        assert_eq!(t.get(1, 2), Symbol::value("east"));
        assert!(t.get(1, 1).is_null());
    }

    #[test]
    fn info3_attributes_are_data() {
        let info3 = sales_info3();
        let t = info3.table_str("Sales").unwrap();
        assert!(t.col_attrs().iter().all(|a| a.is_value()));
        assert!(t.row_attrs().iter().all(|a| a.is_value()));
        // nuts/east = 50
        assert_eq!(t.get(1, 1), Symbol::value("50"));
    }

    #[test]
    fn full_versions_absorb_summaries() {
        let t2 = sales_info2_full();
        let t = t2.table_str("Sales").unwrap();
        assert_eq!(t.width(), 6);
        assert_eq!(t.height(), 5);
        // Grand total sits at the intersection of the Total row and column.
        assert_eq!(t.get(5, 6), Symbol::value("420"));
        assert_eq!(sales_info1_full().len(), 4);
        let t3 = sales_info3_full();
        assert_eq!(
            t3.table_str("Sales").unwrap().get(5, 4),
            Symbol::value("420")
        );
    }

    #[test]
    fn figure4_shape() {
        let g = figure4_grouped();
        assert_eq!(g.width(), 9); // Part + 8 × Sold
        assert_eq!(g.height(), 9); // Region row + 8 data rows
        assert_eq!(g.get(1, 0), Symbol::name("Region"));
        assert_eq!(g.cols_named(Symbol::name("Sold")).len(), 8);
        // Row i carries exactly one non-null Sold entry, in column i+1.
        for i in 2..=9 {
            let nonnull: Vec<usize> = (2..=9).filter(|&j| !g.get(i, j).is_null()).collect();
            assert_eq!(nonnull, vec![i], "row {i}");
        }
    }

    #[test]
    fn figure5_is_total_cross_product() {
        let m = figure5_merged();
        assert_eq!(m.height(), 12); // 3 parts × 4 regions
        assert_eq!(m.width(), 3);
        assert_eq!(
            m.col_attrs(),
            &[
                Symbol::name("Part"),
                Symbol::name("Region"),
                Symbol::name("Sold")
            ]
        );
    }

    #[test]
    fn generators_are_consistent_with_each_other() {
        let (p, r) = (5, 4);
        let rel = make_sales_relation(p, r);
        let info2 = make_sales_info2(p, r);
        let info4 = make_sales_info4(p, r);
        assert_eq!(info2.height(), p + 1);
        assert_eq!(info2.width(), r + 1);
        assert_eq!(info4.len(), r);
        // Every relational row appears as a non-null cell of info2.
        for i in 1..=rel.height() {
            let part = rel.get(i, 1);
            let region = rel.get(i, 2);
            let sold = rel.get(i, 3);
            let pi = (2..=info2.height())
                .find(|&x| info2.get(x, 1) == part)
                .unwrap();
            let rj = (2..=info2.width())
                .find(|&j| info2.get(1, j) == region)
                .unwrap();
            assert_eq!(info2.get(pi, rj), sold);
        }
        // Total sale count matches between rel and info4.
        let info4_rows: usize = info4.tables().iter().map(|t| t.height() - 1).sum();
        assert_eq!(info4_rows, rel.height());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(make_sales_relation(7, 3), make_sales_relation(7, 3));
    }
}
