//! Weak containment, weak equality, and symbol sets (paper §2).
//!
//! The presence of ⊥ requires an adapted notion of equality: for symbol
//! sets `A, B ⊆ S`,
//!
//! * `A ≼ B` (*weakly contained*)  iff  `A \ {⊥} ⊆ B \ {⊥}`;
//! * `A ≗ B` (*weakly equal*)      iff  `A ≼ B` and `B ≼ A`.
//!
//! These are the comparisons underlying row/column subsumption and the
//! selection operation of the tabular algebra.

use crate::symbol::Symbol;

/// A finite set of symbols, stored sorted and deduplicated.
///
/// Used for the multi-occurrence semantics of attributes: `ρᵢ(a)` — the set
/// of data entries of row `i` under all columns named `a` — is a
/// `SymbolSet`, as are attribute-set parameters of algebra operations.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SymbolSet {
    items: Vec<Symbol>,
}

impl SymbolSet {
    /// The empty set.
    pub fn new() -> SymbolSet {
        SymbolSet::default()
    }

    /// Singleton set.
    pub fn singleton(s: Symbol) -> SymbolSet {
        SymbolSet { items: vec![s] }
    }

    /// Insert a symbol.
    pub fn insert(&mut self, s: Symbol) {
        if let Err(pos) = self.items.binary_search(&s) {
            self.items.insert(pos, s);
        }
    }

    /// Membership test (O(log n)).
    pub fn contains(&self, s: Symbol) -> bool {
        self.items.binary_search(&s).is_ok()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.items.iter().copied()
    }

    /// Set union.
    pub fn union(&self, other: &SymbolSet) -> SymbolSet {
        SymbolSet::from_iter(self.iter().chain(other.iter()))
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &SymbolSet) -> SymbolSet {
        SymbolSet {
            items: self.iter().filter(|s| !other.contains(*s)).collect(),
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &SymbolSet) -> SymbolSet {
        SymbolSet {
            items: self.iter().filter(|s| other.contains(*s)).collect(),
        }
    }

    /// Weak containment `self ≼ other`: every non-⊥ element of `self` is in
    /// `other`.
    pub fn weakly_contained_in(&self, other: &SymbolSet) -> bool {
        self.iter()
            .filter(|s| !s.is_null())
            .all(|s| other.contains(s))
    }

    /// Weak equality `self ≗ other`.
    pub fn weakly_equal(&self, other: &SymbolSet) -> bool {
        self.weakly_contained_in(other) && other.weakly_contained_in(self)
    }
}

impl FromIterator<Symbol> for SymbolSet {
    /// Build from any iterator, sorting and deduplicating.
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> SymbolSet {
        let mut items: Vec<Symbol> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        SymbolSet { items }
    }
}

impl<'a> IntoIterator for &'a SymbolSet {
    type Item = Symbol;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Symbol>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

/// Weak containment on raw symbol slices (treated as sets).
pub fn weakly_contained(a: &[Symbol], b: &[Symbol]) -> bool {
    a.iter().filter(|s| !s.is_null()).all(|s| b.contains(s))
}

/// Weak equality on raw symbol slices (treated as sets).
pub fn weakly_equal(a: &[Symbol], b: &[Symbol]) -> bool {
    weakly_contained(a, b) && weakly_contained(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Symbol {
        Symbol::value(s)
    }

    #[test]
    fn weak_containment_ignores_null() {
        let a = SymbolSet::from_iter([Symbol::Null, v("x")]);
        let b = SymbolSet::from_iter([v("x"), v("y")]);
        assert!(a.weakly_contained_in(&b));
        assert!(!b.weakly_contained_in(&a));
    }

    #[test]
    fn weak_equality_is_equality_modulo_null() {
        let a = SymbolSet::from_iter([Symbol::Null, v("x"), v("y")]);
        let b = SymbolSet::from_iter([v("y"), v("x")]);
        assert!(a.weakly_equal(&b));
        let c = SymbolSet::from_iter([v("x")]);
        assert!(!a.weakly_equal(&c));
    }

    #[test]
    fn weak_equality_is_an_equivalence() {
        // Reflexive, symmetric, transitive on representatives modulo ⊥.
        let sets = [
            SymbolSet::from_iter([v("a"), Symbol::Null]),
            SymbolSet::from_iter([v("a")]),
            SymbolSet::from_iter([v("a"), v("a"), Symbol::Null]),
        ];
        for s in &sets {
            assert!(s.weakly_equal(s));
        }
        assert!(sets[0].weakly_equal(&sets[1]));
        assert!(sets[1].weakly_equal(&sets[2]));
        assert!(sets[0].weakly_equal(&sets[2]));
    }

    #[test]
    fn empty_and_null_only_sets_are_weakly_equal() {
        let empty = SymbolSet::new();
        let nulls = SymbolSet::from_iter([Symbol::Null]);
        assert!(empty.weakly_equal(&nulls));
    }

    #[test]
    fn set_ops() {
        let a = SymbolSet::from_iter([v("x"), v("y")]);
        let b = SymbolSet::from_iter([v("y"), v("z")]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.minus(&b), SymbolSet::singleton(v("x")));
        assert_eq!(a.intersect(&b), SymbolSet::singleton(v("y")));
        assert!(a.contains(v("x")));
        assert!(!a.contains(v("z")));
    }

    #[test]
    fn insert_keeps_sorted_dedup() {
        let mut s = SymbolSet::new();
        s.insert(v("b"));
        s.insert(v("a"));
        s.insert(v("b"));
        assert_eq!(s.len(), 2);
        let items: Vec<_> = s.iter().collect();
        assert!(items.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slice_helpers_match_set_semantics() {
        let a = [Symbol::Null, v("x")];
        let b = [v("x"), v("q")];
        assert!(weakly_contained(&a, &b));
        assert!(!weakly_equal(&a, &b));
        assert!(weakly_equal(&a, &[v("x"), Symbol::Null, v("x")]));
    }

    #[test]
    fn name_value_sorts_never_weakly_equal() {
        let a = SymbolSet::singleton(Symbol::name("east"));
        let b = SymbolSet::singleton(Symbol::value("east"));
        assert!(!a.weakly_equal(&b));
    }
}
