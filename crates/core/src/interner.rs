//! Process-global string interner backing [`Symbol`](crate::Symbol).
//!
//! The tabular model manipulates two sorts of symbols — *names* and
//! *values* — drawn from unbounded string universes (paper §2). Tables are
//! dense matrices of symbols, and every algebra operation compares symbols
//! (weak equality, subsumption, grouping keys), so symbol comparison and
//! hashing must be O(1). We therefore intern every string once into a
//! sharded, append-only pool and represent it by a `u32` index ([`Istr`]).
//!
//! The pool also hands out *fresh values* (strings guaranteed distinct from
//! every string interned so far), which back the tabular algebra's tagging
//! operations `tuple-new` / `set-new` and the occurrence identifiers of the
//! canonical representation (paper §3.5, Lemma 4.2).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of shards in the interner. Sharding keeps lock contention low
/// when tables are built from multiple threads (e.g. parallel benches).
const SHARDS: usize = 16;

/// An interned string: a dense `u32` handle into the global pool.
///
/// Two `Istr`s are equal iff the strings they denote are equal, so `Istr`
/// supports O(1) comparison and hashing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Istr(pub(crate) u32);

impl Istr {
    /// Resolve this handle back to its string.
    pub fn as_str(self) -> &'static str {
        pool().resolve(self)
    }

    /// The raw index. Stable for the lifetime of the process.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Istr({:?})", self.as_str())
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

struct Shard {
    map: HashMap<&'static str, u32>,
}

/// The global interning pool. Strings are leaked on first interning; the
/// pool is append-only, so resolved `&'static str`s stay valid forever.
pub struct Pool {
    shards: [RwLock<Shard>; SHARDS],
    /// All interned strings, indexed by `Istr::index() >> 4` within the
    /// shard selected by `Istr::index() & 0xf`... — we instead keep a flat
    /// vector guarded by its own lock, since resolution is the hot path.
    strings: RwLock<Vec<&'static str>>,
    fresh_counter: AtomicU64,
}

impl Pool {
    fn new() -> Self {
        Pool {
            shards: std::array::from_fn(|_| {
                RwLock::new(Shard {
                    map: HashMap::new(),
                })
            }),
            strings: RwLock::new(Vec::new()),
            fresh_counter: AtomicU64::new(0),
        }
    }

    fn shard_of(s: &str) -> usize {
        // FNV-1a over the first and last byte plus length: cheap and good
        // enough to spread shard load; correctness does not depend on it.
        let b0 = s.as_bytes().first().copied().unwrap_or(0) as usize;
        let b1 = s.as_bytes().last().copied().unwrap_or(0) as usize;
        (b0.wrapping_mul(31) ^ b1 ^ s.len()) % SHARDS
    }

    /// Intern `s`, returning its handle. Idempotent.
    pub fn intern(&self, s: &str) -> Istr {
        let shard = &self.shards[Self::shard_of(s)];
        if let Some(&id) = shard.read().map.get(s) {
            return Istr(id);
        }
        let mut guard = shard.write();
        if let Some(&id) = guard.map.get(s) {
            return Istr(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut strings = self.strings.write();
        let id = u32::try_from(strings.len()).expect("interner overflow: > 4G distinct symbols");
        strings.push(leaked);
        guard.map.insert(leaked, id);
        Istr(id)
    }

    /// Resolve a handle to its string.
    pub fn resolve(&self, i: Istr) -> &'static str {
        self.strings.read()[i.0 as usize]
    }

    /// Mint a string that has never been interned before and intern it.
    ///
    /// Fresh strings use a reserved unit-separator prefix (`\u{1F}`), which
    /// the table parsers reject in user input, so freshness is guaranteed
    /// against all user-visible symbols as well as against previous calls.
    pub fn fresh(&self, tag: &str) -> Istr {
        loop {
            let n = self.fresh_counter.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("\u{1F}{tag}{n}");
            // A collision can only happen if someone interned this exact
            // string manually; skip ahead in that (pathological) case.
            let shard = &self.shards[Self::shard_of(&candidate)];
            if shard.read().map.contains_key(candidate.as_str()) {
                continue;
            }
            return self.intern(&candidate);
        }
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.read().len()
    }

    /// True if nothing has been interned (only before first use).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-global pool.
pub fn pool() -> &'static Pool {
    POOL.get_or_init(Pool::new)
}

/// Intern a string in the global pool.
pub fn intern(s: &str) -> Istr {
    pool().intern(s)
}

/// Mint a fresh, never-before-seen string (see [`Pool::fresh`]).
pub fn fresh(tag: &str) -> Istr {
    pool().fresh(tag)
}

/// True if `s` uses the reserved fresh-value prefix and therefore denotes a
/// machine-generated symbol (a tag or an occurrence identifier).
pub fn is_reserved(s: &str) -> bool {
    s.starts_with('\u{1F}')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("nuts");
        let b = intern("nuts");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "nuts");
    }

    #[test]
    fn distinct_strings_get_distinct_handles() {
        assert_ne!(intern("east"), intern("west"));
    }

    #[test]
    fn empty_string_interns() {
        let e = intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn fresh_values_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(fresh("t")));
        }
    }

    #[test]
    fn fresh_values_are_reserved() {
        assert!(is_reserved(fresh("t").as_str()));
        assert!(!is_reserved("Sales"));
    }

    #[test]
    fn fresh_skips_manually_interned_collisions() {
        // Force the pathological path: intern a string shaped like the next
        // fresh candidate, then ask for fresh values until we pass it.
        let n = pool().fresh_counter.load(Ordering::Relaxed);
        intern(&format!("\u{1F}clash{}", n));
        let f = fresh("clash");
        assert_ne!(f.as_str(), format!("\u{1F}clash{}", n));
    }

    #[test]
    fn unicode_round_trips() {
        let s = "région—part№";
        assert_eq!(intern(s).as_str(), s);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| intern(&format!("c{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Istr>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
