//! ASCII rendering of tables and databases in the style of the paper's
//! figures: a box with rules after the attribute row and the attribute
//! column.

use crate::database::Database;
use crate::table::Table;
use std::fmt;

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h, w) = (self.height(), self.width());
        // Column text widths.
        let mut widths = vec![0usize; w + 1];
        for i in 0..=h {
            for (j, width) in widths.iter_mut().enumerate() {
                let cell = self.get(i, j).to_string();
                *width = (*width).max(cell.chars().count());
            }
        }
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for cw in &widths {
                for _ in 0..cw + 2 {
                    write!(f, "-")?;
                }
                write!(f, "+")?;
            }
            writeln!(f)
        };
        rule(f)?;
        for i in 0..=h {
            write!(f, "|")?;
            for (j, cw) in widths.iter().enumerate() {
                let cell = self.get(i, j).to_string();
                let pad = cw - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)?;
            if i == 0 {
                rule(f)?;
            }
        }
        rule(f)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, t) in self.tables().iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_rules() {
        let t = Table::relational("Sales", &["Part", "Sold"], &[&["nuts", "50"]]);
        let s = t.to_string();
        assert!(s.contains("Sales"));
        assert!(s.contains("| nuts"));
        assert!(s.contains("⊥"), "null row attribute rendered: {s}");
        // Three rules: top, after attribute row, bottom.
        assert_eq!(s.lines().filter(|l| l.starts_with('+')).count(), 3);
    }

    #[test]
    fn database_renders_all_tables() {
        let db = Database::from_tables([
            Table::relational("R", &["A"], &[&["1"]]),
            Table::relational("S", &["B"], &[&["2"]]),
        ]);
        let s = db.to_string();
        assert!(s.contains("R") && s.contains("S"));
    }

    #[test]
    fn wide_cells_align() {
        let t = Table::relational("T", &["LongAttribute"], &[&["x"]]);
        let s = t.to_string();
        let lens: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "ragged render:\n{s}");
    }
}
