//! Serde support: tables serialize as grids of strings in the cell syntax
//! of [`crate::symbol::parse_cell`], databases as sequences of tables. The
//! representation is human-readable and round-trips sorts exactly (cells
//! are tagged `n:`/`v:` whenever the positional default would misread
//! them).

use crate::database::Database;
use crate::symbol::{parse_cell, render_cell, Symbol};
use crate::table::Table;
use serde::de::{Deserializer, Error as DeError};
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};

impl Serialize for Table {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let grid: Vec<Vec<String>> = (0..=self.height())
            .map(|i| {
                (0..=self.width())
                    .map(|j| render_cell(self.get(i, j), i == 0 || j == 0))
                    .collect()
            })
            .collect();
        grid.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Table {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Table, D::Error> {
        let grid: Vec<Vec<String>> = Vec::deserialize(deserializer)?;
        if grid.is_empty() || grid[0].is_empty() {
            return Err(D::Error::custom("empty table grid"));
        }
        let width = grid[0].len() - 1;
        let mut t = Table::new(Symbol::Null, grid.len() - 1, width);
        for (i, row) in grid.iter().enumerate() {
            if row.len() != width + 1 {
                return Err(D::Error::custom(format!(
                    "ragged table grid at row {i}: {} != {}",
                    row.len(),
                    width + 1
                )));
            }
            for (j, cell) in row.iter().enumerate() {
                let default: fn(&str) -> Symbol = if i == 0 || j == 0 {
                    Symbol::name
                } else {
                    Symbol::value
                };
                t.set(i, j, parse_cell(cell, default));
            }
        }
        Ok(t)
    }
}

impl Serialize for Database {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.tables().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Database {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Database, D::Error> {
        let tables: Vec<Table> = Vec::deserialize(deserializer)?;
        Ok(Database::from_tables(tables))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn round_trip_table(t: &Table) -> Table {
        let json = serde_json_like(t);
        deserialize_table(&json)
    }

    // We avoid a serde_json dependency in this crate by exercising serde
    // through its own test channels: serde's `serde_test`-style tokens are
    // heavyweight, so we go through a tiny hand-rolled JSON round trip via
    // `serde::Serialize` into a string grid directly.
    fn serde_json_like(t: &Table) -> Vec<Vec<String>> {
        (0..=t.height())
            .map(|i| {
                (0..=t.width())
                    .map(|j| render_cell(t.get(i, j), i == 0 || j == 0))
                    .collect()
            })
            .collect()
    }

    fn deserialize_table(grid: &[Vec<String>]) -> Table {
        let mut t = Table::new(Symbol::Null, grid.len() - 1, grid[0].len() - 1);
        for (i, row) in grid.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let default: fn(&str) -> Symbol = if i == 0 || j == 0 {
                    Symbol::name
                } else {
                    Symbol::value
                };
                t.set(i, j, parse_cell(cell, default));
            }
        }
        t
    }

    #[test]
    fn grid_round_trip_preserves_sorts() {
        for db in [
            fixtures::sales_info1_full(),
            fixtures::sales_info2_full(),
            fixtures::sales_info3_full(),
            fixtures::sales_info4_full(),
        ] {
            for t in db.tables() {
                assert_eq!(&round_trip_table(t), t);
            }
        }
    }

    #[test]
    fn null_and_tagged_cells_round_trip() {
        let t = Table::from_grid(&[&["T", "v:Data", "n:Attr"], &["v:row", "_", "n:Name"]]).unwrap();
        assert_eq!(round_trip_table(&t), t);
    }

    /// Structural sharing is invisible to serialization: a handle that
    /// shares its cell buffer with another serializes to exactly the same
    /// grid as an unshared deep rebuild, and both round-trip to the
    /// original.
    #[test]
    fn shared_and_unshared_handles_serialize_identically() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};

        fn cell() -> impl Strategy<Value = Symbol> {
            prop_oneof![
                (0u8..4).prop_map(|i| Symbol::name(&format!("{}", (b'A' + i) as char))),
                (0u8..8).prop_map(|i| Symbol::value(&format!("v{i}"))),
                Just(Symbol::Null),
            ]
        }
        let table = (1usize..4, 1usize..4).prop_flat_map(move |(h, w)| {
            proptest::collection::vec(cell(), (h + 1) * (w + 1) - 1).prop_map(move |cells| {
                let mut t = Table::new(Symbol::name("T"), h, w);
                let mut it = cells.into_iter();
                for i in 0..=h {
                    for j in 0..=w {
                        if i == 0 && j == 0 {
                            continue;
                        }
                        t.set(i, j, it.next().expect("sized"));
                    }
                }
                t
            })
        });

        let mut runner = TestRunner::new(Config::default());
        runner
            .run(&table, |t| {
                let shared = t.clone();
                assert!(shared.shares_cells_with(&t));
                let unshared = round_trip_table(&t);
                assert!(!unshared.shares_cells_with(&t));
                assert_eq!(serde_json_like(&shared), serde_json_like(&unshared));
                assert_eq!(round_trip_table(&shared), t);
                Ok(())
            })
            .unwrap();
    }
}
