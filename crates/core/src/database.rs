//! Tabular databases: sets of tables (paper §2).
//!
//! Several tables may share one name — the number of `Sales` tables in
//! `SalesInfo4` (Figure 1) depends on the instance — so a database is a
//! *set of tables*, not a name-indexed map. Exact duplicates are collapsed
//! (set semantics); tables equal only up to row/column permutation are kept
//! distinct until [`Database::canonicalize`] is applied.

use crate::symbol::Symbol;
use crate::table::Table;
use crate::weak::SymbolSet;

/// A set of [`Table`]s.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Build from tables, collapsing exact duplicates.
    pub fn from_tables<I: IntoIterator<Item = Table>>(tables: I) -> Database {
        let mut db = Database::new();
        for t in tables {
            db.insert(t);
        }
        db
    }

    /// Insert a table (no-op if an identical table is already present).
    /// Returns `true` if the table was new.
    pub fn insert(&mut self, table: Table) -> bool {
        if self.tables.contains(&table) {
            false
        } else {
            self.tables.push(table);
            true
        }
    }

    /// All tables, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All tables with the given name.
    pub fn tables_named(&self, name: Symbol) -> Vec<&Table> {
        self.tables.iter().filter(|t| t.name() == name).collect()
    }

    /// The unique table with the given name; `None` if there are zero or
    /// several.
    pub fn table(&self, name: Symbol) -> Option<&Table> {
        let mut found = self.tables.iter().filter(|t| t.name() == name);
        let first = found.next()?;
        if found.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Shorthand: the unique table named `name`, by string.
    pub fn table_str(&self, name: &str) -> Option<&Table> {
        self.table(Symbol::name(name))
    }

    /// Remove all tables with the given name; returns how many were
    /// removed.
    pub fn remove_named(&mut self, name: Symbol) -> usize {
        let before = self.tables.len();
        self.tables.retain(|t| t.name() != name);
        before - self.tables.len()
    }

    /// Keep only tables satisfying the predicate.
    pub fn retain(&mut self, pred: impl FnMut(&Table) -> bool) {
        self.tables.retain(pred);
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The set of table names occurring in the database. Any finite
    /// superset of this is a *scheme* for the database (paper §4.1).
    pub fn names(&self) -> SymbolSet {
        SymbolSet::from_iter(self.tables.iter().map(|t| t.name()))
    }

    /// `|D|`: the set of all symbols occurring in the database (⊥
    /// excluded, as the paper's morphisms always fix ⊥).
    pub fn symbols(&self) -> SymbolSet {
        SymbolSet::from_iter(
            self.tables
                .iter()
                .flat_map(|t| t.symbols())
                .filter(|s| !s.is_null()),
        )
    }

    /// Insert all tables of `other`.
    pub fn absorb(&mut self, other: Database) {
        for t in other.tables {
            self.insert(t);
        }
    }

    /// Canonicalize every table, sort the set, and collapse duplicates:
    /// a normal form for the paper's equality "up to permutations of the
    /// non-attribute rows and columns" (§4.1).
    pub fn canonicalize(&self) -> Database {
        let mut tables: Vec<Table> = self.tables.iter().map(Table::canonicalize).collect();
        tables.sort_by(|a, b| {
            a.name()
                .canonical_cmp(b.name())
                .then_with(|| a.height().cmp(&b.height()))
                .then_with(|| a.width().cmp(&b.width()))
                .then_with(|| cmp_tables(a, b))
        });
        tables.dedup();
        Database { tables }
    }

    /// Equality up to per-table row/column permutations and table order.
    pub fn equiv(&self, other: &Database) -> bool {
        self.canonicalize() == other.canonicalize()
    }

    /// Apply `f` to every symbol of every table (used to realize the
    /// morphisms of §4.1 in tests).
    pub fn map_symbols(&self, mut f: impl FnMut(Symbol) -> Symbol) -> Database {
        Database {
            tables: self.tables.iter().map(|t| t.map_symbols(&mut f)).collect(),
        }
    }

    /// Total number of cells across all tables (a size measure for
    /// benchmarks).
    pub fn cell_count(&self) -> usize {
        self.tables
            .iter()
            .map(|t| (t.height() + 1) * (t.width() + 1))
            .sum()
    }
}

fn cmp_tables(a: &Table, b: &Table) -> std::cmp::Ordering {
    for i in 0..=a.height().min(b.height()) {
        for (x, y) in a.storage_row(i).iter().zip(b.storage_row(i)) {
            let c = x.canonical_cmp(*y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
    }
    std::cmp::Ordering::Equal
}

impl FromIterator<Table> for Database {
    fn from_iter<I: IntoIterator<Item = Table>>(iter: I) -> Database {
        Database::from_tables(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, val: &str) -> Table {
        Table::relational(name, &["A"], &[&[val]])
    }

    #[test]
    fn set_semantics_collapse_exact_duplicates() {
        let mut db = Database::new();
        assert!(db.insert(t("R", "1")));
        assert!(!db.insert(t("R", "1")));
        assert!(db.insert(t("R", "2")));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn multiple_tables_may_share_a_name() {
        let db = Database::from_tables([t("Sales", "1"), t("Sales", "2"), t("Other", "3")]);
        assert_eq!(db.tables_named(Symbol::name("Sales")).len(), 2);
        assert!(db.table(Symbol::name("Sales")).is_none());
        assert!(db.table_str("Other").is_some());
    }

    #[test]
    fn names_and_symbols() {
        let db = Database::from_tables([t("R", "1"), t("S", "2")]);
        let names = db.names();
        assert!(names.contains(Symbol::name("R")));
        assert!(names.contains(Symbol::name("S")));
        assert_eq!(names.len(), 2);
        let syms = db.symbols();
        assert!(syms.contains(Symbol::value("1")));
        assert!(syms.contains(Symbol::name("A")));
        assert!(!syms.contains(Symbol::Null));
    }

    #[test]
    fn equiv_up_to_permutation_and_order() {
        let a = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
        let a_perm = a.select_rows(&[2, 1]);
        let db1 = Database::from_tables([a, t("S", "x")]);
        let db2 = Database::from_tables([t("S", "x"), a_perm]);
        assert!(db1.equiv(&db2));
        assert!(!db1.equiv(&Database::from_tables([t("S", "x")])));
    }

    #[test]
    fn canonicalize_collapses_permuted_duplicates() {
        let a = Table::relational("R", &["A"], &[&["1"], &["2"]]);
        let b = a.select_rows(&[2, 1]);
        let db = Database::from_tables([a, b]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.canonicalize().len(), 1);
    }

    #[test]
    fn remove_and_retain() {
        let mut db = Database::from_tables([t("R", "1"), t("R", "2"), t("S", "3")]);
        assert_eq!(db.remove_named(Symbol::name("R")), 2);
        assert_eq!(db.len(), 1);
        db.retain(|tab| tab.name() != Symbol::name("S"));
        assert!(db.is_empty());
    }

    #[test]
    fn absorb_unions_table_sets() {
        let mut a = Database::from_tables([t("R", "1")]);
        a.absorb(Database::from_tables([t("R", "1"), t("S", "2")]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn cell_count_counts_attribute_cells() {
        let db = Database::from_tables([t("R", "1")]);
        // 1 data row + attr row, 1 data col + attr col: 2×2 = 4.
        assert_eq!(db.cell_count(), 4);
    }
}
