//! Tabular databases: sets of tables (paper §2).
//!
//! Several tables may share one name — the number of `Sales` tables in
//! `SalesInfo4` (Figure 1) depends on the instance — so a database is a
//! *set of tables*, not a name-indexed map. Exact duplicates are collapsed
//! (set semantics); tables equal only up to row/column permutation are kept
//! distinct until [`Database::canonicalize`] is applied.
//!
//! ## Storage
//!
//! A `Database` is a handle over an [`Arc`]-shared [`TableStore`]: the
//! insertion-ordered table vector plus two secondary indexes — name →
//! indices (serving [`Database::tables_named`] in O(matches)) and
//! fingerprint → indices (serving [`Database::insert`]'s duplicate check
//! in O(1) expected; the fingerprint is a filter, exact `==` confirms, so
//! set semantics never depend on hash collisions). Cloning a database —
//! [`Database::snapshot`] — copies one pointer. Mutating a shared
//! database copies the store (table *handles* and indexes, never cell
//! buffers) via [`Arc::make_mut`]; both events are counted in
//! [`crate::stats`].

use crate::symbol::Symbol;
use crate::table::Table;
use crate::weak::SymbolSet;
use std::collections::HashMap;
use std::sync::Arc;

/// The shared storage behind [`Database`] handles: insertion-ordered
/// tables plus name and fingerprint indexes (see the module docs).
#[derive(Debug, Default)]
struct TableStore {
    tables: Vec<Table>,
    /// name → indices into `tables`, ascending (insertion order).
    by_name: HashMap<Symbol, Vec<u32>>,
    /// fingerprint → indices into `tables`; candidates for dedup, always
    /// confirmed by exact equality.
    by_fp: HashMap<u64, Vec<u32>>,
}

impl Clone for TableStore {
    fn clone(&self) -> TableStore {
        crate::stats::record_store_copy();
        TableStore {
            tables: self.tables.clone(),
            by_name: self.by_name.clone(),
            by_fp: self.by_fp.clone(),
        }
    }
}

impl TableStore {
    fn from_tables(tables: Vec<Table>) -> TableStore {
        let mut store = TableStore {
            tables,
            by_name: HashMap::new(),
            by_fp: HashMap::new(),
        };
        store.reindex();
        store
    }

    /// Rebuild both indexes from the table vector (used after removals,
    /// where shifting every index is no cheaper than rebuilding).
    fn reindex(&mut self) {
        self.by_name.clear();
        self.by_fp.clear();
        for (ix, t) in self.tables.iter().enumerate() {
            let ix = ix as u32;
            self.by_name.entry(t.name()).or_default().push(ix);
            self.by_fp.entry(t.fingerprint()).or_default().push(ix);
        }
    }
}

/// A set of [`Table`]s.
///
/// Cloning is an O(1) snapshot: handles share the store until one of them
/// mutates (see the module docs).
#[derive(Debug, Default)]
pub struct Database {
    store: Arc<TableStore>,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        crate::stats::record_snapshot();
        Database {
            store: Arc::clone(&self.store),
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.store, &other.store) || self.store.tables == other.store.tables
    }
}

impl Eq for Database {}

impl Database {
    /// The empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Build from tables, collapsing exact duplicates.
    pub fn from_tables<I: IntoIterator<Item = Table>>(tables: I) -> Database {
        let mut db = Database::new();
        for t in tables {
            db.insert(t);
        }
        db
    }

    /// Wrap an already-deduplicated table vector without re-checking set
    /// membership (internal constructor for bulk rebuilds).
    fn from_vec(tables: Vec<Table>) -> Database {
        Database {
            store: Arc::new(TableStore::from_tables(tables)),
        }
    }

    /// An O(1) snapshot: a new handle sharing this database's storage.
    /// Mutations on either handle copy table *handles* (copy-on-write),
    /// never cell buffers, so snapshots are always isolated from later
    /// writes. Identical to `clone`, named for intent at call sites.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// The store, uniquely owned: copies it first iff currently shared.
    fn store_mut(&mut self) -> &mut TableStore {
        Arc::make_mut(&mut self.store)
    }

    /// Insert a table (no-op if an identical table is already present).
    /// Returns `true` if the table was new. O(1) expected: the duplicate
    /// check probes the fingerprint index and compares only
    /// fingerprint-equal candidates exactly.
    pub fn insert(&mut self, table: Table) -> bool {
        let fp = table.fingerprint();
        if let Some(candidates) = self.store.by_fp.get(&fp) {
            if candidates
                .iter()
                .any(|&ix| self.store.tables[ix as usize] == table)
            {
                return false;
            }
        }
        let store = self.store_mut();
        let ix = u32::try_from(store.tables.len()).expect("database overflow: > 4G tables");
        store.by_name.entry(table.name()).or_default().push(ix);
        store.by_fp.entry(fp).or_default().push(ix);
        store.tables.push(table);
        true
    }

    /// All tables, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.store.tables
    }

    /// All tables with the given name, in insertion order.
    pub fn tables_named(&self, name: Symbol) -> Vec<&Table> {
        self.tables_named_iter(name).collect()
    }

    /// Iterator variant of [`Database::tables_named`]: serves from the
    /// name index without allocating.
    pub fn tables_named_iter(&self, name: Symbol) -> impl Iterator<Item = &Table> + '_ {
        self.store
            .by_name
            .get(&name)
            .into_iter()
            .flatten()
            .map(|&ix| &self.store.tables[ix as usize])
    }

    /// The unique table with the given name; `None` if there are zero or
    /// several.
    pub fn table(&self, name: Symbol) -> Option<&Table> {
        match self.store.by_name.get(&name)?.as_slice() {
            [ix] => Some(&self.store.tables[*ix as usize]),
            _ => None,
        }
    }

    /// Shorthand: the unique table named `name`, by string.
    pub fn table_str(&self, name: &str) -> Option<&Table> {
        self.table(Symbol::name(name))
    }

    /// Mutate the unique table named `name` in place, without copying the
    /// rest of the store. The closure must preserve the table's name
    /// (debug-asserted); since a table's name is part of its content and
    /// `name` has exactly one table, the mutation cannot create a
    /// duplicate, so set semantics are preserved. Returns `false` (and
    /// does not run the closure) if there are zero or several tables with
    /// the name.
    ///
    /// This is the delta evaluator's append path: pushing rows into a
    /// uniquely owned table amortizes to O(rows appended) instead of the
    /// O(table) remove-and-reinsert round trip.
    pub fn update_named(&mut self, name: Symbol, f: impl FnOnce(&mut Table)) -> bool {
        let ix = match self.store.by_name.get(&name).map(Vec::as_slice) {
            Some(&[ix]) => ix as usize,
            _ => return false,
        };
        let old_fp = self.store.tables[ix].fingerprint();
        let store = self.store_mut();
        let t = &mut store.tables[ix];
        f(t);
        debug_assert_eq!(t.name(), name, "update_named must preserve the table name");
        let new_fp = t.fingerprint();
        if new_fp != old_fp {
            if let Some(v) = store.by_fp.get_mut(&old_fp) {
                v.retain(|&i| i as usize != ix);
                if v.is_empty() {
                    store.by_fp.remove(&old_fp);
                }
            }
            store.by_fp.entry(new_fp).or_default().push(ix as u32);
        }
        true
    }

    /// Remove all tables with the given name; returns how many were
    /// removed.
    pub fn remove_named(&mut self, name: Symbol) -> usize {
        let matches = self.store.by_name.get(&name).map_or(0, Vec::len);
        if matches == 0 {
            return 0;
        }
        let store = self.store_mut();
        store.tables.retain(|t| t.name() != name);
        store.reindex();
        matches
    }

    /// Keep only tables satisfying the predicate.
    pub fn retain(&mut self, pred: impl FnMut(&Table) -> bool) {
        let store = self.store_mut();
        let before = store.tables.len();
        store.tables.retain(pred);
        if store.tables.len() != before {
            store.reindex();
        }
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.store.tables.len()
    }

    /// True if no tables.
    pub fn is_empty(&self) -> bool {
        self.store.tables.is_empty()
    }

    /// The set of table names occurring in the database. Any finite
    /// superset of this is a *scheme* for the database (paper §4.1).
    pub fn names(&self) -> SymbolSet {
        SymbolSet::from_iter(self.store.by_name.keys().copied())
    }

    /// `|D|`: the set of all symbols occurring in the database (⊥
    /// excluded, as the paper's morphisms always fix ⊥).
    pub fn symbols(&self) -> SymbolSet {
        SymbolSet::from_iter(
            self.store
                .tables
                .iter()
                .flat_map(|t| t.symbols())
                .filter(|s| !s.is_null()),
        )
    }

    /// Insert all tables of `other`.
    pub fn absorb(&mut self, other: Database) {
        if self.is_empty() {
            *self = other;
            return;
        }
        for t in other.store.tables.iter() {
            self.insert(t.clone());
        }
    }

    /// Canonicalize every table, sort the set, and collapse duplicates:
    /// a normal form for the paper's equality "up to permutations of the
    /// non-attribute rows and columns" (§4.1).
    pub fn canonicalize(&self) -> Database {
        let mut tables: Vec<Table> = self.store.tables.iter().map(Table::canonicalize).collect();
        tables.sort_by(|a, b| {
            a.name()
                .canonical_cmp(b.name())
                .then_with(|| a.height().cmp(&b.height()))
                .then_with(|| a.width().cmp(&b.width()))
                .then_with(|| cmp_tables(a, b))
        });
        tables.dedup();
        Database::from_vec(tables)
    }

    /// Equality up to per-table row/column permutations and table order.
    pub fn equiv(&self, other: &Database) -> bool {
        self.canonicalize() == other.canonicalize()
    }

    /// Apply `f` to every symbol of every table (used to realize the
    /// morphisms of §4.1 in tests). Preserves table count and order (no
    /// dedup, matching the historical behavior even when `f` identifies
    /// two tables).
    pub fn map_symbols(&self, mut f: impl FnMut(Symbol) -> Symbol) -> Database {
        Database::from_vec(
            self.store
                .tables
                .iter()
                .map(|t| t.map_symbols(&mut f))
                .collect(),
        )
    }

    /// Total number of cells across all tables (a size measure for
    /// benchmarks).
    pub fn cell_count(&self) -> usize {
        self.store
            .tables
            .iter()
            .map(|t| (t.height() + 1) * (t.width() + 1))
            .sum()
    }
}

fn cmp_tables(a: &Table, b: &Table) -> std::cmp::Ordering {
    for i in 0..=a.height().min(b.height()) {
        for (x, y) in a.storage_row(i).iter().zip(b.storage_row(i)) {
            let c = x.canonical_cmp(*y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
    }
    std::cmp::Ordering::Equal
}

impl FromIterator<Table> for Database {
    fn from_iter<I: IntoIterator<Item = Table>>(iter: I) -> Database {
        Database::from_tables(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, val: &str) -> Table {
        Table::relational(name, &["A"], &[&[val]])
    }

    #[test]
    fn set_semantics_collapse_exact_duplicates() {
        let mut db = Database::new();
        assert!(db.insert(t("R", "1")));
        assert!(!db.insert(t("R", "1")));
        assert!(db.insert(t("R", "2")));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn multiple_tables_may_share_a_name() {
        let db = Database::from_tables([t("Sales", "1"), t("Sales", "2"), t("Other", "3")]);
        assert_eq!(db.tables_named(Symbol::name("Sales")).len(), 2);
        assert!(db.table(Symbol::name("Sales")).is_none());
        assert!(db.table_str("Other").is_some());
    }

    #[test]
    fn tables_named_preserves_insertion_order() {
        let db = Database::from_tables([t("R", "2"), t("S", "x"), t("R", "1"), t("R", "3")]);
        let vals: Vec<Symbol> = db
            .tables_named_iter(Symbol::name("R"))
            .map(|tab| tab.get(1, 1))
            .collect();
        assert_eq!(
            vals,
            vec![Symbol::value("2"), Symbol::value("1"), Symbol::value("3")]
        );
        assert_eq!(db.tables_named(Symbol::name("R")).len(), 3);
        assert_eq!(db.tables_named_iter(Symbol::name("Z")).count(), 0);
    }

    #[test]
    fn names_and_symbols() {
        let db = Database::from_tables([t("R", "1"), t("S", "2")]);
        let names = db.names();
        assert!(names.contains(Symbol::name("R")));
        assert!(names.contains(Symbol::name("S")));
        assert_eq!(names.len(), 2);
        let syms = db.symbols();
        assert!(syms.contains(Symbol::value("1")));
        assert!(syms.contains(Symbol::name("A")));
        assert!(!syms.contains(Symbol::Null));
    }

    #[test]
    fn equiv_up_to_permutation_and_order() {
        let a = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
        let a_perm = a.select_rows(&[2, 1]);
        let db1 = Database::from_tables([a, t("S", "x")]);
        let db2 = Database::from_tables([t("S", "x"), a_perm]);
        assert!(db1.equiv(&db2));
        assert!(!db1.equiv(&Database::from_tables([t("S", "x")])));
    }

    #[test]
    fn canonicalize_collapses_permuted_duplicates() {
        let a = Table::relational("R", &["A"], &[&["1"], &["2"]]);
        let b = a.select_rows(&[2, 1]);
        let db = Database::from_tables([a, b]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.canonicalize().len(), 1);
    }

    #[test]
    fn remove_and_retain() {
        let mut db = Database::from_tables([t("R", "1"), t("R", "2"), t("S", "3")]);
        assert_eq!(db.remove_named(Symbol::name("R")), 2);
        assert_eq!(db.len(), 1);
        db.retain(|tab| tab.name() != Symbol::name("S"));
        assert!(db.is_empty());
        assert_eq!(db.remove_named(Symbol::name("R")), 0);
    }

    #[test]
    fn indexes_survive_removal() {
        let mut db = Database::from_tables([t("R", "1"), t("S", "2"), t("R", "3"), t("T", "4")]);
        db.remove_named(Symbol::name("S"));
        assert_eq!(db.tables_named(Symbol::name("R")).len(), 2);
        assert_eq!(
            db.table(Symbol::name("T")).unwrap().get(1, 1),
            Symbol::value("4")
        );
        // Dedup still works against the reindexed store.
        assert!(!db.insert(t("R", "3")));
        assert!(db.insert(t("S", "2")));
    }

    #[test]
    fn absorb_unions_table_sets() {
        let mut a = Database::from_tables([t("R", "1")]);
        a.absorb(Database::from_tables([t("R", "1"), t("S", "2")]));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn cell_count_counts_attribute_cells() {
        let db = Database::from_tables([t("R", "1")]);
        // 1 data row + attr row, 1 data col + attr col: 2×2 = 4.
        assert_eq!(db.cell_count(), 4);
    }

    #[test]
    fn snapshots_share_the_store_until_mutation() {
        let db = Database::from_tables([t("R", "1"), t("S", "2")]);
        let mut snap = db.snapshot();
        assert_eq!(snap, db);
        assert!(snap.tables()[0].shares_cells_with(&db.tables()[0]));
        snap.insert(t("T", "3"));
        assert_eq!(db.len(), 2);
        assert_eq!(snap.len(), 3);
        // The copied store duplicated handles, not buffers.
        assert!(snap.tables()[0].shares_cells_with(&db.tables()[0]));
    }

    #[test]
    fn snapshot_isolated_from_update_named() {
        let db = Database::from_tables([t("R", "1"), t("S", "2")]);
        let mut snap = db.snapshot();
        assert!(snap.update_named(Symbol::name("R"), |tab| {
            tab.push_row(vec![Symbol::Null, Symbol::value("9")]);
        }));
        assert_eq!(db.table_str("R").unwrap().height(), 1);
        assert_eq!(snap.table_str("R").unwrap().height(), 2);
        // Untouched tables still share buffers with the original.
        assert!(snap
            .table_str("S")
            .unwrap()
            .shares_cells_with(db.table_str("S").unwrap()));
    }

    #[test]
    fn update_named_requires_a_unique_table() {
        let mut db = Database::from_tables([t("R", "1"), t("R", "2"), t("S", "3")]);
        assert!(!db.update_named(Symbol::name("R"), |_| unreachable!()));
        assert!(!db.update_named(Symbol::name("Z"), |_| unreachable!()));
        assert!(db.update_named(Symbol::name("S"), |tab| {
            tab.set(1, 1, Symbol::value("4"));
        }));
        // The fingerprint index followed the mutation: the old content
        // re-inserts as new, the new content dedups.
        assert!(db.insert(t("S", "3")));
        assert!(!db.insert(t("S", "4")));
    }

    #[test]
    fn insert_dedup_scales_to_10k_tables() {
        let start = std::time::Instant::now();
        let mut db = Database::new();
        for i in 0..10_000 {
            assert!(db.insert(t("R", &i.to_string())), "table {i} is distinct");
        }
        for i in 0..10_000 {
            assert!(
                !db.insert(t("R", &i.to_string())),
                "table {i} is a duplicate"
            );
        }
        assert_eq!(db.len(), 10_000);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "20k inserts took {elapsed:?}; dedup must not be linear in the database"
        );
    }
}
