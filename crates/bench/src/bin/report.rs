//! The experiment report: regenerates every figure and construction of
//! the paper, verifies it, and prints one row per experiment — the data
//! behind EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p tabular-bench --bin report --release
//! ```

use std::time::Instant;
use tabular_algebra::{
    parser::parse, run, run_governed, run_outputs, run_traced, run_with_stats, Budget, EvalLimits,
    TraceLevel, WhileStrategy,
};
use tabular_canonical::{check_fds, decode, encode, encode_program, EncodeScheme};
use tabular_core::{fixtures, Symbol, SymbolSet};
use tabular_olap::baseline::pivot_direct;
use tabular_olap::{add_totals, pivot, Agg, Cube};
use tabular_relational::compile::run_compiled;
use tabular_relational::program::transitive_closure_program;
use tabular_relational::relation::RelDatabase;
use tabular_schemalog::{
    eval::{eval, SlLimits, Strategy},
    parser::parse as sl_parse,
    translate::run_translated,
};

struct Row {
    id: &'static str,
    what: String,
    outcome: String,
    micros: u128,
}

/// The join-fusion head-to-head, summarized for `BENCH_6.json`.
struct FusionSummary {
    unfused_us: u128,
    fused_us: u128,
    kernel_runs: usize,
    product_cells: usize,
    join_cells: usize,
}

/// The restructuring-fusion head-to-head at 128×32, summarized for
/// `BENCH_6.json`.
struct RestructureSummary {
    staged_us: u128,
    fused_us: u128,
    kernel_runs: usize,
    /// Cells of the grouped intermediate the staged pipeline materializes.
    cells_staged: usize,
    /// Peak table of the fused run (the cross-tab itself).
    cells_fused_peak: usize,
    /// End-to-end fused `pivot` vs the hand-written baseline.
    overhead_x: f64,
}

/// The partition-parallel join measurement, pinned in `BENCH_7.json`.
///
/// The serial and partitioned kernels produce byte-identical output, so
/// the interesting numbers are wall times. On a 1-core host the
/// partitioned *wall* is pure overhead; the honest parallel figure is a
/// critical-path projection from per-shard busy times measured inside
/// the jobs (a 1-thread pool serializes the shards, so
/// `wall − Σ busy` is exactly the serial prelude: header, index build,
/// exact reserve, governor charges). All samples are best-of-3: on a
/// single-vCPU host a stolen time slice inflates any one sample by
/// tens of milliseconds, and the minimum is the closest to true cost.
struct PartitionSummary {
    probe_rows: usize,
    build_rows: usize,
    out_rows: usize,
    shards: usize,
    host_cores: usize,
    serial_us: u128,
    partitioned_wall_us: u128,
    shard_busy_us: Vec<u128>,
    prelude_us: u128,
    /// `prelude + max(shard busy)`: the 8-core wall-clock projection.
    critical_path_us: u128,
    /// `serial_us / critical_path_us`.
    speedup_8core: f64,
}

/// The cost-based planner head-to-head on a pessimal 3-way product
/// chain, pinned in `BENCH_8.json`.
///
/// The source program stages PRODUCT(L, M) — the two big tables — and
/// only then brings in the 1-row N and filters on A = B. The planner
/// reorders the chain cheapest-first (L × N comes before M) and fuses
/// the terminal selection into a hash join, so the quadratic
/// intermediate is never materialized. `planned_us` is the full
/// `run_planned` entry point — statistics, rewrites, lowering, and
/// evaluation — so the speedup is end-to-end honest.
struct PlanSummary {
    left_rows: usize,
    right_rows: usize,
    tiny_rows: usize,
    out_rows: usize,
    unplanned_us: u128,
    planned_us: u128,
    /// `unplanned_us / planned_us`.
    speedup: f64,
    rules_applied: usize,
    statements_rewritten: usize,
    /// Σ output cells of PRODUCT spans in the unplanned trace.
    unplanned_product_cells: usize,
    /// Σ output cells of PRODUCT spans in the planned trace.
    planned_product_cells: usize,
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros())
}

fn main() {
    let limits = EvalLimits::default();
    let mut rows: Vec<Row> = Vec::new();

    // ------------------------------------------------------------------
    // Figure 1
    // ------------------------------------------------------------------
    {
        let p = parse(
            "Sales <- GROUP[by {Region} on {Sold}](Sales)
             Sales <- CLEANUP[by {Part} on {_}](Sales)
             Sales <- PURGE[on {Sold} by {Region}](Sales)",
        )
        .unwrap();
        let (out, us) = timed(|| run(&p, &fixtures::sales_info1(), &limits).unwrap());
        rows.push(Row {
            id: "Fig.1",
            what: "SalesInfo1 → SalesInfo2 (group, clean-up, purge)".into(),
            outcome: verdict(out.equiv(&fixtures::sales_info2())),
            micros: us,
        });
    }
    {
        let p = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
        let (out, us) = timed(|| run(&p, &fixtures::sales_info1(), &limits).unwrap());
        rows.push(Row {
            id: "Fig.1",
            what: "SalesInfo1 → SalesInfo4 (split)".into(),
            outcome: verdict(out.equiv(&fixtures::sales_info4())),
            micros: us,
        });
    }
    {
        let (cube, us) = timed(|| {
            Cube::from_table(
                &fixtures::sales_relation(),
                &[Symbol::name("Region"), Symbol::name("Part")],
                Symbol::name("Sold"),
                Agg::Sum,
            )
            .unwrap()
        });
        let info3 = fixtures::sales_info3();
        rows.push(Row {
            id: "Fig.1",
            what: "SalesInfo1 → SalesInfo3 (2-d cube view)".into(),
            outcome: verdict(
                cube.to_table_2d()
                    .unwrap()
                    .equiv(info3.table_str("Sales").unwrap()),
            ),
            micros: us,
        });
    }
    {
        let bold = fixtures::sales_info2();
        let (out, us) = timed(|| {
            add_totals(
                bold.table_str("Sales").unwrap(),
                &[Symbol::name("Region")],
                &[Symbol::name("Part")],
                Agg::Sum,
            )
            .unwrap()
        });
        let full = fixtures::sales_info2_full();
        rows.push(Row {
            id: "Fig.1",
            what: "summary absorption (420 grand total)".into(),
            outcome: verdict(out.equiv(full.table_str("Sales").unwrap())),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // Figures 4 and 5 — exact golden tables
    // ------------------------------------------------------------------
    {
        let p = parse("Sales <- GROUP[by {Region} on {Sold}](Sales)").unwrap();
        let (out, us) = timed(|| run(&p, &fixtures::sales_info1(), &limits).unwrap());
        rows.push(Row {
            id: "Fig.4",
            what: "GROUP by Region on Sold — exact table".into(),
            outcome: verdict(out.table_str("Sales").unwrap() == &fixtures::figure4_grouped()),
            micros: us,
        });
    }
    {
        let p = parse("Sales <- MERGE[on {Sold} by {Region}](Sales)").unwrap();
        let (out, us) = timed(|| run(&p, &fixtures::sales_info2(), &limits).unwrap());
        rows.push(Row {
            id: "Fig.5",
            what: "MERGE on Sold by Region — exact table".into(),
            outcome: verdict(out.table_str("Sales").unwrap() == &fixtures::figure5_merged()),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // Theorem 4.1: FO + while + new simulated in TA
    // ------------------------------------------------------------------
    {
        let db = RelDatabase::from_relations([tabular_bench::chain_edges(12)]);
        let program = transitive_closure_program();
        let direct = program.run(&db, 100_000).unwrap();
        let ((), us) = timed(|| {
            let via_ta = run_compiled(&program, &db, &["TC"], &limits).unwrap();
            assert!(direct
                .get_str("TC")
                .unwrap()
                .equiv(via_ta.get_str("TC").unwrap()));
        });
        rows.push(Row {
            id: "Thm4.1",
            what: format!(
                "transitive closure, 12-chain: FO direct = compiled TA ({} tuples)",
                direct.get_str("TC").unwrap().len()
            ),
            outcome: verdict(true),
            micros: us,
        });
    }

    // The delta `while` strategy on the same closure, head to head with
    // naive re-execution (the TA-side ablation behind
    // `ablation/delta_while_tc`).
    {
        let p = tabular_bench::ta_tc_program();
        let db = tabular_bench::ta_chain_db(24);
        let naive_limits = EvalLimits {
            while_strategy: WhileStrategy::Naive,
            ..EvalLimits::default()
        };
        let (out_naive, us_naive) = timed(|| run(&p, &db, &naive_limits).unwrap());
        let ((out_delta, stats), us_delta) = timed(|| run_with_stats(&p, &db, &limits).unwrap());
        let ok = out_naive.table_str("TC").unwrap() == out_delta.table_str("TC").unwrap()
            && stats.while_fallback_naive == 0
            && stats.while_delta_skipped > 0;
        rows.push(Row {
            id: "Thm4.1",
            what: format!(
                "TC 24-chain: delta while {us_delta}µs vs naive {us_naive}µs ({} stmts skipped)",
                stats.while_delta_skipped
            ),
            outcome: verdict(ok),
            micros: us_delta,
        });
    }

    // The optimizer's join fusion on the same closure: the loop's
    // SELECT-over-PRODUCT pipeline vs the FUSEDJOIN hash kernel, both
    // under the default (delta) strategy. Span traces expose how many
    // cells the staged products materialize and the fused join avoids.
    let fusion: FusionSummary;
    {
        let unfused = tabular_bench::ta_tc_program();
        let fused = tabular_bench::ta_tc_fused_program();
        let db = tabular_bench::ta_chain_db(24);
        let median_of = |f: &dyn Fn() -> u128| {
            let mut samples: Vec<u128> = (0..9).map(|_| f()).collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        let us_unfused = median_of(&|| timed(|| run(&unfused, &db, &limits).unwrap()).1);
        let us_fused = median_of(&|| timed(|| run(&fused, &db, &limits).unwrap()).1);
        let spans_limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out_u, _, trace_u) = run_traced(&unfused, &db, &spans_limits).unwrap();
        let (out_f, stats_f, trace_f) = run_traced(&fused, &db, &spans_limits).unwrap();
        let product_cells: usize = trace_u
            .spans()
            .filter(|s| s.op == "PRODUCT")
            .map(|s| s.output_cells)
            .sum();
        let join_cells: usize = trace_f
            .spans()
            .filter(|s| s.op == "FUSEDJOIN")
            .map(|s| s.output_cells)
            .sum();
        let same = out_u.table_str("TC").unwrap() == out_f.table_str("TC").unwrap();
        let speedup = us_unfused as f64 / us_fused.max(1) as f64;
        rows.push(Row {
            id: "join_fused",
            what: format!(
                "TC 24-chain fused hash join: {us_fused}µs, {} kernel runs, {join_cells} cells out",
                stats_f.join_fused
            ),
            outcome: verdict(same && stats_f.join_fused > 0 && stats_f.join_unfused == 0),
            micros: us_fused,
        });
        rows.push(Row {
            id: "join_unfused",
            what: format!(
                "TC 24-chain unfused SELECT∘PRODUCT: {us_unfused}µs, \
                 {product_cells} product cells staged ({speedup:.1}× vs fused)"
            ),
            outcome: verdict(same && product_cells > join_cells),
            micros: us_unfused,
        });
        fusion = FusionSummary {
            unfused_us: us_unfused,
            fused_us: us_fused,
            kernel_runs: stats_f.join_fused,
            product_cells,
            join_cells,
        };
    }

    // The tracing layer on the same closure: spans on, the per-op trace
    // totals must reconcile exactly with EvalStats (no double counting),
    // and the Off level must cost roughly nothing relative to Counters.
    {
        let p = tabular_bench::ta_tc_program();
        let db = tabular_bench::ta_chain_db(24);
        let spans_limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let ((_, stats, trace), us_spans) = timed(|| run_traced(&p, &db, &spans_limits).unwrap());
        let reconciled = trace.dropped() == 0 && trace.per_op_micros() == stats.op_micros;
        let op_sum: u128 = stats.op_micros.values().sum();
        let decisions = trace.decision_counts();
        rows.push(Row {
            id: "Obs",
            what: format!(
                "TC 24-chain trace: {} spans, decisions {:?}, op Σ {op_sum}µs ≤ total {}µs",
                trace.len(),
                decisions,
                stats.total_micros
            ),
            outcome: verdict(reconciled && op_sum <= stats.total_micros),
            micros: us_spans,
        });

        let off_limits = EvalLimits {
            trace: TraceLevel::Off,
            ..EvalLimits::default()
        };
        // Median of repeated runs: single runs of a sub-10ms workload are
        // too noisy to compare levels.
        let median = |l: &EvalLimits| {
            let mut samples: Vec<u128> = (0..9)
                .map(|_| timed(|| run(&p, &db, l).unwrap()).1)
                .collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        let us_off = median(&off_limits);
        let us_counters = median(&EvalLimits::default());
        rows.push(Row {
            id: "Obs",
            what: format!(
                "TC 24-chain tracing overhead: off {us_off}µs, counters {us_counters}µs, \
                 spans {us_spans}µs"
            ),
            outcome: verdict(us_off > 0),
            micros: us_off,
        });
    }

    // ------------------------------------------------------------------
    // Resource governor (DESIGN.md "Resource governance"): an armed but
    // never-tripping budget must cost noise next to the ungoverned run —
    // polling is two atomic/branch reads per statement boundary — and a
    // tight cell budget must trip with the partial stats attached.
    // ------------------------------------------------------------------
    {
        let p = tabular_bench::ta_tc_program();
        let db = tabular_bench::ta_chain_db(24);
        let median_of = |f: &dyn Fn() -> u128| {
            let mut samples: Vec<u128> = (0..9).map(|_| f()).collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        let base = EvalLimits::default();
        let us_plain = median_of(&|| timed(|| run(&p, &db, &base).unwrap()).1);
        let armed = Budget::from_limits(&base)
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_cell_budget(usize::MAX);
        let us_governed = median_of(&|| timed(|| run_governed(&p, &db, &armed).unwrap()).1);
        let same = run(&p, &db, &base).unwrap().table_str("TC").unwrap()
            == run_governed(&p, &db, &armed)
                .unwrap()
                .table_str("TC")
                .unwrap();
        rows.push(Row {
            id: "Governor",
            what: format!(
                "TC 24-chain governor overhead: ungoverned {us_plain}µs, \
                 deadline+cells armed {us_governed}µs"
            ),
            outcome: verdict(same),
            micros: us_governed,
        });

        let tight = Budget::from_limits(&base).with_cell_budget(500);
        let (trip, us_trip) = timed(|| run_governed(&p, &db, &tight).unwrap_err());
        let tripped = match &trip {
            tabular_algebra::AlgebraError::BudgetExceeded { partial, .. } => {
                partial.stats.tables_produced > 0
            }
            _ => false,
        };
        rows.push(Row {
            id: "Governor",
            what: format!("TC 24-chain, 500-cell budget: {trip}"),
            outcome: verdict(tripped),
            micros: us_trip,
        });
    }

    // ------------------------------------------------------------------
    // Storage engine: structural sharing (DESIGN.md "Storage engine")
    // ------------------------------------------------------------------
    {
        // Insert-dedup throughput: 10k distinct tables into one store
        // (fingerprint-set membership, O(1) expected per insert), then
        // the same 10k again — every duplicate rejected without growing
        // the store.
        let values: Vec<String> = (0..10_000).map(|i| format!("v{i}")).collect();
        let tables: Vec<tabular_core::Table> = values
            .iter()
            .map(|v| tabular_core::Table::relational("T", &["A"], &[&[v.as_str()]]))
            .collect();
        let (mut db, us_insert) = timed(|| {
            let mut db = tabular_core::Database::new();
            for t in &tables {
                db.insert(t.clone());
            }
            db
        });
        let (fresh, us_dedup) = timed(|| tables.iter().filter(|t| db.insert((*t).clone())).count());
        rows.push(Row {
            id: "storage",
            what: format!(
                "insert 10k distinct tables {us_insert}µs, re-insert all (dedup) {us_dedup}µs"
            ),
            outcome: verdict(db.len() == 10_000 && fresh == 0),
            micros: us_insert,
        });
    }
    {
        // Snapshot cost: 10k O(1) handle snapshots of a 64-table store
        // vs a single deep rebuild of the same store (what every
        // `while` iteration paid before structural sharing).
        let db = tabular_bench::ta_chain_db(24);
        let big = {
            let mut big = tabular_core::Database::new();
            for round in 0..64 {
                for t in db.tables() {
                    let mut t = t.clone();
                    t.set_name(Symbol::name(&format!("{}_{round}", t.name())));
                    big.insert(t);
                }
            }
            big
        };
        let (snaps, us_snap) = timed(|| (0..10_000).map(|_| big.snapshot()).collect::<Vec<_>>());
        let (deep, us_deep) = timed(|| {
            tabular_core::Database::from_tables(big.tables().iter().map(|t| t.map_symbols(|s| s)))
        });
        let shared = snaps
            .last()
            .is_some_and(|s| s.tables()[0].shares_cells_with(&big.tables()[0]));
        let unshared = !deep.tables()[0].shares_cells_with(&big.tables()[0]);
        rows.push(Row {
            id: "storage",
            what: format!(
                "10k snapshots of {}-table store {us_snap}µs vs one deep rebuild {us_deep}µs",
                big.len()
            ),
            outcome: verdict(shared && unshared),
            micros: us_snap,
        });
    }

    // ------------------------------------------------------------------
    // Lemmas 4.2/4.3
    // ------------------------------------------------------------------
    {
        let db = fixtures::sales_info4_full();
        let (ok, us) = timed(|| {
            let rep = encode(&db);
            check_fds(&rep).is_none() && decode(&rep).unwrap().equiv(&db)
        });
        rows.push(Row {
            id: "Lem4.2/4.3",
            what: "Rep round-trip on SalesInfo4-full (5 tables)".into(),
            outcome: verdict(ok),
            micros: us,
        });
    }
    {
        let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
        let program = encode_program(&scheme).unwrap();
        let db = fixtures::sales_info1();
        let (ok, us) = timed(|| {
            let out = run_outputs(
                &program,
                &db,
                &[Symbol::name("Data"), Symbol::name("Map")],
                &limits,
            )
            .unwrap();
            let rep = RelDatabase::from_tabular(&out, &[Symbol::name("Data"), Symbol::name("Map")])
                .unwrap();
            decode(&rep).unwrap().equiv(&db)
        });
        rows.push(Row {
            id: "Lem4.2",
            what: format!("P_Rep as a TA program ({} statements)", program.len()),
            outcome: verdict(ok),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // Theorem 4.4: normal-form transformations
    // ------------------------------------------------------------------
    {
        use tabular_canonical::normal_form::{rename_tables, transpose_all};
        let db = fixtures::sales_info1();
        for t in [rename_tables("Sales", "Orders"), transpose_all()] {
            let (ok, us) = timed(|| {
                let native = t.apply(&db, 1000).unwrap();
                let via_ta = t.apply_via_ta(&db, &limits).unwrap();
                native.equiv(&via_ta)
            });
            rows.push(Row {
                id: "Thm4.4",
                what: format!("normal form '{}': native = via TA", t.label),
                outcome: verdict(ok),
                micros: us,
            });
        }
    }

    {
        use tabular_canonical::normal_form::{matrix_to_relation, relation_to_matrix};
        let (ok, us) = timed(|| {
            let to_rel = matrix_to_relation("Sales", "Region", "Part", "Sold");
            let to_mat = relation_to_matrix("Sales", "Region", "Part", "Sold");
            to_rel
                .apply(&fixtures::sales_info3(), 1000)
                .unwrap()
                .equiv(&fixtures::sales_info1())
                && to_mat
                    .apply(&fixtures::sales_info1(), 1000)
                    .unwrap()
                    .equiv(&fixtures::sales_info3())
        });
        rows.push(Row {
            id: "Thm4.4",
            what: "SalesInfo3 ↔ SalesInfo1 via Rep (data-as-attributes both ways)".into(),
            outcome: verdict(ok),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // Theorem 4.5: SchemaLog_d embedded in TA
    // ------------------------------------------------------------------
    {
        let quads = tabular_bench::sales_quads(4, 4);
        let p = sl_parse(
            "R[T : part -> P, sold -> S] :-
                sales[T : region -> R], sales[T : part -> P], sales[T : sold -> S].",
        )
        .unwrap();
        let (ok, us) = timed(|| {
            let native = eval(&p, &quads, Strategy::SemiNaive, &SlLimits::default()).unwrap();
            let via_ta = run_translated(&p, &quads, &limits).unwrap();
            native.len() == via_ta.len() && native.iter().all(|q| via_ta.contains(q))
        });
        rows.push(Row {
            id: "Thm4.5",
            what: "SchemaLog split-by-region: native = translated TA".into(),
            outcome: verdict(ok),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // §4.3: TA as the OLAP restructuring language (scaling spot-check).
    // The `pivot` path now runs through `optimize::fuse_restructure`, so
    // the TA column measures the fused kernel; the staged pipeline (the
    // pre-fusion chain) is timed head-to-head at every size.
    // ------------------------------------------------------------------
    let restructure: RestructureSummary;
    {
        let mut summary = None;
        let median_of = |f: &dyn Fn() -> u128| {
            let mut samples: Vec<u128> = (0..9).map(|_| f()).collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        for &(p, r) in &[(16usize, 8usize), (64, 16), (128, 32)] {
            let rel = fixtures::make_sales_relation(p, r);
            let (ta, us_ta) = timed(|| {
                pivot(&rel, Symbol::name("Region"), Symbol::name("Sold"), &limits).unwrap()
            });
            let (base, us_base) =
                timed(|| pivot_direct(&rel, Symbol::name("Region"), Symbol::name("Sold")).unwrap());
            let overhead = us_ta as f64 / us_base.max(1) as f64;
            rows.push(Row {
                id: "§4.3",
                what: format!(
                    "pivot {p}×{r}: TA program {us_ta}µs vs baseline {us_base}µs \
                     ({overhead:.1}× overhead)"
                ),
                outcome: verdict(ta.equiv(&base)),
                micros: us_ta,
            });

            // Staged vs fused as whole TA programs over the same database.
            let keys = [Symbol::name("Part")];
            let staged_p = tabular_olap::pivot_program(
                rel.name(),
                Symbol::name("Region"),
                Symbol::name("Sold"),
                &keys,
                Symbol::name("Pivoted"),
            );
            let fused_p = tabular_algebra::optimize::fuse_restructure(&staged_p);
            let db = tabular_core::Database::from_tables([rel.clone()]);
            let us_staged = median_of(&|| timed(|| run(&staged_p, &db, &limits).unwrap()).1);
            let us_fused = median_of(&|| timed(|| run(&fused_p, &db, &limits).unwrap()).1);
            let (out_s, stats_s) = run_with_stats(&staged_p, &db, &limits).unwrap();
            let (out_f, stats_f) = run_with_stats(&fused_p, &db, &limits).unwrap();
            let same = out_s.table_str("Pivoted").unwrap() == out_f.table_str("Pivoted").unwrap();
            let speedup = us_staged as f64 / us_fused.max(1) as f64;
            rows.push(Row {
                id: "restructure",
                what: format!(
                    "pivot {p}×{r} staged {us_staged}µs vs fused kernel {us_fused}µs \
                     ({speedup:.1}×, peak {} → {} cells)",
                    stats_s.max_table_cells, stats_f.max_table_cells
                ),
                outcome: verdict(
                    same && stats_f.restructure_fused > 0 && stats_f.restructure_unfused == 0,
                ),
                micros: us_fused,
            });
            if (p, r) == (128, 32) {
                let by = SymbolSet::from_iter([Symbol::name("Region")]);
                let on = SymbolSet::from_iter([Symbol::name("Sold")]);
                summary = Some(RestructureSummary {
                    staged_us: us_staged,
                    fused_us: us_fused,
                    kernel_runs: stats_f.restructure_fused,
                    cells_staged: tabular_algebra::ops::grouped_cells(&rel, &by, &on),
                    cells_fused_peak: stats_f.max_table_cells,
                    overhead_x: overhead,
                });
            }
        }
        restructure = summary.expect("the 128×32 size ran");
    }

    // Contribution (4): GOOD embedded in the tabular model.
    {
        use tabular_good::{
            compile::run_via_ta,
            graph::Graph,
            ops::{GoodOp, GoodProgram},
            pattern::Pattern,
        };
        let mut g = Graph::new();
        let a = g.add_node(Symbol::name("Person"));
        let b = g.add_node(Symbol::name("Person"));
        let c = g.add_node(Symbol::name("Person"));
        g.add_edge(a, Symbol::name("parent"), b);
        g.add_edge(b, Symbol::name("parent"), c);
        let program = GoodProgram::new().op(GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "parent", 1)
                .edge(1, "parent", 2),
            label: Symbol::name("grandparent"),
            from: 0,
            to: 2,
        });
        let (ok, us) = timed(|| {
            let native = program.run(&g, 100).unwrap();
            let via_ta = run_via_ta(&program, &g, &limits).unwrap();
            native.equiv(&via_ta)
        });
        rows.push(Row {
            id: "Contrib.4",
            what: "GOOD grandparent derivation: native = TA-compiled (isomorphic)".into(),
            outcome: verdict(ok),
            micros: us,
        });
    }

    // Where does the TA pivot's time go? The interpreter's statistics
    // decompose the 128×32 run per operation.
    {
        let rel = fixtures::make_sales_relation(64, 16);
        let keys = [Symbol::name("Part")];
        let program = tabular_olap::pivot_program(
            rel.name(),
            Symbol::name("Region"),
            Symbol::name("Sold"),
            &keys,
            Symbol::name("Pivoted"),
        );
        let db = tabular_core::Database::from_tables([rel]);
        let (_, stats) = tabular_algebra::run_with_stats(&program, &db, &limits).unwrap();
        let hottest = stats.hottest();
        let breakdown: Vec<String> = hottest
            .iter()
            .map(|(op, us, _)| format!("{op} {us}µs"))
            .collect();
        rows.push(Row {
            id: "§4.3",
            what: format!(
                "pivot 64×16 op breakdown: {} (peak table {} cells)",
                breakdown.join(", "),
                stats.max_table_cells
            ),
            outcome: verdict(!hottest.is_empty()),
            micros: hottest.iter().map(|(_, us, _)| us).sum(),
        });
    }

    // ------------------------------------------------------------------
    // Partition-parallel join: a 1M-row probe against a 10k-row build
    // through the fused hash kernel, serial vs hash-partitioned across
    // 8 shards. Output is byte-identical by construction; the pinned
    // claim is the speedup. Per-shard busy time is measured inside each
    // job, so running the 8 shards on a deliberately 1-thread pool
    // serializes them and isolates the serial prelude (index build +
    // exact resize + charges) as `wall − Σ busy`; the 8-core projection
    // is then `prelude + max(shard busy)`.
    // ------------------------------------------------------------------
    let partition: PartitionSummary;
    {
        use tabular_algebra::ops::{self as aops, JoinCols};
        use tabular_algebra::pool::ShardPool;

        const PROBE_ROWS: usize = 1_000_000;
        const BUILD_ROWS: usize = 10_000;
        const SHARDS: usize = 8;

        let keys: Vec<Symbol> = (0..BUILD_ROWS)
            .map(|j| Symbol::value(&format!("k{j}")))
            .collect();
        let payload = Symbol::value("p");
        let probe_rows: Vec<Vec<Symbol>> = (0..PROBE_ROWS)
            .map(|i| vec![payload, keys[i % BUILD_ROWS]])
            .collect();
        let build_rows: Vec<Vec<Symbol>> = keys.iter().map(|&k| vec![k, payload]).collect();
        let probe = tabular_core::Table::relational_syms(
            Symbol::name("L"),
            &[Symbol::name("A"), Symbol::name("B")],
            &probe_rows,
        );
        let build = tabular_core::Table::relational_syms(
            Symbol::name("R"),
            &[Symbol::name("C"), Symbol::name("D")],
            &build_rows,
        );
        drop((probe_rows, build_rows));
        let cols = JoinCols { left: 2, right: 1 };
        let name = Symbol::name("T");

        // Best-of-3 throughout this section: on a single-vCPU host a
        // descheduled thread inflates any wall-clock sample by tens of
        // milliseconds, so the minimum — not the median — is the sample
        // closest to the true cost.
        let best_of = |f: &dyn Fn() -> u128| (0..3).map(|_| f()).min().unwrap();
        let serial_us = best_of(&|| timed(|| aops::join(&probe, &build, cols, name)).1);
        let serial = aops::join(&probe, &build, cols, name);

        let pool = ShardPool::new(1); // serialize shards to isolate busy times
        let mut runs: Vec<(u128, Vec<aops::PartitionShard>, tabular_core::Table)> = (0..3)
            .map(|_| {
                let ((out, report), wall) = timed(|| {
                    aops::join_partitioned(
                        &probe,
                        &build,
                        cols,
                        name,
                        &pool,
                        SHARDS,
                        &|| Ok(()),
                        &mut |_| Ok(()),
                    )
                    .unwrap()
                });
                (wall, report, out)
            })
            .collect();
        // Keep the run whose projected critical path (prelude + slowest
        // shard) is smallest — one stolen time slice during any single
        // shard's busy window would otherwise dominate the projection.
        let critical = |(wall, report, _): &(u128, Vec<aops::PartitionShard>, _)| {
            let busy_total: u128 = report.iter().map(|p| p.wall_micros).sum();
            let busy_max = report.iter().map(|p| p.wall_micros).max().unwrap_or(0);
            wall.saturating_sub(busy_total) + busy_max
        };
        let best = (0..runs.len()).min_by_key(|&i| critical(&runs[i])).unwrap();
        let (partitioned_wall_us, report, out) = runs.swap_remove(best);

        let shard_busy_us: Vec<u128> = report.iter().map(|p| p.wall_micros).collect();
        let busy_total: u128 = shard_busy_us.iter().sum();
        let busy_max: u128 = shard_busy_us.iter().copied().max().unwrap_or(0);
        let prelude_us = partitioned_wall_us.saturating_sub(busy_total);
        let critical_path_us = (prelude_us + busy_max).max(1);
        let speedup_8core = serial_us as f64 / critical_path_us as f64;
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

        let same = out == serial;
        rows.push(Row {
            id: "partition",
            what: format!(
                "join 1M×10k, 8 shards: serial {serial_us}µs, critical path \
                 {critical_path_us}µs (prelude {prelude_us}µs + max shard {busy_max}µs) \
                 → {speedup_8core:.1}× on 8 cores"
            ),
            outcome: verdict(same && speedup_8core >= 3.0),
            micros: critical_path_us,
        });
        partition = PartitionSummary {
            probe_rows: PROBE_ROWS,
            build_rows: BUILD_ROWS,
            out_rows: out.height(),
            shards: report.len(),
            host_cores,
            serial_us,
            partitioned_wall_us,
            shard_busy_us,
            prelude_us,
            critical_path_us,
            speedup_8core,
        };
    }

    // ------------------------------------------------------------------
    // Cost-based planner: join ordering on a pessimal 3-way chain. The
    // source program materializes the 400×400 product first; the planner
    // reorders the 1-row table in front and fuses the terminal selection
    // into a hash join, never building the quadratic intermediate.
    // ------------------------------------------------------------------
    let plan_bench: PlanSummary;
    {
        use tabular_algebra::{
            run_planned, run_planned_traced, Assignment, OpKind, Param, Program, Statement,
        };

        const SIDE: usize = 400;
        let rel2 = |name: &str, a0: &str, a1: &str, rows: Vec<[String; 2]>| {
            let syms: Vec<Vec<Symbol>> = rows
                .iter()
                .map(|r| vec![Symbol::value(&r[0]), Symbol::value(&r[1])])
                .collect();
            tabular_core::Table::relational_syms(
                Symbol::name(name),
                &[Symbol::name(a0), Symbol::name(a1)],
                &syms,
            )
        };
        let db = tabular_core::Database::from_tables([
            rel2(
                "L",
                "A",
                "X",
                (0..SIDE)
                    .map(|i| [format!("v{i}"), format!("x{i}")])
                    .collect(),
            ),
            rel2(
                "M",
                "B",
                "Y",
                (SIDE / 2..SIDE / 2 + SIDE)
                    .map(|i| [format!("v{i}"), format!("y{i}")])
                    .collect(),
            ),
            tabular_core::Table::relational("N", &["C"], &[&["n"]]),
        ]);
        let s1 = Param::sym(Symbol::name("\u{1F}bp0a"));
        let s2 = Param::sym(Symbol::name("\u{1F}bp0b"));
        let program = Program {
            statements: vec![
                Statement::Assign(Assignment {
                    target: s1.clone(),
                    op: OpKind::Product,
                    args: vec![Param::name("L"), Param::name("M")],
                }),
                Statement::Assign(Assignment {
                    target: s2.clone(),
                    op: OpKind::Product,
                    args: vec![s1, Param::name("N")],
                }),
                Statement::Assign(Assignment {
                    target: Param::name("Out"),
                    op: OpKind::Select {
                        a: Param::name("A"),
                        b: Param::name("B"),
                    },
                    args: vec![s2],
                }),
            ],
        };

        // Best-of-3 for the same reason as the partition section: the
        // minimum is the sample closest to true cost under vCPU steal.
        let best_of = |f: &dyn Fn() -> u128| (0..3).map(|_| f()).min().unwrap();
        let unplanned_us = best_of(&|| timed(|| run(&program, &db, &limits).unwrap()).1);
        let planned_us = best_of(&|| timed(|| run_planned(&program, &db, &limits).unwrap()).1);

        let spans_limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out_u, _, trace_u) = run_traced(&program, &db, &spans_limits).unwrap();
        let (out_p, stats_p, trace_p) = run_planned_traced(&program, &db, &spans_limits).unwrap();
        let product_cells = |trace: &tabular_algebra::Trace| -> usize {
            trace
                .spans()
                .filter(|s| s.op == "PRODUCT")
                .map(|s| s.output_cells)
                .sum()
        };
        let unplanned_product_cells = product_cells(&trace_u);
        let planned_product_cells = product_cells(&trace_p);
        let out = out_p.table_str("Out").unwrap();
        let same = out.equiv(out_u.table_str("Out").unwrap());
        let speedup = unplanned_us as f64 / planned_us.max(1) as f64;
        rows.push(Row {
            id: "plan",
            what: format!(
                "3-way join order {SIDE}×{SIDE}×1: unplanned {unplanned_us}µs \
                 ({unplanned_product_cells} product cells), planned {planned_us}µs \
                 ({planned_product_cells} cells) → {speedup:.1}×"
            ),
            outcome: verdict(
                same && speedup >= 2.0
                    && stats_p.plan_rules_applied >= 1
                    && planned_product_cells < unplanned_product_cells,
            ),
            micros: planned_us,
        });
        plan_bench = PlanSummary {
            left_rows: SIDE,
            right_rows: SIDE,
            tiny_rows: 1,
            out_rows: out.height(),
            unplanned_us,
            planned_us,
            speedup,
            rules_applied: stats_p.plan_rules_applied,
            statements_rewritten: stats_p.plans_rewritten,
            unplanned_product_cells,
            planned_product_cells,
        };
    }

    // Sanity footer: the set-new blow-up measured once (guarded).
    {
        let t = tabular_core::Table::relational("R", &["A"], &[&["1"], &["2"], &["3"], &["4"]]);
        let (out, us) = timed(|| {
            tabular_algebra::ops::set_new(&t, Symbol::name("S"), Symbol::name("T"), 1 << 20)
                .unwrap()
        });
        rows.push(Row {
            id: "§3.5",
            what: format!("set-new on 4 rows: {} rows (m·2^(m−1))", out.height()),
            outcome: verdict(out.height() == 32),
            micros: us,
        });
    }

    // ------------------------------------------------------------------
    // Print
    // ------------------------------------------------------------------
    println!(
        "{:<11} {:<72} {:<9} {:>10}",
        "experiment", "construction", "outcome", "time (µs)"
    );
    println!("{}", "-".repeat(106));
    for row in &rows {
        println!(
            "{:<11} {:<72} {:<9} {:>10}",
            row.id, row.what, row.outcome, row.micros
        );
    }
    let failed = rows.iter().filter(|r| r.outcome != "verified").count();
    println!("{}", "-".repeat(106));
    println!(
        "{} experiments, {} verified, {} failed",
        rows.len(),
        rows.len() - failed,
        failed
    );
    // Machine-readable artifact: every row plus the join-fusion summary.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": {}, \"what\": {}, \"outcome\": {}, \"micros\": {}}}",
                json_str(r.id),
                json_str(&r.what),
                json_str(&r.outcome),
                r.micros
            )
        })
        .collect();
    let speedup = fusion.unfused_us as f64 / fusion.fused_us.max(1) as f64;
    let restructure_speedup = restructure.staged_us as f64 / restructure.fused_us.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"tc_chain_24\",\n  \"fusion\": {{\"unfused_us\": {}, \
         \"fused_us\": {}, \"speedup\": {:.2}, \"kernel_runs\": {}, \
         \"product_cells_staged\": {}, \"join_cells_out\": {}, \"cells_avoided\": {}}},\n  \
         \"restructure\": {{\"bench\": \"pivot_128x32\", \"staged_us\": {}, \
         \"fused_us\": {}, \"speedup\": {:.2}, \"kernel_runs\": {}, \
         \"cells_staged\": {}, \"cells_fused_peak\": {}, \"cells_avoided\": {}, \
         \"pivot_overhead_vs_baseline\": {:.2}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        fusion.unfused_us,
        fusion.fused_us,
        speedup,
        fusion.kernel_runs,
        fusion.product_cells,
        fusion.join_cells,
        fusion.product_cells.saturating_sub(fusion.join_cells),
        restructure.staged_us,
        restructure.fused_us,
        restructure_speedup,
        restructure.kernel_runs,
        restructure.cells_staged,
        restructure.cells_fused_peak,
        restructure
            .cells_staged
            .saturating_sub(restructure.cells_fused_peak),
        restructure.overhead_x,
        json_rows.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_6.json", &json) {
        eprintln!("could not write BENCH_6.json: {e}");
    } else {
        println!(
            "wrote BENCH_6.json (join {speedup:.1}×, restructure {restructure_speedup:.1}× \
             fused speedup, pivot 128×32 at {:.1}× of baseline)",
            restructure.overhead_x
        );
    }
    // Partition-parallel join artifact: its own file so the claim (and
    // the measurement method) stay pinned independently of BENCH_6.
    let shard_json: Vec<String> = partition
        .shard_busy_us
        .iter()
        .map(u128::to_string)
        .collect();
    let json7 = format!(
        "{{\n  \"bench\": \"partitioned_join_1m_x_10k\",\n  \
         \"probe_rows\": {},\n  \"build_rows\": {},\n  \"out_rows\": {},\n  \
         \"shards\": {},\n  \"host_cores\": {},\n  \
         \"serial_us\": {},\n  \"partitioned_wall_1thread_us\": {},\n  \
         \"shard_busy_us\": [{}],\n  \"prelude_us\": {},\n  \
         \"critical_path_us\": {},\n  \"speedup_8core\": {:.2},\n  \
         \"method\": \"per-shard busy times measured inside jobs on a \
         1-thread pool (shards serialized); prelude = wall - sum(busy) = \
         index build + exact reserve + charges; 8-core projection = \
         prelude + max(shard busy); best-of-3 runs to filter vCPU steal; \
         output asserted byte-identical to the serial kernel\"\n}}\n",
        partition.probe_rows,
        partition.build_rows,
        partition.out_rows,
        partition.shards,
        partition.host_cores,
        partition.serial_us,
        partition.partitioned_wall_us,
        shard_json.join(", "),
        partition.prelude_us,
        partition.critical_path_us,
        partition.speedup_8core,
    );
    if let Err(e) = std::fs::write("BENCH_7.json", &json7) {
        eprintln!("could not write BENCH_7.json: {e}");
    } else {
        println!(
            "wrote BENCH_7.json (partitioned join {:.1}× projected on 8 cores, \
             prelude {}µs, critical path {}µs)",
            partition.speedup_8core, partition.prelude_us, partition.critical_path_us
        );
    }
    // Cost-based planner artifact: pins the join-ordering claim (and the
    // measurement method) independently of the other bench files.
    let json8 = format!(
        "{{\n  \"bench\": \"plan_join_order_3way\",\n  \
         \"left_rows\": {},\n  \"right_rows\": {},\n  \"tiny_rows\": {},\n  \
         \"out_rows\": {},\n  \
         \"unplanned_us\": {},\n  \"planned_us\": {},\n  \"speedup\": {:.2},\n  \
         \"plan_rules_applied\": {},\n  \"statements_rewritten\": {},\n  \
         \"unplanned_product_cells\": {},\n  \"planned_product_cells\": {},\n  \
         \"cells_avoided\": {},\n  \
         \"method\": \"pessimal source order PRODUCT(L,M) then PRODUCT(.,N) then \
         SELECT[A=B]; planned side is the full run_planned entry point \
         (statistics + rewrites + lowering + evaluation); best-of-3 wall times \
         to filter vCPU steal; outputs asserted equivalent; product cells from \
         span traces\"\n}}\n",
        plan_bench.left_rows,
        plan_bench.right_rows,
        plan_bench.tiny_rows,
        plan_bench.out_rows,
        plan_bench.unplanned_us,
        plan_bench.planned_us,
        plan_bench.speedup,
        plan_bench.rules_applied,
        plan_bench.statements_rewritten,
        plan_bench.unplanned_product_cells,
        plan_bench.planned_product_cells,
        plan_bench
            .unplanned_product_cells
            .saturating_sub(plan_bench.planned_product_cells),
    );
    if let Err(e) = std::fs::write("BENCH_8.json", &json8) {
        eprintln!("could not write BENCH_8.json: {e}");
    } else {
        println!(
            "wrote BENCH_8.json (planner {:.1}× on the 3-way chain, {} product \
             cells avoided, {} rule applications)",
            plan_bench.speedup,
            plan_bench
                .unplanned_product_cells
                .saturating_sub(plan_bench.planned_product_cells),
            plan_bench.rules_applied
        );
    }
    assert_eq!(failed, 0, "experiment regressions");
    let _ = SymbolSet::new(); // keep the prelude import exercised
}

fn verdict(ok: bool) -> String {
    if ok { "verified" } else { "FAILED" }.to_string()
}

/// Minimal JSON string quoting (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
