//! The query-service scaling driver: sustained QPS across a
//! client-count sweep plus tail latency and snapshot-isolation
//! figures for the `tabular-server` HTTP service, pinned in
//! `BENCH_10.json`.
//!
//! ```sh
//! cargo run -p tabular-bench --bin service_bench --release
//! ```
//!
//! Three measurements over real sockets against an in-process server:
//!
//! 1. **Client sweep** — 1/4/16/64 keep-alive clients cycling point
//!    queries (a projection scan), pivots (the paper's GROUP →
//!    CLEAN-UP → PURGE cross-tabulation), and transitive-closure
//!    fixpoints (the fused-join `while` loop), reporting sustained QPS
//!    and p50/p99 per count. The 4-client point is the no-regression
//!    anchor against `BENCH_9.json`.
//! 2. **Core-scaling projection** — the reactor's `worker_busy_us` /
//!    `reactor_busy_us` counters give the CPU seconds each layer
//!    consumed per phase. On a single-core host the sweep saturates
//!    the core (measured QPS is flat past saturation), so — as with
//!    `BENCH_7.json`'s shard-pool projection — a multi-core figure is
//!    projected from measured busy time: workers parallelize across
//!    cores while the reactor stays serial, so projected wall ≈
//!    max(reactor_busy, worker_busy / (cores − 1)).
//! 3. **Snapshot isolation** — readers and a committing writer in one
//!    session, alone and together, unchanged from BENCH_9.
//!
//! Every request in the sweep goes through the epoll reactor and the
//! bounded worker pool, not a per-connection thread: 64 clients cost
//! 64 slab slots, not 64 server threads.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tabular_algebra::pretty;
use tabular_bench::ta_tc_fused_program;
use tabular_server::{json, Config, Server};

const SWEEP: [usize; 4] = [1, 4, 16, 64];
const MIXED_SECS: f64 = 2.0;
const PHASE_SECS: f64 = 1.2;
const CHAIN: usize = 24;
const PROJECTED_CORES: f64 = 8.0;

/// A keep-alive HTTP client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        // One write per request: fragmented writes stall on Nagle.
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(msg.as_bytes())
            .expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_length = v;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    fn post_expect(&mut self, path: &str, body: &str, want: u16) -> String {
        let (status, resp) = self.request("POST", path, body);
        assert_eq!(status, want, "{path}: {resp}");
        resp
    }
}

fn query_body(program: &str) -> String {
    format!("{{\"program\": \"{}\"}}", json::escape(program))
}

/// Upload the workload tables into a fresh session; returns its id.
fn seed_session(addr: SocketAddr) -> String {
    let mut c = Client::connect(addr);
    let resp = c.post_expect("/sessions", "", 201);
    let session = json::parse(&resp)
        .unwrap()
        .get("session")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let tables_path = format!("/sessions/{session}/tables");

    // E: the TC chain n0 → … → n24.
    let mut edges = String::from("E,A,B\n");
    for i in 0..CHAIN {
        edges.push_str(&format!("r{i},n{i},n{}\n", i + 1));
    }
    c.post_expect(&tables_path, &edges, 201);

    // Sales: 120 rows over 4 regions × 6 parts for the pivot chain and
    // the point-query scans.
    let regions = ["east", "west", "north", "south"];
    let parts = ["nuts", "bolts", "cogs", "gears", "pins", "rods"];
    let mut sales = String::from("Sales,Region,Part,Sold\n");
    for i in 0..120 {
        sales.push_str(&format!(
            "r{i},{},{},{}\n",
            regions[i % regions.len()],
            parts[i % parts.len()],
            (i * 7) % 50,
        ));
    }
    c.post_expect(&tables_path, &sales, 201);

    // Seed tables for the writer's committing product.
    let mut seed = String::from("Seed,S\n");
    let mut seed2 = String::from("Seed2,T\n");
    for i in 0..20 {
        seed.push_str(&format!("r{i},s{i}\n"));
        seed2.push_str(&format!("r{i},t{i}\n"));
    }
    c.post_expect(&tables_path, &seed, 201);
    c.post_expect(&tables_path, &seed2, 201);
    session
}

const POINT: &str = "P <- PROJECT[{Region}](Sales)";
const PIVOT: &str = "Cross <- GROUP[by {Region} on {Sold}](Sales)\n\
                     Cross <- CLEANUP[by {Part} on {_}](Cross)\n\
                     Cross <- PURGE[on {Sold} by {Region}](Cross)";
const WRITE: &str = "Version <- PRODUCT(Seed, Seed2)";

/// Drive one query class in a loop until the stop flag; returns
/// per-request latencies in microseconds.
fn drive(addr: SocketAddr, path: &str, bodies: &[&str], stop: &AtomicBool) -> Vec<(usize, u128)> {
    let mut client = Client::connect(addr);
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let class = match i % 10 {
            0..=6 => 0, // point
            7 | 8 => 1, // pivot
            _ => 2,     // tc fixpoint
        }
        .min(bodies.len() - 1);
        let start = Instant::now();
        let resp = client.post_expect(path, bodies[class], 200);
        debug_assert!(resp.contains("\"ok\":true"));
        latencies.push((class, start.elapsed().as_micros()));
        i += 1;
    }
    latencies
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[ix]
}

fn stats_of(mut us: Vec<u128>) -> (usize, u128, u128) {
    us.sort_unstable();
    (us.len(), percentile(&us, 50.0), percentile(&us, 99.0))
}

/// Run `clients` driver threads for `secs`; returns merged latencies.
fn run_phase(
    addr: SocketAddr,
    path: &str,
    bodies: &[&str],
    clients: usize,
    secs: f64,
) -> Vec<(usize, u128)> {
    let stop = Arc::new(AtomicBool::new(false));
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let stop = Arc::clone(&stop);
                scope.spawn(move || drive(addr, path, bodies, &stop))
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread"))
            .collect::<Vec<_>>()
    });
    merged
}

/// One sweep point's measured figures.
struct SweepPoint {
    clients: usize,
    qps: f64,
    p50_us: u128,
    p99_us: u128,
    requests: usize,
    wall_s: f64,
    worker_busy_s: f64,
    reactor_busy_s: f64,
    class_stats: Vec<(usize, u128, u128)>,
}

fn main() {
    let (addr, service) = Server::bind(Config {
        addr: "127.0.0.1:0".into(),
        default_deadline_ms: None,
        default_cell_budget: None,
        workers: 0,
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    let session = seed_session(addr);
    let query = format!("/sessions/{session}/query?readonly=1");
    let commit = format!("/sessions/{session}/query");
    let tc = pretty::render(&ta_tc_fused_program());

    // -- Phase 1: mixed workload across the client sweep --
    let point_body = query_body(POINT);
    let pivot_body = query_body(PIVOT);
    let tc_body = query_body(&tc);
    let bodies = [point_body.as_str(), pivot_body.as_str(), tc_body.as_str()];
    let mut sweep = Vec::new();
    for &clients in &SWEEP {
        let worker0 = service.counters.worker_busy_us.load(Ordering::Relaxed);
        let reactor0 = service.counters.reactor_busy_us.load(Ordering::Relaxed);
        let started = Instant::now();
        let mixed = run_phase(addr, &query, &bodies, clients, MIXED_SECS);
        let wall_s = started.elapsed().as_secs_f64();
        let worker_busy_s =
            (service.counters.worker_busy_us.load(Ordering::Relaxed) - worker0) as f64 / 1e6;
        let reactor_busy_s =
            (service.counters.reactor_busy_us.load(Ordering::Relaxed) - reactor0) as f64 / 1e6;
        let (requests, p50_us, p99_us) = stats_of(mixed.iter().map(|(_, us)| *us).collect());
        let class_stats: Vec<(usize, u128, u128)> = (0..3)
            .map(|class| {
                stats_of(
                    mixed
                        .iter()
                        .filter(|(c, _)| *c == class)
                        .map(|(_, us)| *us)
                        .collect(),
                )
            })
            .collect();
        let qps = requests as f64 / wall_s;
        eprintln!(
            "{clients:>3} clients: {qps:.0} qps (p50 {p50_us}µs, p99 {p99_us}µs; \
             worker {worker_busy_s:.2}s + reactor {reactor_busy_s:.2}s busy over {wall_s:.2}s)"
        );
        sweep.push(SweepPoint {
            clients,
            qps,
            p50_us,
            p99_us,
            requests,
            wall_s,
            worker_busy_s,
            reactor_busy_s,
            class_stats,
        });
    }
    let qps_4 = sweep.iter().find(|p| p.clients == 4).expect("4-client").qps;
    let wide = sweep.last().expect("sweep");
    let qps_64_over_4 = wide.qps / qps_4;
    // Multi-core projection from measured busy time (the BENCH_7
    // method): workers spread across cores − 1 while the reactor
    // stays serial on its own core.
    let projected_wall = (wide.worker_busy_s / (PROJECTED_CORES - 1.0)).max(wide.reactor_busy_s);
    let projected_qps_64 = wide.requests as f64 / projected_wall.max(1e-9);
    let projected_64_over_4 = projected_qps_64 / qps_4;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // -- Phase 2: snapshot isolation, readers × writer --
    let readers_alone = run_phase(addr, &query, &[&pivot_body], 2, PHASE_SECS);
    let (_, _, reader_alone_p99) = stats_of(readers_alone.iter().map(|(_, us)| *us).collect());

    let write_body = query_body(WRITE);
    let writer_alone = run_phase(addr, &commit, &[&write_body], 1, PHASE_SECS);
    let writer_alone_rate = writer_alone.len() as f64 / PHASE_SECS;

    let stop = Arc::new(AtomicBool::new(false));
    let (readers_contended, writer_contended) = std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..2)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let query = query.as_str();
                let pivot_body = pivot_body.as_str();
                scope.spawn(move || drive(addr, query, &[pivot_body], &stop))
            })
            .collect();
        let writer_handle = {
            let stop = Arc::clone(&stop);
            let commit = commit.as_str();
            let write_body = write_body.as_str();
            scope.spawn(move || drive(addr, commit, &[write_body], &stop))
        };
        std::thread::sleep(Duration::from_secs_f64(PHASE_SECS));
        stop.store(true, Ordering::Relaxed);
        let readers: Vec<_> = reader_handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader"))
            .collect();
        (readers, writer_handle.join().expect("writer"))
    });
    let (_, _, reader_contended_p99) =
        stats_of(readers_contended.iter().map(|(_, us)| *us).collect());
    let writer_contended_rate = writer_contended.len() as f64 / PHASE_SECS;

    let trips = service.counters.budget_trips.load(Ordering::Relaxed);
    assert_eq!(trips, 0, "no admission trips expected in this workload");
    let accepted = service
        .counters
        .connections_accepted
        .load(Ordering::Relaxed);

    let class_names = ["point", "pivot", "tc"];
    let mut sweep_json = String::from("  \"sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        sweep_json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"wall_ms\": {:.0}, \"qps\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"worker_busy_ms\": {:.0}, \
             \"reactor_busy_ms\": {:.0}}}{comma}\n",
            p.clients,
            p.requests,
            p.wall_s * 1000.0,
            p.qps,
            p.p50_us,
            p.p99_us,
            p.worker_busy_s * 1000.0,
            p.reactor_busy_s * 1000.0,
        ));
    }
    sweep_json.push_str("  ],\n");
    let anchor = sweep.iter().find(|p| p.clients == 4).expect("4-client");
    let mut class_json = String::new();
    for (name, (n, p50, p99)) in class_names.iter().zip(&anchor.class_stats) {
        class_json.push_str(&format!(
            "  \"clients4_{name}_requests\": {n},\n  \"clients4_{name}_p50_us\": {p50},\n  \
             \"clients4_{name}_p99_us\": {p99},\n",
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"service_scaling\",\n  \"host_cores\": {cores},\n{sweep_json}  \
         \"qps_4_clients\": {qps_4:.1},\n  \"qps_64_clients\": {:.1},\n  \
         \"qps_64_over_4_measured\": {qps_64_over_4:.2},\n  \
         \"qps_64_projected_{pc}core\": {projected_qps_64:.1},\n  \
         \"qps_64_over_4_projected_{pc}core\": {projected_64_over_4:.2},\n{class_json}  \
         \"connections_accepted\": {accepted},\n  \
         \"reader_alone_p99_us\": {reader_alone_p99},\n  \
         \"reader_with_writer_p99_us\": {reader_contended_p99},\n  \
         \"writer_alone_commits_per_s\": {writer_alone_rate:.1},\n  \
         \"writer_with_readers_commits_per_s\": {writer_contended_rate:.1},\n  \
         \"budget_trips\": {trips},\n  \
         \"method\": \"in-process tabular-serve (epoll reactor + bounded worker pool) over \
         loopback sockets; 1/4/16/64 keep-alive clients cycle 70% point projections, 20% \
         GROUP/CLEANUP/PURGE pivots, 10% fused-join TC fixpoints over a {CHAIN}-edge chain, \
         all readonly against Database::snapshot, {MIXED_SECS}s per sweep point; \
         worker_busy/reactor_busy are the /stats CPU-time counters per phase; the projected \
         figure assumes workers spread over cores-1 with the reactor serial on its own core \
         (max(reactor_busy, worker_busy/{pcm})), the BENCH_7 projection method; isolation \
         phases rerun pivot readers and a committing PRODUCT writer in one session, alone and \
         together, for {PHASE_SECS}s each; latencies are whole-request wall times measured \
         client-side\"\n}}\n",
        wide.qps,
        pc = PROJECTED_CORES as usize,
        pcm = PROJECTED_CORES as usize - 1,
    );
    if let Err(e) = std::fs::write("BENCH_10.json", &json) {
        eprintln!("could not write BENCH_10.json: {e}");
    }
    println!("{json}");
    println!(
        "sweep: 4 clients {qps_4:.0} qps → 64 clients {:.0} qps measured \
         ({qps_64_over_4:.2}x on {cores} core(s)), {projected_qps_64:.0} qps projected on \
         {} cores ({projected_64_over_4:.2}x); reader p99 {reader_alone_p99}µs alone vs \
         {reader_contended_p99}µs with writer; writer {writer_alone_rate:.0}/s alone vs \
         {writer_contended_rate:.0}/s with readers",
        wide.qps, PROJECTED_CORES as usize,
    );
}
