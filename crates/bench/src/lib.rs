//! Workloads and reference algorithms for the benchmark harness.
//!
//! Each Criterion bench target in `benches/` regenerates one figure or
//! construction of the paper at scale (DESIGN.md §3 maps them); this
//! library holds the shared workload generators and the *naive* reference
//! algorithms used by the ablation benches (DESIGN.md §6).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular_core::{Symbol, SymbolSet, Table};
use tabular_relational::relation::{RelDatabase, Relation};
use tabular_schemalog::quads::QuadDb;

/// The sweep of (parts, regions) sizes used by the figure benches.
pub const SWEEP: &[(usize, usize)] = &[(4, 4), (16, 8), (64, 16), (128, 32)];

/// A random edge relation `E(From, To)` over `n` nodes with `m` edges
/// (seeded, reproducible).
pub fn random_edges(n: usize, m: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = Relation::new("E", &["From", "To"], &[]);
    for _ in 0..m {
        let a: usize = rng.gen_range(0..n);
        let b: usize = rng.gen_range(0..n);
        e.insert(vec![
            Symbol::value(&format!("n{a}")),
            Symbol::value(&format!("n{b}")),
        ])
        .expect("arity");
    }
    e
}

/// A chain graph `n0 → n1 → … → n_{len}` (worst case for transitive
/// closure iteration depth).
pub fn chain_edges(len: usize) -> Relation {
    let mut e = Relation::new("E", &["From", "To"], &[]);
    for i in 0..len {
        e.insert(vec![
            Symbol::value(&format!("n{i}")),
            Symbol::value(&format!("n{}", i + 1)),
        ])
        .expect("arity");
    }
    e
}

/// The Theorem 4.1 transitive-closure loop written directly in TA — the
/// workload behind the `ablation/delta_while_tc` bench group and the
/// delta-`while` row of the report. The body is ground, tag-free, and
/// loop-free, so the interpreter's `Delta` strategy applies; the
/// loop-invariant `EStep` copy and the append-only growth of `TC`
/// exercise both statement skipping and incremental recomputation.
pub fn ta_tc_program() -> tabular_algebra::Program {
    tabular_algebra::parser::parse(
        "TC <- COPY(E)
         Frontier <- COPY(E)
         while Frontier do
           EStep <- COPY(E)
           RTC <- RENAME[A -> A0](TC)
           RTC <- RENAME[B -> B0](RTC)
           Joined <- PRODUCT(RTC, EStep)
           Matched <- SELECT[B0 = A](Joined)
           Step <- PROJECT[{A0, B}](Matched)
           Step <- RENAME[A0 -> A](Step)
           Frontier <- DIFFERENCE(Step, TC)
           TC <- CLASSICALUNION(TC, Frontier)
         end",
    )
    .expect("fixed program parses")
}

/// [`ta_tc_program`] with the loop's `PRODUCT`-then-`SELECT` pair
/// replaced by the fused hash-join operator the optimizer introduces —
/// the workload behind the `join_fused` report row. Same closure, but
/// the `|RTC| · |EStep|` intermediate product is never materialized:
/// matching rows are emitted straight from the hash probe, and the
/// delta strategy probes only the rows `RTC` gained since the previous
/// iteration.
pub fn ta_tc_fused_program() -> tabular_algebra::Program {
    tabular_algebra::parser::parse(
        "TC <- COPY(E)
         Frontier <- COPY(E)
         while Frontier do
           EStep <- COPY(E)
           RTC <- RENAME[A -> A0](TC)
           RTC <- RENAME[B -> B0](RTC)
           Matched <- FUSEDJOIN[B0 = A](RTC, EStep)
           Step <- PROJECT[{A0, B}](Matched)
           Step <- RENAME[A0 -> A](Step)
           Frontier <- DIFFERENCE(Step, TC)
           TC <- CLASSICALUNION(TC, Frontier)
         end",
    )
    .expect("fixed program parses")
}

/// A chain graph as a tabular database `E[A, B]` for [`ta_tc_program`].
pub fn ta_chain_db(len: usize) -> tabular_core::Database {
    let rows: Vec<[String; 2]> = (0..len)
        .map(|i| [format!("n{i}"), format!("n{}", i + 1)])
        .collect();
    let rows: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
    tabular_core::Database::from_tables([Table::relational("E", &["A", "B"], &rows)])
}

/// The quad view of a scaled sales database for the SchemaLog benches.
pub fn sales_quads(parts: usize, regions: usize) -> QuadDb {
    let rel = tabular_core::fixtures::make_sales_relation(parts, regions);
    let mut db = RelDatabase::new();
    db.set(Relation::from_table(&rel).expect("relational"));
    QuadDb::from_relations(&db)
}

/// The naive clean-up reference: for each group, pairwise subsumption
/// tests against every candidate join (quadratic in the group size),
/// instead of the componentwise join. Produces the same result; exists
/// for the `ablation_cleanup` bench.
pub fn cleanup_naive(r: &Table, by: &SymbolSet, on: &SymbolSet, name: Symbol) -> Table {
    // Reuse the real implementation's grouping by running it and checking
    // subsumption the slow way: we recompute groups here explicitly.
    let by_cols = r.cols_in(by);
    let mut keys: Vec<Vec<Symbol>> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 1..=r.height() {
        if !on.contains(r.get(i, 0)) {
            continue;
        }
        let mut key = vec![r.get(i, 0)];
        key.extend(by_cols.iter().map(|&j| r.get(i, j)));
        match keys.iter().position(|k| *k == key) {
            Some(g) => groups[g].push(i),
            None => {
                keys.push(key);
                groups.push(vec![i]);
            }
        }
    }

    let mut t = Table::new(name, 0, r.width());
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    let mut done = vec![false; r.height() + 1];
    for i in 1..=r.height() {
        if done[i] {
            continue;
        }
        let group = groups
            .iter()
            .find(|g| g.contains(&i))
            .cloned()
            .unwrap_or_else(|| vec![i]);
        if group.len() == 1 && group[0] == i && !on.contains(r.get(i, 0)) {
            t.push_row(r.storage_row(i).to_vec());
            continue;
        }
        // Candidate join: accumulate, then verify by *pairwise
        // subsumption* against every member (the quadratic check).
        let mut acc = r.storage_row(group[0]).to_vec();
        let mut ok = true;
        'outer: for &g in &group[1..] {
            for (a, &b) in acc.iter_mut().zip(r.storage_row(g)) {
                match a.join(b) {
                    Some(j) => *a = j,
                    None => {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if ok {
            // Quadratic verification pass.
            let candidate = {
                let mut c = Table::new(name, 0, r.width());
                for j in 1..=r.width() {
                    c.set(0, j, r.col_attr(j));
                }
                c.push_row(acc.clone());
                c
            };
            ok = group.iter().all(|&g| r.row_subsumed_by(g, &candidate, 1));
        }
        if ok {
            t.push_row(acc);
        } else {
            for &g in &group {
                t.push_row(r.storage_row(g).to_vec());
            }
        }
        for &g in &group {
            done[g] = true;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_algebra::ops;
    use tabular_core::fixtures;

    #[test]
    fn naive_cleanup_matches_real_cleanup() {
        let grouped = fixtures::figure4_grouped();
        let by = SymbolSet::from_iter([Symbol::name("Part")]);
        let on = SymbolSet::from_iter([Symbol::Null]);
        let fast = ops::cleanup(&grouped, &by, &on, Symbol::name("C"));
        let naive = cleanup_naive(&grouped, &by, &on, Symbol::name("C"));
        assert!(fast.equiv(&naive), "fast:\n{fast}\nnaive:\n{naive}");
    }

    #[test]
    fn generators_are_seeded() {
        assert_eq!(
            random_edges(10, 20, 7).canonical(),
            random_edges(10, 20, 7).canonical()
        );
        assert_eq!(chain_edges(5).len(), 5);
        assert!(!sales_quads(4, 4).is_empty());
    }

    #[test]
    fn ta_tc_workload_closes_the_chain_under_both_strategies() {
        use tabular_algebra::{run_with_stats, EvalLimits, WhileStrategy};
        let p = ta_tc_program();
        let db = ta_chain_db(8);
        let naive = EvalLimits {
            while_strategy: WhileStrategy::Naive,
            ..EvalLimits::default()
        };
        let delta = EvalLimits {
            while_strategy: WhileStrategy::Delta,
            ..EvalLimits::default()
        };
        let (out_n, _) = run_with_stats(&p, &db, &naive).unwrap();
        let (out_d, stats) = run_with_stats(&p, &db, &delta).unwrap();
        // 8 edges close to 9·8/2 = 36 pairs.
        assert_eq!(out_d.table_str("TC").unwrap().height(), 36);
        assert_eq!(
            out_n.table_str("TC").unwrap(),
            out_d.table_str("TC").unwrap()
        );
        assert_eq!(stats.while_fallback_naive, 0, "workload must be delta-safe");
        assert!(stats.while_delta_skipped > 0);
    }

    #[test]
    fn fused_tc_workload_matches_unfused_and_runs_the_kernel() {
        use tabular_algebra::{run_with_stats, EvalLimits, WhileStrategy};
        let db = ta_chain_db(8);
        for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
            let limits = EvalLimits {
                while_strategy: strategy,
                ..EvalLimits::default()
            };
            let (out_u, _) = run_with_stats(&ta_tc_program(), &db, &limits).unwrap();
            let (out_f, stats) = run_with_stats(&ta_tc_fused_program(), &db, &limits).unwrap();
            assert_eq!(
                out_u.table_str("TC").unwrap(),
                out_f.table_str("TC").unwrap()
            );
            assert!(stats.join_fused > 0, "the hash kernel must run");
            assert_eq!(stats.join_unfused, 0, "the workload keys are fusable");
            assert_eq!(stats.while_fallback_naive, 0, "workload must be delta-safe");
        }
    }
}
