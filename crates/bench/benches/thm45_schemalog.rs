//! Theorem 4.5: SchemaLog_d evaluation — native semi-naive vs the
//! TA-translated pipeline, on a restructuring program over scaled sales
//! data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::{EvalLimits, WhileStrategy};
use tabular_bench::sales_quads;
use tabular_schemalog::{
    eval::{eval, SlLimits, Strategy},
    parser::parse,
    translate::{run_fo, run_translated},
};

fn bench(c: &mut Criterion) {
    let program = parse(
        "R[T : part -> P, sold -> S] :-
            sales[T : region -> R], sales[T : part -> P], sales[T : sold -> S].",
    )
    .unwrap();
    let limits = SlLimits::default();

    let mut g = c.benchmark_group("thm45/split_program");
    for &(p, r) in &[(4usize, 4usize), (8, 6), (16, 8)] {
        let quads = sales_quads(p, r);
        let label = format!("{p}x{r}");
        g.bench_with_input(BenchmarkId::new("native", &label), &quads, |b, q| {
            b.iter(|| eval(&program, q, Strategy::SemiNaive, &limits).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("via_fo", &label), &quads, |b, q| {
            b.iter(|| run_fo(&program, q, 100_000).unwrap());
        });
        if p <= 8 {
            // The TA path interprets the whole reduction; keep it small.
            // Both `while` strategies run so the translated pipeline's
            // delta payoff shows up next to the native evaluator.
            g.bench_with_input(BenchmarkId::new("via_ta", &label), &quads, |b, q| {
                b.iter(|| run_translated(&program, q, &EvalLimits::default()).unwrap());
            });
            let naive = EvalLimits {
                while_strategy: WhileStrategy::Naive,
                ..EvalLimits::default()
            };
            g.bench_with_input(BenchmarkId::new("via_ta_naive", &label), &quads, |b, q| {
                b.iter(|| run_translated(&program, q, &naive).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
