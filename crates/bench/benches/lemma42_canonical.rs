//! Lemmas 4.2/4.3: canonical-representation encode/decode round trips at
//! scale, and the generated TA program `P_Rep` against the native encoder
//! (the interpreted-vs-native ablation for the encoding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tabular_algebra::{run_outputs, EvalLimits};
use tabular_bench::SWEEP;
use tabular_canonical::{decode, encode, encode_program, EncodeScheme};
use tabular_core::{fixtures, Database, Symbol};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lemma42/encode");
    for &(p, r) in SWEEP {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        g.throughput(Throughput::Elements(db.cell_count() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| encode(db));
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("lemma43/decode");
    for &(p, r) in SWEEP {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        let rep = encode(&db);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &rep,
            |b, rep| {
                b.iter(|| decode(rep).unwrap());
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("lemma42/round_trip");
    for &(p, r) in SWEEP {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| decode(&encode(db)).unwrap());
            },
        );
    }
    g.finish();

    // P_Rep as an interpreted TA program (smaller sweep: the program
    // multiplies constants per attribute and unions quadruple blocks).
    let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
    let program = encode_program(&scheme).unwrap();
    let outputs = [Symbol::name("Data"), Symbol::name("Map")];
    let limits = EvalLimits::default();
    let mut g = c.benchmark_group("lemma42/ta_program");
    for &(p, r) in &[(4usize, 4usize), (16, 8), (32, 12)] {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| run_outputs(&program, db, &outputs, &limits).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
