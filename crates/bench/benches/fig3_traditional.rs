//! Figure 3: the traditional operations (union, difference, Cartesian
//! product) and classical union, swept over input cardinalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::ops;
use tabular_core::{fixtures, Symbol};

fn bench(c: &mut Criterion) {
    let name = Symbol::name("T");
    for &rows in &[64usize, 256, 1024] {
        let a = fixtures::make_sales_relation(rows / 4, 8);
        let b = fixtures::make_sales_relation(rows / 4, 8);
        let mut g = c.benchmark_group(format!("fig3/{rows}"));
        g.bench_function(BenchmarkId::new("union", rows), |bch| {
            bch.iter(|| ops::union(&a, &b, name));
        });
        g.bench_function(BenchmarkId::new("difference", rows), |bch| {
            bch.iter(|| ops::difference(&a, &b, name));
        });
        g.bench_function(BenchmarkId::new("classical_union", rows), |bch| {
            bch.iter(|| ops::classical_union(&a, &b, name));
        });
        g.finish();
    }
    // Product is quadratic; sweep smaller sizes.
    let mut g = c.benchmark_group("fig3/product");
    for &rows in &[16usize, 64, 128] {
        let a = fixtures::make_sales_relation(rows / 4, 8);
        let b = fixtures::make_sales_relation(rows / 4, 8);
        g.bench_with_input(BenchmarkId::from_parameter(rows), &(a, b), |bch, (a, b)| {
            bch.iter(|| ops::product(a, b, name));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
