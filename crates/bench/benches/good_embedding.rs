//! Contribution (4): GOOD programs natively vs compiled through the
//! tabular algebra, on scaled random object bases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular_algebra::EvalLimits;
use tabular_core::Symbol;
use tabular_good::{
    compile::run_via_ta,
    graph::Graph,
    ops::{GoodOp, GoodProgram},
    pattern::Pattern,
};

/// A random bipartite paper/author object base.
fn library(papers: usize, authors: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let author_ids: Vec<Symbol> = (0..authors)
        .map(|_| g.add_node(Symbol::name("Author")))
        .collect();
    for _ in 0..papers {
        let p = g.add_node(Symbol::name("Paper"));
        for _ in 0..2 {
            let a = author_ids[rng.gen_range(0..authors)];
            g.add_edge(p, Symbol::name("by"), a);
        }
    }
    g
}

fn coauthor_program() -> GoodProgram {
    GoodProgram::new().op(GoodOp::EdgeAddition {
        pattern: Pattern::new()
            .node(0, "Author")
            .node(1, "Author")
            .node(2, "Paper")
            .edge(2, "by", 0)
            .edge(2, "by", 1),
        label: Symbol::name("coauthor"),
        from: 0,
        to: 1,
    })
}

fn bench(c: &mut Criterion) {
    let program = coauthor_program();
    let limits = EvalLimits::default();
    let mut g = c.benchmark_group("good/coauthor");
    for &(p, a) in &[(16usize, 8usize), (48, 16), (96, 24)] {
        let graph = library(p, a, 11);
        let label = format!("{p}p{a}a");
        g.bench_with_input(BenchmarkId::new("native", &label), &graph, |b, gr| {
            b.iter(|| program.run(gr, 100).unwrap());
        });
        // The compiled path materializes the pattern join as Cartesian
        // products before selecting (the FO encoding), so it is bounded
        // to the smallest size — the measured cost of the constructive
        // embedding, recorded as-is in EXPERIMENTS.md.
        if p <= 16 {
            g.bench_with_input(BenchmarkId::new("via_ta", &label), &graph, |b, gr| {
                b.iter(|| run_via_ta(&program, gr, &limits).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
