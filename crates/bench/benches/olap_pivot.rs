//! §4.3 OLAP: the algebraic pivot/unpivot (TA programs) against the
//! hand-coded baselines — quantifying the cost of the algebra's
//! generality (interpreter, generic subsumption machinery) relative to a
//! purpose-built implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::EvalLimits;
use tabular_bench::SWEEP;
use tabular_core::{fixtures, Symbol};
use tabular_olap::baseline::{pivot_direct, unpivot_direct};
use tabular_olap::{pivot, unpivot, Agg, Cube};

fn bench(c: &mut Criterion) {
    let region = Symbol::name("Region");
    let sold = Symbol::name("Sold");
    let limits = EvalLimits::default();

    let mut g = c.benchmark_group("olap/pivot");
    for &(p, r) in SWEEP {
        let rel = fixtures::make_sales_relation(p, r);
        let label = format!("{p}x{r}");
        g.bench_with_input(BenchmarkId::new("ta_program", &label), &rel, |b, rel| {
            b.iter(|| pivot(rel, region, sold, &limits).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("baseline", &label), &rel, |b, rel| {
            b.iter(|| pivot_direct(rel, region, sold).unwrap());
        });
    }
    g.finish();

    let mut g = c.benchmark_group("olap/unpivot");
    for &(p, r) in SWEEP {
        let cross = fixtures::make_sales_info2(p, r);
        let label = format!("{p}x{r}");
        g.bench_with_input(BenchmarkId::new("ta_program", &label), &cross, |b, t| {
            b.iter(|| unpivot(t, sold, region, &limits).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("baseline", &label), &cross, |b, t| {
            b.iter(|| unpivot_direct(t, sold, region).unwrap());
        });
    }
    g.finish();

    // Cube construction + full roll-up cascade.
    let mut g = c.benchmark_group("olap/cube");
    for &(p, r) in SWEEP {
        let rel = fixtures::make_sales_relation(p, r);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &rel,
            |b, rel| {
                b.iter(|| {
                    let cube =
                        Cube::from_table(rel, &[region, Symbol::name("Part")], sold, Agg::Sum)
                            .unwrap();
                    cube.grand_total(Agg::Sum)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
