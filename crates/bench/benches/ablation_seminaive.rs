//! Ablation (DESIGN.md §6): incremental vs naive fixpoints on recursive
//! transitive closure, on both engines that iterate to one — the
//! SchemaLog evaluator (semi-naive vs naive) and the TA interpreter's
//! `while` loop (delta vs naive). The crossover grows with iteration
//! depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::{run, EvalLimits, TraceLevel, WhileStrategy};
use tabular_bench::{ta_chain_db, ta_tc_program};
use tabular_relational::relation::{RelDatabase, Relation};
use tabular_schemalog::{
    eval::{eval, SlLimits, Strategy},
    parser::parse,
    quads::QuadDb,
};

/// A chain graph as a lowercase-named relation (the surface syntax reads
/// bare uppercase tokens as variables).
fn chain(len: usize) -> Relation {
    let mut e = Relation::new("edge", &["from", "to"], &[]);
    for i in 0..len {
        e.insert(vec![
            tabular_core::Symbol::value(&format!("n{i}")),
            tabular_core::Symbol::value(&format!("n{}", i + 1)),
        ])
        .expect("arity");
    }
    e
}

fn bench(c: &mut Criterion) {
    let program = parse(
        "tc[T : from -> X, to -> Y] :- edge[T : from -> X, to -> Y].
         tc[T : from -> X, to -> Z] :- tc[T : from -> X, to -> Y],
                                       edge[U : from -> Y, to -> Z].",
    )
    .unwrap();
    let limits = SlLimits::default();

    let mut g = c.benchmark_group("ablation/seminaive_tc");
    for &len in &[8usize, 16, 24] {
        let quads = QuadDb::from_relations(&RelDatabase::from_relations([chain(len)]));
        g.bench_with_input(BenchmarkId::new("seminaive", len), &quads, |b, q| {
            b.iter(|| eval(&program, q, Strategy::SemiNaive, &limits).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("naive", len), &quads, |b, q| {
            b.iter(|| eval(&program, q, Strategy::Naive, &limits).unwrap());
        });
    }
    g.finish();

    // The same ablation one level up: the TA interpreter's `while` loop
    // on the Theorem 4.1 transitive-closure program. `Delta` skips the
    // loop-invariant statements and recomputes the product/selection/
    // projection chain incrementally over the appended `TC` rows.
    let ta_program = ta_tc_program();
    let strategy_limits = |s| EvalLimits {
        while_strategy: s,
        ..EvalLimits::default()
    };
    let mut g = c.benchmark_group("ablation/delta_while_tc");
    for &len in &[8usize, 16, 24] {
        let db = ta_chain_db(len);
        g.bench_with_input(BenchmarkId::new("delta", len), &db, |b, db| {
            b.iter(|| run(&ta_program, db, &strategy_limits(WhileStrategy::Delta)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("naive", len), &db, |b, db| {
            b.iter(|| run(&ta_program, db, &strategy_limits(WhileStrategy::Naive)).unwrap());
        });
        // Tracing-overhead ablation on the same workload: `Off` removes
        // all timing from the statement path and must stay within noise
        // (<5%) of the default `Counters` delta rows above; `Spans` adds
        // the ring-buffer span layer.
        for (label, level) in [
            ("trace_off", TraceLevel::Off),
            ("trace_spans", TraceLevel::Spans),
        ] {
            let l = EvalLimits {
                trace: level,
                ..EvalLimits::default()
            };
            g.bench_with_input(BenchmarkId::new(label, len), &db, |b, db| {
                b.iter(|| run(&ta_program, db, &l).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
