//! Theorem 4.1: `FO + while + new` programs run directly vs compiled to
//! tabular algebra — the cost of the simulation, on transitive closure
//! over chains (iteration-bound) and random graphs (join-bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::{EvalLimits, WhileStrategy};
use tabular_bench::{chain_edges, random_edges};
use tabular_relational::compile::{compile, run_compiled};
use tabular_relational::program::transitive_closure_program;
use tabular_relational::relation::RelDatabase;

fn bench(c: &mut Criterion) {
    let program = transitive_closure_program();
    let limits = EvalLimits::default();
    let naive_limits = EvalLimits {
        while_strategy: WhileStrategy::Naive,
        ..EvalLimits::default()
    };

    let mut g = c.benchmark_group("thm41/tc_chain");
    for &len in &[8usize, 16, 32] {
        let db = RelDatabase::from_relations([chain_edges(len)]);
        g.bench_with_input(BenchmarkId::new("fo_direct", len), &db, |b, db| {
            b.iter(|| program.run(db, 100_000).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("via_ta", len), &db, |b, db| {
            b.iter(|| run_compiled(&program, db, &["TC"], &limits).unwrap());
        });
        // The compiled loop under the naive `while` strategy isolates how
        // much of the simulation overhead the delta engine removes.
        g.bench_with_input(BenchmarkId::new("via_ta_naive", len), &db, |b, db| {
            b.iter(|| run_compiled(&program, db, &["TC"], &naive_limits).unwrap());
        });
    }
    g.finish();

    let mut g = c.benchmark_group("thm41/tc_random");
    for &(n, m) in &[(16usize, 24usize), (32, 48)] {
        let db = RelDatabase::from_relations([random_edges(n, m, 42)]);
        let label = format!("{n}n{m}e");
        g.bench_with_input(BenchmarkId::new("fo_direct", &label), &db, |b, db| {
            b.iter(|| program.run(db, 100_000).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("via_ta", &label), &db, |b, db| {
            b.iter(|| run_compiled(&program, db, &["TC"], &limits).unwrap());
        });
    }
    g.finish();

    c.bench_function("thm41/compile_only", |b| {
        b.iter(|| compile(&program));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
