//! Ablation (DESIGN.md §6): parallel vs sequential statement evaluation
//! for wildcard statements fanning out over many same-named tables
//! (SalesInfo4 at scale).
//!
//! Note: the evaluation fans out with `std::thread::scope` over
//! `available_parallelism()` shards. On a single-CPU host (as in the CI
//! container that produced EXPERIMENTS.md) the parallel path degenerates
//! to one shard and measures pure spawning overhead (~2–5%); the ablation
//! is meaningful on multi-core machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::{parser::parse, run, EvalLimits};
use tabular_core::fixtures;

fn bench(c: &mut Criterion) {
    let program = parse(
        "*1 <- TRANSPOSE(*1)
         *1 <- CLEANUP[by {*} on {_}](*1)",
    )
    .unwrap();
    let parallel = EvalLimits {
        parallel_threshold: 4,
        ..EvalLimits::default()
    };
    let sequential = EvalLimits {
        parallel_threshold: usize::MAX,
        ..EvalLimits::default()
    };

    let mut g = c.benchmark_group("ablation/parallel_eval");
    for &(parts, regions) in &[(32usize, 64usize), (64, 256), (64, 1024)] {
        let db = fixtures::make_sales_info4(parts, regions);
        let label = format!("{}tables", db.len());
        g.bench_with_input(BenchmarkId::new("sequential", &label), &db, |b, db| {
            b.iter(|| run(&program, db, &sequential).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("parallel", &label), &db, |b, db| {
            b.iter(|| run(&program, db, &parallel).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
