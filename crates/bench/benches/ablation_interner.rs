//! Ablation (DESIGN.md §6): interned `u32` symbols vs uninterned
//! `Arc<str>` symbols, on the comparison/hash workload the algebra's
//! grouping and subsumption machinery consists of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use tabular_core::symbol::uninterned::USymbol;
use tabular_core::{fixtures, Symbol};

fn bench(c: &mut Criterion) {
    let rel = fixtures::make_sales_relation(64, 32);
    let interned: Vec<Symbol> = rel.symbols().collect();
    let uninterned: Vec<USymbol> = interned.iter().map(|&s| USymbol::from_symbol(s)).collect();

    let mut g = c.benchmark_group("ablation/interner");
    g.bench_function(BenchmarkId::new("weak_eq_scan", "interned"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in interned.windows(2) {
                if w[0].weak_eq(w[1]) {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.bench_function(BenchmarkId::new("weak_eq_scan", "uninterned"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in uninterned.windows(2) {
                if w[0].weak_eq(&w[1]) {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.bench_function(BenchmarkId::new("hash_dedup", "interned"), |b| {
        b.iter(|| interned.iter().collect::<HashSet<_>>().len());
    });
    g.bench_function(BenchmarkId::new("hash_dedup", "uninterned"), |b| {
        b.iter(|| uninterned.iter().collect::<HashSet<_>>().len());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
