//! Figure 1: restructuring between the SalesInfo representations, swept
//! over (parts × regions) sizes. The paper's claim is expressiveness; the
//! bench measures what each restructuring program costs as the data
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::{parser::parse, run, EvalLimits};
use tabular_bench::SWEEP;
use tabular_core::{fixtures, Database};

fn bench(c: &mut Criterion) {
    let limits = EvalLimits::default();
    let to_info2 = parse(
        "Sales <- GROUP[by {Region} on {Sold}](Sales)
         Sales <- CLEANUP[by {Part} on {_}](Sales)
         Sales <- PURGE[on {Sold} by {Region}](Sales)",
    )
    .unwrap();
    let to_info4 = parse("Sales <- SPLIT[on {Region}](Sales)").unwrap();
    let from_info4 = parse(
        "Sales <- COLLAPSE[by {Region}](Sales)
         Sales <- PURGE[on {*} by {}](Sales)
         Sales <- CLEANUP[by {*} on {_}](Sales)",
    )
    .unwrap();

    let mut g = c.benchmark_group("fig1/info1_to_info2");
    for &(p, r) in SWEEP {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| run(&to_info2, db, &limits).unwrap());
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig1/info1_to_info4");
    for &(p, r) in SWEEP {
        let db = Database::from_tables([fixtures::make_sales_relation(p, r)]);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| run(&to_info4, db, &limits).unwrap());
            },
        );
    }
    g.finish();

    // Collapse's tabular union grows one column block per table; keep the
    // region counts modest.
    let mut g = c.benchmark_group("fig1/info4_to_info1");
    for &(p, r) in &[(4usize, 4usize), (16, 8), (64, 12)] {
        let db = fixtures::make_sales_info4(p, r);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &db,
            |b, db| {
                b.iter(|| run(&from_info4, db, &limits).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
