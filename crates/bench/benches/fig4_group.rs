//! Figure 4: the GROUP operation, swept over input height. The grouped
//! table has one copy of the grouped attributes per data row — Θ(m²)
//! cells — so the sweep also documents the quadratic blow-up the paper's
//! uneconomical intermediate representation implies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tabular_algebra::ops;
use tabular_core::{fixtures, Symbol, SymbolSet};

fn bench(c: &mut Criterion) {
    let by = SymbolSet::from_iter([Symbol::name("Region")]);
    let on = SymbolSet::from_iter([Symbol::name("Sold")]);
    let name = Symbol::name("G");
    let mut g = c.benchmark_group("fig4/group");
    for &(p, r) in &[(4usize, 4usize), (8, 8), (16, 16), (32, 32)] {
        let rel = fixtures::make_sales_relation(p, r);
        g.throughput(Throughput::Elements(rel.height() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rows={}", rel.height())),
            &rel,
            |b, rel| {
                b.iter(|| ops::group(rel, &by, &on, name));
            },
        );
    }
    g.finish();

    // The full §3.4 chain amortizes the blow-up away again.
    let mut g = c.benchmark_group("fig4/group_cleanup_purge");
    for &(p, r) in &[(4usize, 4usize), (8, 8), (16, 16), (32, 32)] {
        let rel = fixtures::make_sales_relation(p, r);
        let keys = SymbolSet::from_iter([Symbol::name("Part")]);
        let null = SymbolSet::from_iter([tabular_core::Symbol::Null]);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rows={}", rel.height())),
            &rel,
            |b, rel| {
                b.iter(|| {
                    let grouped = ops::group(rel, &by, &on, name);
                    let cleaned = ops::cleanup(&grouped, &keys, &null, name);
                    ops::purge(&cleaned, &on, &by, name)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
