//! Ablation (DESIGN.md §6): componentwise-join clean-up vs the naive
//! quadratic pairwise-subsumption algorithm, on grouped tables of
//! increasing size (the Figure 4 → SalesInfo2 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabular_algebra::ops;
use tabular_bench::cleanup_naive;
use tabular_core::{fixtures, Symbol, SymbolSet};

fn bench(c: &mut Criterion) {
    let by_region = SymbolSet::from_iter([Symbol::name("Region")]);
    let on_sold = SymbolSet::from_iter([Symbol::name("Sold")]);
    let by_part = SymbolSet::from_iter([Symbol::name("Part")]);
    let null = SymbolSet::from_iter([Symbol::Null]);
    let name = Symbol::name("C");

    let mut g = c.benchmark_group("ablation/cleanup");
    for &(p, r) in &[(4usize, 4usize), (8, 8), (16, 16)] {
        let grouped = ops::group(
            &fixtures::make_sales_relation(p, r),
            &by_region,
            &on_sold,
            name,
        );
        let label = format!("rows={}", grouped.height());
        g.bench_with_input(BenchmarkId::new("join", &label), &grouped, |b, t| {
            b.iter(|| ops::cleanup(t, &by_part, &null, name));
        });
        g.bench_with_input(BenchmarkId::new("naive", &label), &grouped, |b, t| {
            b.iter(|| cleanup_naive(t, &by_part, &null, name));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
