//! Figure 5: the MERGE operation on cross-tabs, swept over both axes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tabular_algebra::ops;
use tabular_bench::SWEEP;
use tabular_core::{fixtures, Symbol, SymbolSet};

fn bench(c: &mut Criterion) {
    let on = SymbolSet::from_iter([Symbol::name("Sold")]);
    let by = SymbolSet::from_iter([Symbol::name("Region")]);
    let name = Symbol::name("M");
    let mut g = c.benchmark_group("fig5/merge");
    for &(p, r) in SWEEP {
        let cross = fixtures::make_sales_info2(p, r);
        g.throughput(Throughput::Elements((p * r) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{r}")),
            &cross,
            |b, cross| {
                b.iter(|| ops::merge(cross, &on, &by, name));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
