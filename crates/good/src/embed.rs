//! The embedding of GOOD object bases into the tabular model —
//! contribution (4) of the paper: "the graph-based object-oriented data
//! model GOOD … can be embedded within the tabular database model".
//!
//! A graph becomes two relational tables,
//!
//! ```text
//!   Node(Id, Label)      Edge(Src, Lab, Dst)
//! ```
//!
//! with object identities as values (first-class, as in the SchemaLog and
//! canonical-representation encodings). The embedding is lossless:
//! [`to_tabular`] ∘ [`from_tabular`] is the identity on graphs.

use crate::error::{GoodError, Result};
use crate::graph::Graph;
use tabular_core::{Database, Symbol, Table};

/// Name of the node table.
pub fn node_table() -> Symbol {
    Symbol::name("Node")
}

/// Name of the edge table.
pub fn edge_table() -> Symbol {
    Symbol::name("Edge")
}

/// Embed a graph as a tabular database.
pub fn to_tabular(g: &Graph) -> Database {
    let node_rows: Vec<Vec<Symbol>> = g
        .nodes()
        .iter()
        .map(|&(id, label)| vec![id, label])
        .collect();
    let nodes = Table::relational_syms(
        node_table(),
        &[Symbol::name("Id"), Symbol::name("Label")],
        &node_rows,
    );
    let edge_rows: Vec<Vec<Symbol>> = g.edges().iter().map(|&(s, l, d)| vec![s, l, d]).collect();
    let edges = Table::relational_syms(
        edge_table(),
        &[
            Symbol::name("Src"),
            Symbol::name("Lab"),
            Symbol::name("Dst"),
        ],
        &edge_rows,
    );
    Database::from_tables([nodes, edges])
}

/// Decode a graph back from its tabular embedding.
pub fn from_tabular(db: &Database) -> Result<Graph> {
    let nodes = db
        .table(node_table())
        .ok_or_else(|| GoodError::BadEmbedding("missing Node table".into()))?;
    let edges = db
        .table(edge_table())
        .ok_or_else(|| GoodError::BadEmbedding("missing Edge table".into()))?;
    if nodes.width() != 2 || !nodes.is_relational() {
        return Err(GoodError::BadEmbedding("Node must be Id, Label".into()));
    }
    if edges.width() != 3 || !edges.is_relational() {
        return Err(GoodError::BadEmbedding("Edge must be Src, Lab, Dst".into()));
    }
    let mut g = Graph::new();
    for i in 1..=nodes.height() {
        g.add_node_with_id(nodes.get(i, 1), nodes.get(i, 2));
    }
    for i in 1..=edges.height() {
        g.add_edge(edges.get(i, 1), edges.get(i, 2), edges.get(i, 3));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(nm("Person"));
        let b = g.add_node(nm("City"));
        g.add_edge(a, nm("lives_in"), b);
        g
    }

    #[test]
    fn round_trip_is_identity() {
        let g = sample();
        let back = from_tabular(&to_tabular(&g)).unwrap();
        assert!(g.equiv(&back));
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
    }

    #[test]
    fn tables_have_the_documented_shape() {
        let db = to_tabular(&sample());
        let nodes = db.table(node_table()).unwrap();
        assert!(nodes.is_relational());
        assert_eq!(nodes.col_attrs(), &[nm("Id"), nm("Label")]);
        let edges = db.table(edge_table()).unwrap();
        assert_eq!(edges.col_attrs(), &[nm("Src"), nm("Lab"), nm("Dst")]);
    }

    #[test]
    fn decoding_rejects_malformed_embeddings() {
        let db = Database::from_tables([Table::relational("Node", &["Id"], &[])]);
        assert!(matches!(from_tabular(&db), Err(GoodError::BadEmbedding(_))));
        let db2 = Database::from_tables([
            Table::relational("Node", &["Id", "Label"], &[]),
            Table::relational("Edge", &["Src", "Dst"], &[]),
        ]);
        assert!(matches!(
            from_tabular(&db2),
            Err(GoodError::BadEmbedding(_))
        ));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let back = from_tabular(&to_tabular(&g)).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }
}
