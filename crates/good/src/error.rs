//! Errors for the GOOD substrate.

/// GOOD errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoodError {
    /// An operation referenced a variable its pattern does not bind.
    UnknownVariable(u32),
    /// A fixpoint loop exceeded its iteration bound.
    FixpointLimit(usize),
    /// The tabular embedding lacks the `Node`/`Edge` relations or they
    /// have the wrong shape.
    BadEmbedding(String),
    /// This construct is outside the compiled fragment (see
    /// `compile::compile_good`).
    Untranslatable(String),
    /// Error from the relational / tabular layers.
    Rel(tabular_relational::RelError),
    /// Error from the tabular algebra interpreter.
    Tabular(tabular_algebra::AlgebraError),
}

impl std::fmt::Display for GoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoodError::UnknownVariable(v) => write!(f, "pattern does not bind variable {v}"),
            GoodError::FixpointLimit(n) => write!(f, "fixpoint exceeded {n} iterations"),
            GoodError::BadEmbedding(msg) => write!(f, "bad tabular embedding: {msg}"),
            GoodError::Untranslatable(msg) => write!(f, "not in the compiled fragment: {msg}"),
            GoodError::Rel(e) => write!(f, "{e}"),
            GoodError::Tabular(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GoodError {}

impl From<tabular_relational::RelError> for GoodError {
    fn from(e: tabular_relational::RelError) -> GoodError {
        GoodError::Rel(e)
    }
}

impl From<tabular_algebra::AlgebraError> for GoodError {
    fn from(e: tabular_algebra::AlgebraError) -> GoodError {
        GoodError::Tabular(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, GoodError>;

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        assert!(super::GoodError::UnknownVariable(3)
            .to_string()
            .contains('3'));
    }
}
