//! GOOD patterns and their embeddings.
//!
//! A pattern is itself a small graph over *variables*; its semantics on an
//! object base is the set of graph homomorphisms (label-respecting maps
//! from pattern variables to object identities). Every GOOD operation is
//! driven by the embeddings of its pattern.

use crate::graph::Graph;
use std::collections::HashMap;
use tabular_core::Symbol;

/// A pattern node: a variable with a required node label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PNode {
    /// Variable identifier (pattern-local).
    pub var: u32,
    /// Required node label.
    pub label: Symbol,
}

/// A pattern: labeled variable nodes and labeled edges between them.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Pattern {
    /// The variable nodes.
    pub nodes: Vec<PNode>,
    /// Edges `(from-var, edge label, to-var)`.
    pub edges: Vec<(u32, Symbol, u32)>,
}

/// An embedding: a map from pattern variables to object identities.
pub type Embedding = HashMap<u32, Symbol>;

impl Pattern {
    /// Empty pattern (matches once, with the empty embedding).
    pub fn new() -> Pattern {
        Pattern::default()
    }

    /// Builder: add a variable node.
    pub fn node(mut self, var: u32, label: &str) -> Pattern {
        self.nodes.push(PNode {
            var,
            label: Symbol::name(label),
        });
        self
    }

    /// Builder: add an edge.
    pub fn edge(mut self, from: u32, label: &str, to: u32) -> Pattern {
        self.edges.push((from, Symbol::name(label), to));
        self
    }

    /// The variable set, in declaration order.
    pub fn vars(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.var).collect()
    }

    /// Enumerate all embeddings of the pattern into the graph
    /// (homomorphisms: distinct variables may map to the same object).
    pub fn embeddings(&self, g: &Graph) -> Vec<Embedding> {
        let mut out = Vec::new();
        let mut partial: Embedding = HashMap::new();
        self.extend(g, 0, &mut partial, &mut out);
        out
    }

    fn extend(&self, g: &Graph, k: usize, partial: &mut Embedding, out: &mut Vec<Embedding>) {
        if k == self.nodes.len() {
            // Check the edges (node labels were enforced on assignment).
            let ok = self
                .edges
                .iter()
                .all(|&(u, l, w)| match (partial.get(&u), partial.get(&w)) {
                    (Some(&su), Some(&sw)) => g.has_edge(su, l, sw),
                    _ => false,
                });
            if ok {
                out.push(partial.clone());
            }
            return;
        }
        let pn = self.nodes[k];
        if let Some(&bound) = partial.get(&pn.var) {
            // Repeated variable declaration: labels must agree.
            if g.label_of(bound) == Some(pn.label) {
                self.extend(g, k + 1, partial, out);
            }
            return;
        }
        for id in g.nodes_labeled(pn.label) {
            partial.insert(pn.var, id);
            self.extend(g, k + 1, partial, out);
            partial.remove(&pn.var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> (Graph, Symbol, Symbol, Symbol) {
        let mut g = Graph::new();
        let a = g.add_node(Symbol::name("Person"));
        let b = g.add_node(Symbol::name("Person"));
        let c = g.add_node(Symbol::name("Person"));
        g.add_edge(a, Symbol::name("parent"), b);
        g.add_edge(b, Symbol::name("parent"), c);
        (g, a, b, c)
    }

    #[test]
    fn single_node_pattern_matches_per_label() {
        let (g, ..) = family();
        let p = Pattern::new().node(0, "Person");
        assert_eq!(p.embeddings(&g).len(), 3);
        let q = Pattern::new().node(0, "Robot");
        assert!(q.embeddings(&g).is_empty());
    }

    #[test]
    fn path_pattern_finds_grandparents() {
        let (g, a, b, c) = family();
        let p = Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .node(2, "Person")
            .edge(0, "parent", 1)
            .edge(1, "parent", 2);
        let embs = p.embeddings(&g);
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0][&0], a);
        assert_eq!(embs[0][&1], b);
        assert_eq!(embs[0][&2], c);
    }

    #[test]
    fn homomorphisms_may_identify_variables() {
        let mut g = Graph::new();
        let a = g.add_node(Symbol::name("P"));
        g.add_edge(a, Symbol::name("e"), a);
        let p = Pattern::new().node(0, "P").node(1, "P").edge(0, "e", 1);
        // Both variables map to the self-loop node.
        let embs = p.embeddings(&g);
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0][&0], embs[0][&1]);
    }

    #[test]
    fn empty_pattern_matches_once() {
        let (g, ..) = family();
        assert_eq!(Pattern::new().embeddings(&g).len(), 1);
    }

    #[test]
    fn edge_labels_are_respected() {
        let (g, ..) = family();
        let p = Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .edge(0, "sibling", 1);
        assert!(p.embeddings(&g).is_empty());
    }
}
