//! Object base graphs — the data model of GOOD (Gyssens, Paredaens &
//! Van Gucht, *A graph-oriented object database model*, PODS 1990; cited
//! as [9] and embedded into the tabular model as contribution (4) of the
//! 1996 paper).
//!
//! An object base is a finite directed graph: nodes are objects carrying a
//! *label* (their class), edges carry labels too. Node identities are
//! symbols (fresh values by default), which is exactly what makes the
//! tabular embedding (`Node(Id, Label)` / `Edge(Src, Lab, Dst)`) lossless.

use std::collections::HashSet;
use tabular_core::Symbol;

/// A labeled edge `(src, label, dst)`.
pub type Edge = (Symbol, Symbol, Symbol);

/// A GOOD object base: a directed graph with labeled nodes and edges.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<(Symbol, Symbol)>,
    node_set: HashSet<(Symbol, Symbol)>,
    edges: Vec<Edge>,
    edge_set: HashSet<Edge>,
}

impl Graph {
    /// The empty object base.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add a node with a fresh object identity; returns the identity.
    pub fn add_node(&mut self, label: Symbol) -> Symbol {
        let id = Symbol::fresh_value();
        self.add_node_with_id(id, label);
        id
    }

    /// Add a node with an explicit identity (used by fixtures and by the
    /// tabular decoding). Idempotent per (id, label).
    pub fn add_node_with_id(&mut self, id: Symbol, label: Symbol) -> bool {
        if self.node_set.insert((id, label)) {
            self.nodes.push((id, label));
            true
        } else {
            false
        }
    }

    /// Add an edge; idempotent (the object base is a set of edges).
    pub fn add_edge(&mut self, src: Symbol, label: Symbol, dst: Symbol) -> bool {
        let e = (src, label, dst);
        if self.edge_set.insert(e) {
            self.edges.push(e);
            true
        } else {
            false
        }
    }

    /// Delete a node and every incident edge.
    pub fn delete_node(&mut self, id: Symbol) {
        self.nodes.retain(|&(n, _)| n != id);
        self.node_set.retain(|&(n, _)| n != id);
        self.edges.retain(|&(s, _, d)| s != id && d != id);
        self.edge_set.retain(|&(s, _, d)| s != id && d != id);
    }

    /// Delete one edge.
    pub fn delete_edge(&mut self, src: Symbol, label: Symbol, dst: Symbol) {
        let e = (src, label, dst);
        if self.edge_set.remove(&e) {
            self.edges.retain(|&x| x != e);
        }
    }

    /// All nodes as `(id, label)` pairs.
    pub fn nodes(&self) -> &[(Symbol, Symbol)] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node ids with the given label.
    pub fn nodes_labeled(&self, label: Symbol) -> Vec<Symbol> {
        self.nodes
            .iter()
            .filter(|&&(_, l)| l == label)
            .map(|&(id, _)| id)
            .collect()
    }

    /// The label of a node (first one, if several were asserted).
    pub fn label_of(&self, id: Symbol) -> Option<Symbol> {
        self.nodes.iter().find(|&&(n, _)| n == id).map(|&(_, l)| l)
    }

    /// True if the edge exists.
    pub fn has_edge(&self, src: Symbol, label: Symbol, dst: Symbol) -> bool {
        self.edge_set.contains(&(src, label, dst))
    }

    /// Targets of `label`-edges out of `src`, as a sorted set.
    pub fn successors(&self, src: Symbol, label: Symbol) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .edges
            .iter()
            .filter(|&&(s, l, _)| s == src && l == label)
            .map(|&(_, _, d)| d)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Graph equivalence up to a relabeling of object identities (graph
    /// isomorphism respecting node and edge labels). Exact backtracking
    /// with label/degree pruning; intended for the small graphs of the
    /// test-suite — the search is bounded and conservatively answers
    /// `false` past the budget.
    pub fn equiv(&self, other: &Graph) -> bool {
        if self.node_count() != other.node_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        // Node signature: (label, out-degree per edge label, in-degree).
        let signature = |g: &Graph, id: Symbol, label: Symbol| -> Vec<(Symbol, isize)> {
            let mut sig: Vec<(Symbol, isize)> = vec![(label, -1)];
            for &(s, l, _) in g.edges() {
                if s == id {
                    sig.push((l, 1));
                }
            }
            for &(_, l, d) in g.edges() {
                if d == id {
                    sig.push((l, 2));
                }
            }
            sig.sort();
            sig
        };
        let mine: Vec<(Symbol, Vec<(Symbol, isize)>)> = self
            .nodes
            .iter()
            .map(|&(id, l)| (id, signature(self, id, l)))
            .collect();
        let theirs: Vec<(Symbol, Vec<(Symbol, isize)>)> = other
            .nodes
            .iter()
            .map(|&(id, l)| (id, signature(other, id, l)))
            .collect();
        {
            let mut a: Vec<_> = mine.iter().map(|(_, s)| s.clone()).collect();
            let mut b: Vec<_> = theirs.iter().map(|(_, s)| s.clone()).collect();
            a.sort();
            b.sort();
            if a != b {
                return false;
            }
        }

        #[allow(clippy::too_many_arguments)] // recursive search state
        fn search(
            k: usize,
            mine: &[(Symbol, Vec<(Symbol, isize)>)],
            theirs: &[(Symbol, Vec<(Symbol, isize)>)],
            mapping: &mut Vec<(Symbol, Symbol)>,
            used: &mut Vec<bool>,
            a: &Graph,
            b: &Graph,
            budget: &mut usize,
        ) -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            if k == mine.len() {
                // All edges must map.
                return a.edges().iter().all(|&(s, l, d)| {
                    let ms = mapping.iter().find(|(x, _)| *x == s).map(|(_, y)| *y);
                    let md = mapping.iter().find(|(x, _)| *x == d).map(|(_, y)| *y);
                    match (ms, md) {
                        (Some(ms), Some(md)) => b.has_edge(ms, l, md),
                        _ => false,
                    }
                });
            }
            let (id, ref sig) = mine[k];
            for (j, (cand, csig)) in theirs.iter().enumerate() {
                if used[j] || csig != sig {
                    continue;
                }
                used[j] = true;
                mapping.push((id, *cand));
                if search(k + 1, mine, theirs, mapping, used, a, b, budget) {
                    return true;
                }
                mapping.pop();
                used[j] = false;
            }
            false
        }

        let mut mapping = Vec::new();
        let mut used = vec![false; theirs.len()];
        let mut budget = 1_000_000usize;
        search(
            0,
            &mine,
            &theirs,
            &mut mapping,
            &mut used,
            self,
            other,
            &mut budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    #[test]
    fn nodes_and_edges_are_sets() {
        let mut g = Graph::new();
        let a = g.add_node(nm("Person"));
        assert!(!g.add_node_with_id(a, nm("Person")));
        let b = g.add_node(nm("Person"));
        assert!(g.add_edge(a, nm("knows"), b));
        assert!(!g.add_edge(a, nm("knows"), b));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn node_deletion_cascades() {
        let mut g = Graph::new();
        let a = g.add_node(nm("P"));
        let b = g.add_node(nm("P"));
        g.add_edge(a, nm("e"), b);
        g.add_edge(b, nm("e"), a);
        g.delete_node(a);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn successors_are_sorted_sets() {
        let mut g = Graph::new();
        let a = g.add_node(nm("P"));
        let b = g.add_node(nm("Q"));
        let c = g.add_node(nm("Q"));
        g.add_edge(a, nm("e"), c);
        g.add_edge(a, nm("e"), b);
        g.add_edge(a, nm("f"), b);
        assert_eq!(g.successors(a, nm("e")).len(), 2);
        assert_eq!(g.successors(a, nm("f")), vec![b]);
        assert!(g.successors(b, nm("e")).is_empty());
    }

    #[test]
    fn isomorphic_graphs_are_equiv() {
        let build = || {
            let mut g = Graph::new();
            let a = g.add_node(nm("A"));
            let b = g.add_node(nm("B"));
            let c = g.add_node(nm("B"));
            g.add_edge(a, nm("e"), b);
            g.add_edge(a, nm("e"), c);
            g.add_edge(b, nm("f"), c);
            g
        };
        assert!(build().equiv(&build()));
    }

    #[test]
    fn non_isomorphic_graphs_are_not_equiv() {
        let mut g1 = Graph::new();
        let a = g1.add_node(nm("A"));
        let b = g1.add_node(nm("A"));
        g1.add_edge(a, nm("e"), b);

        let mut g2 = Graph::new();
        let c = g2.add_node(nm("A"));
        let d = g2.add_node(nm("A"));
        g2.add_edge(c, nm("e"), c); // self loop instead
        let _ = d;
        assert!(!g1.equiv(&g2));

        // Different labels.
        let mut g3 = Graph::new();
        let e = g3.add_node(nm("A"));
        let f = g3.add_node(nm("B"));
        g3.add_edge(e, nm("e"), f);
        assert!(!g1.equiv(&g3));
    }
}
