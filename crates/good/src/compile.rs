//! Compiling GOOD programs into the tabular algebra — the executable
//! content of contribution (4): "every GOOD query can be expressed in the
//! tabular algebra".
//!
//! The route mirrors the paper's other embeddings: the object base is its
//! tabular embedding `{Node(Id,Label), Edge(Src,Lab,Dst)}`; a pattern is a
//! conjunctive query over those relations; each operation becomes an
//! `FO + while + new` fragment (node addition uses `new`, deletions use
//! difference); and the whole program is handed to the Theorem 4.1
//! compiler.
//!
//! Compiled fragment: node/edge addition, node/edge deletion, and
//! fixpoint loops whose bodies consist of edge additions (the
//! transitive-closure pattern). Abstraction needs set-creation (the
//! tabular algebra's `set-new`) and stays native —
//! [`GoodError::Untranslatable`] documents the boundary, exactly as
//! DESIGN.md §4 records it.
//!
//! One further semantic note: native node addition carries GOOD's
//! no-duplicate guard (skip when an equally-labeled node with the same
//! wiring exists), which also collapses *symmetric* wirings such as
//! `{member→a, member→b}` vs `{member→b, member→a}`. The compiled
//! fragment creates one node per distinct ordered key image; the two
//! agree whenever wirings determine the key (e.g. per-edge-label
//! distinct targets), which the tests pin down.

use crate::embed::{from_tabular, to_tabular};
use crate::error::{GoodError, Result};
use crate::graph::Graph;
use crate::ops::{GoodOp, GoodProgram, GoodStatement};
use crate::pattern::Pattern;
use std::collections::HashMap;
use tabular_algebra::EvalLimits;
use tabular_core::Symbol;
use tabular_relational::expr::RelExpr;
use tabular_relational::program::FoProgram;

fn var_col(v: u32) -> String {
    format!("\u{1F}g{v}")
}

fn cell(sym: Symbol) -> String {
    match sym {
        Symbol::Null => "_".to_owned(),
        Symbol::Name(i) => format!("n:{}", i.as_str()),
        Symbol::Value(i) => format!("v:{}", i.as_str()),
    }
}

/// Translate a pattern into a relational expression whose columns are the
/// pattern variables (named via [`var_col`]).
fn pattern_expr(p: &Pattern) -> Result<RelExpr> {
    let mut first: HashMap<u32, String> = HashMap::new();
    let mut equalities: Vec<(String, String)> = Vec::new();
    let mut joined: Option<RelExpr> = None;
    let push = |e: RelExpr, joined: &mut Option<RelExpr>| {
        *joined = Some(match joined.take() {
            None => e,
            Some(prev) => prev.times(e),
        });
    };

    for (i, pn) in p.nodes.iter().enumerate() {
        let id_col = format!("\u{1F}n{i}id");
        let lab_col = format!("\u{1F}n{i}lab");
        let e = RelExpr::rel("Node")
            .rename("Id", &id_col)
            .rename("Label", &lab_col)
            .select_const(&lab_col, &cell(pn.label));
        push(e, &mut joined);
        match first.get(&pn.var) {
            None => {
                first.insert(pn.var, id_col);
            }
            Some(prev) => equalities.push((prev.clone(), id_col)),
        }
    }
    for (k, &(u, lab, w)) in p.edges.iter().enumerate() {
        let s_col = format!("\u{1F}e{k}s");
        let l_col = format!("\u{1F}e{k}l");
        let d_col = format!("\u{1F}e{k}d");
        let e = RelExpr::rel("Edge")
            .rename("Src", &s_col)
            .rename("Lab", &l_col)
            .rename("Dst", &d_col)
            .select_const(&l_col, &cell(lab));
        push(e, &mut joined);
        for (v, col) in [(u, s_col), (w, d_col)] {
            match first.get(&v) {
                None => return Err(GoodError::UnknownVariable(v)),
                Some(prev) => equalities.push((prev.clone(), col)),
            }
        }
    }
    let mut e = joined.ok_or_else(|| {
        GoodError::Untranslatable("empty patterns have no tabular footprint".into())
    })?;
    for (a, b) in &equalities {
        e = e.select(a, b);
    }
    // Project down to the variable columns.
    for (&v, col) in &first {
        e = e.rename(col, &var_col(v));
    }
    let cols: Vec<String> = first.keys().map(|&v| var_col(v)).collect();
    let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    Ok(e.project(&refs))
}

/// The `Edge`-tuples an edge-addition derives, as an expression.
fn ea_expr(pattern: &Pattern, label: Symbol, from: u32, to: u32) -> Result<RelExpr> {
    for v in [from, to] {
        if !pattern.vars().contains(&v) {
            return Err(GoodError::UnknownVariable(v));
        }
    }
    let matches = pattern_expr(pattern)?;
    let base = if from == to {
        // Duplicate the single column via a self-join.
        let dup = matches
            .clone()
            .project(&[&var_col(from)])
            .rename(&var_col(from), "Dst");
        matches
            .times(dup)
            .select(&var_col(from), "Dst")
            .rename(&var_col(from), "Src")
    } else {
        matches
            .rename(&var_col(from), "Src")
            .rename(&var_col(to), "Dst")
    };
    Ok(base
        .times(RelExpr::Const {
            attr: Symbol::name("Lab"),
            value: label,
        })
        .project(&["Src", "Lab", "Dst"]))
}

fn compile_statements(stmts: &[GoodStatement], fo: &mut FoProgram, n: &mut u32) -> Result<()> {
    for stmt in stmts {
        match stmt {
            GoodStatement::Op(op) => compile_op(op, fo, n)?,
            GoodStatement::Loop(body) => {
                // Compiled fragment: bodies of edge additions only — the
                // monotone case, where the loop is a plain fixpoint.
                let mut exprs: Vec<RelExpr> = Vec::new();
                for s in body {
                    match s {
                        GoodStatement::Op(GoodOp::EdgeAddition {
                            pattern,
                            label,
                            from,
                            to,
                        }) => exprs.push(ea_expr(pattern, *label, *from, *to)?),
                        _ => {
                            return Err(GoodError::Untranslatable(
                                "loops compile only with edge-addition bodies".into(),
                            ))
                        }
                    }
                }
                let union = exprs
                    .into_iter()
                    .reduce(RelExpr::union)
                    .ok_or_else(|| GoodError::Untranslatable("empty loop body".into()))?;
                *n += 1;
                let derived = format!("\u{1F}gder{n}");
                let delta = format!("\u{1F}gdelta{n}");
                let step = |p: FoProgram| {
                    p.assign(&derived, union.clone())
                        .assign(&delta, RelExpr::rel(&derived).minus(RelExpr::rel("Edge")))
                        .assign("Edge", RelExpr::rel("Edge").union(RelExpr::rel(&delta)))
                };
                let mut program = std::mem::take(fo);
                program = step(program);
                let body_fo = step(FoProgram::new());
                *fo = program.while_nonempty(&delta, body_fo);
            }
        }
    }
    Ok(())
}

fn compile_op(op: &GoodOp, fo: &mut FoProgram, n: &mut u32) -> Result<()> {
    let program = std::mem::take(fo);
    *fo = match op {
        GoodOp::EdgeAddition {
            pattern,
            label,
            from,
            to,
        } => {
            let new_edges = ea_expr(pattern, *label, *from, *to)?;
            program.assign("Edge", RelExpr::rel("Edge").union(new_edges))
        }
        GoodOp::EdgeDeletion {
            pattern,
            from,
            label,
            to,
        } => {
            let dead = ea_expr(pattern, *label, *from, *to)?;
            program.assign("Edge", RelExpr::rel("Edge").minus(dead))
        }
        GoodOp::NodeDeletion { pattern, target } => {
            if !pattern.vars().contains(target) {
                return Err(GoodError::UnknownVariable(*target));
            }
            let doomed = pattern_expr(pattern)?
                .project(&[&var_col(*target)])
                .rename(&var_col(*target), "Doom");
            *n += 1;
            let doom = format!("\u{1F}gdoom{n}");
            let dead_nodes = RelExpr::rel("Node")
                .times(RelExpr::rel(&doom))
                .select("Id", "Doom")
                .project(&["Id", "Label"]);
            let dead_src = RelExpr::rel("Edge")
                .times(RelExpr::rel(&doom))
                .select("Src", "Doom")
                .project(&["Src", "Lab", "Dst"]);
            let dead_dst = RelExpr::rel("Edge")
                .times(RelExpr::rel(&doom))
                .select("Dst", "Doom")
                .project(&["Src", "Lab", "Dst"]);
            program
                .assign(&doom, doomed)
                .assign("Node", RelExpr::rel("Node").minus(dead_nodes))
                .assign("Edge", RelExpr::rel("Edge").minus(dead_src.union(dead_dst)))
        }
        GoodOp::NodeAddition {
            pattern,
            label,
            edges,
            key,
        } => {
            let key_vars: Vec<u32> = if key.is_empty() {
                let mut vs: Vec<u32> = edges.iter().map(|&(_, v)| v).collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            } else {
                key.clone()
            };
            for v in edges
                .iter()
                .map(|&(_, v)| v)
                .chain(key_vars.iter().copied())
            {
                if !pattern.vars().contains(&v) {
                    return Err(GoodError::UnknownVariable(v));
                }
            }
            let key_cols: Vec<String> = key_vars.iter().map(|&v| var_col(v)).collect();
            let key_refs: Vec<&str> = key_cols.iter().map(String::as_str).collect();
            let keyed = pattern_expr(pattern)?.project(&key_refs);
            *n += 1;
            let keys_rel = format!("\u{1F}gkeys{n}");
            let tagged = format!("\u{1F}gtagged{n}");
            let mut p = program.assign(&keys_rel, keyed);
            p = p.new_ids(&tagged, &keys_rel, "NewId");
            // New nodes.
            let new_nodes = RelExpr::rel(&tagged)
                .project(&["NewId"])
                .rename("NewId", "Id")
                .times(RelExpr::Const {
                    attr: Symbol::name("Label"),
                    value: *label,
                })
                .project(&["Id", "Label"]);
            p = p.assign("Node", RelExpr::rel("Node").union(new_nodes));
            // New edges per specification.
            for &(lab, v) in edges {
                let new_edges = RelExpr::rel(&tagged)
                    .project(&["NewId", &var_col(v)])
                    .rename("NewId", "Src")
                    .rename(&var_col(v), "Dst")
                    .times(RelExpr::Const {
                        attr: Symbol::name("Lab"),
                        value: lab,
                    })
                    .project(&["Src", "Lab", "Dst"]);
                p = p.assign("Edge", RelExpr::rel("Edge").union(new_edges));
            }
            p
        }
        GoodOp::Abstraction { .. } => {
            return Err(GoodError::Untranslatable(
                "abstraction needs set-creation (TA's set-new); use the native evaluator".into(),
            ))
        }
    };
    Ok(())
}

/// Compile a GOOD program into `FO + while + new` over the `Node`/`Edge`
/// embedding. See the module docs for the compiled fragment.
pub fn compile_good(p: &GoodProgram) -> Result<FoProgram> {
    let mut fo = FoProgram::new();
    let mut n = 0u32;
    compile_statements(&p.statements, &mut fo, &mut n)?;
    Ok(fo)
}

/// Run a GOOD program *through the tabular algebra*: embed the graph,
/// compile to FO (this module) and then to TA (Theorem 4.1), run the TA
/// interpreter, and decode the resulting object base.
pub fn run_via_ta(p: &GoodProgram, g: &Graph, limits: &EvalLimits) -> Result<Graph> {
    run_via_ta_governed(p, g, &tabular_algebra::Budget::from_limits(limits))
}

/// Like [`run_via_ta`], but governed by a [`tabular_algebra::Budget`]:
/// the compiled TA run honors the budget's deadline, run-cell allowance,
/// and cancellation token.
pub fn run_via_ta_governed(
    p: &GoodProgram,
    g: &Graph,
    budget: &tabular_algebra::Budget,
) -> Result<Graph> {
    let fo = compile_good(p)?;
    let db = to_tabular(g);
    let rel_db = tabular_relational::relation::RelDatabase::from_tabular(
        &db,
        &[Symbol::name("Node"), Symbol::name("Edge")],
    )?;
    let (out, _, _) = tabular_relational::compile::run_compiled_governed(
        &fo,
        &rel_db,
        &["Node", "Edge"],
        budget,
    )?;
    let out_db = out.to_tabular();
    from_tabular(&out_db)
}

/// Like [`run_via_ta_governed`], but the compiled TA program goes
/// through the cost-based planner (`tabular_algebra::plan`) before
/// evaluation; returns the decoded graph together with the planner's
/// decision report for the compiled `Node`/`Edge` program.
pub fn run_via_ta_planned(
    p: &GoodProgram,
    g: &Graph,
    budget: &tabular_algebra::Budget,
) -> Result<(Graph, tabular_algebra::PlanReport)> {
    let fo = compile_good(p)?;
    let db = to_tabular(g);
    let rel_db = tabular_relational::relation::RelDatabase::from_tabular(
        &db,
        &[Symbol::name("Node"), Symbol::name("Edge")],
    )?;
    let (out, _, _, report) =
        tabular_relational::compile::run_compiled_planned(&fo, &rel_db, &["Node", "Edge"], budget)?;
    let out_db = out.to_tabular();
    Ok((from_tabular(&out_db)?, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn family() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(nm("Person"));
        let b = g.add_node(nm("Person"));
        let c = g.add_node(nm("Person"));
        g.add_edge(a, nm("parent"), b);
        g.add_edge(b, nm("parent"), c);
        g
    }

    fn agree(p: &GoodProgram, g: &Graph) {
        let native = p.run(g, 1000).expect("native run");
        let via_ta = run_via_ta(p, g, &EvalLimits::default()).expect("TA run");
        assert!(
            native.equiv(&via_ta),
            "native ({} nodes, {} edges) vs TA ({} nodes, {} edges)",
            native.node_count(),
            native.edge_count(),
            via_ta.node_count(),
            via_ta.edge_count()
        );
    }

    #[test]
    fn edge_addition_agrees() {
        let p = GoodProgram::new().op(GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "parent", 1)
                .edge(1, "parent", 2),
            label: nm("grandparent"),
            from: 0,
            to: 2,
        });
        agree(&p, &family());
    }

    #[test]
    fn planned_run_agrees_and_rewrites_pattern_joins() {
        // A two-edge pattern compiles to a chain of scratch products;
        // the planned path must agree with the native run and report
        // planner rewrites on those shapes.
        let p = GoodProgram::new().op(GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "parent", 1)
                .edge(1, "parent", 2),
            label: nm("grandparent"),
            from: 0,
            to: 2,
        });
        let g = family();
        let native = p.run(&g, 1000).expect("native run");
        let budget = tabular_algebra::Budget::from_limits(&EvalLimits::default());
        let (planned, report) = run_via_ta_planned(&p, &g, &budget).expect("planned TA run");
        assert!(native.equiv(&planned), "planned TA path diverged");
        assert!(report.rules_applied() >= 1, "pattern joins rewrite");
    }

    #[test]
    fn edge_deletion_agrees() {
        let p = GoodProgram::new().op(GoodOp::EdgeDeletion {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .edge(0, "parent", 1),
            from: 0,
            label: nm("parent"),
            to: 1,
        });
        agree(&p, &family());
    }

    #[test]
    fn node_deletion_agrees() {
        let p = GoodProgram::new().op(GoodOp::NodeDeletion {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "parent", 1)
                .edge(1, "parent", 2),
            target: 1,
        });
        agree(&p, &family());
    }

    #[test]
    fn node_addition_agrees_up_to_iso() {
        let p = GoodProgram::new().op(GoodOp::NodeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .edge(0, "parent", 1),
            label: nm("Parenthood"),
            edges: vec![(nm("of"), 0), (nm("child"), 1)],
            key: vec![],
        });
        agree(&p, &family());
    }

    #[test]
    fn self_edge_addition_agrees() {
        let p = GoodProgram::new().op(GoodOp::EdgeAddition {
            pattern: Pattern::new().node(0, "Person"),
            label: nm("selfie"),
            from: 0,
            to: 0,
        });
        agree(&p, &family());
    }

    #[test]
    fn fixpoint_loop_agrees_on_transitive_closure() {
        let seed = GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .edge(0, "parent", 1),
            label: nm("ancestor"),
            from: 0,
            to: 1,
        };
        let extend = GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "ancestor", 1)
                .edge(1, "ancestor", 2),
            label: nm("ancestor"),
            from: 0,
            to: 2,
        };
        let p = GoodProgram::new()
            .op(seed)
            .fixpoint(GoodProgram::new().op(extend));
        agree(&p, &family());
    }

    #[test]
    fn sequenced_operations_agree() {
        // Derive grandparent edges, then delete the middle generation.
        let p = GoodProgram::new()
            .op(GoodOp::EdgeAddition {
                pattern: Pattern::new()
                    .node(0, "Person")
                    .node(1, "Person")
                    .node(2, "Person")
                    .edge(0, "parent", 1)
                    .edge(1, "parent", 2),
                label: nm("grandparent"),
                from: 0,
                to: 2,
            })
            .op(GoodOp::NodeDeletion {
                pattern: Pattern::new()
                    .node(0, "Person")
                    .node(1, "Person")
                    .node(2, "Person")
                    .edge(0, "parent", 1)
                    .edge(1, "parent", 2),
                target: 1,
            });
        agree(&p, &family());
    }

    #[test]
    fn abstraction_is_outside_the_compiled_fragment() {
        let p = GoodProgram::new().op(GoodOp::Abstraction {
            node_label: nm("Paper"),
            via: nm("about"),
            label: nm("Area"),
            link: nm("contains"),
        });
        assert!(matches!(
            compile_good(&p),
            Err(GoodError::Untranslatable(_))
        ));
    }

    #[test]
    fn loops_with_non_ea_bodies_are_rejected() {
        let p = GoodProgram::new().fixpoint(GoodProgram::new().op(GoodOp::NodeDeletion {
            pattern: Pattern::new().node(0, "Person"),
            target: 0,
        }));
        assert!(matches!(
            compile_good(&p),
            Err(GoodError::Untranslatable(_))
        ));
    }
}
