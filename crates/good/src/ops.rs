//! The five GOOD operations and GOOD programs.
//!
//! Each operation is driven by the embeddings of a pattern:
//!
//! * **node addition (NA)** — one new node per distinct image of the
//!   designated *key* variables, wired to those images by the specified
//!   edges; guarded so that re-running is a no-op (the guard is what makes
//!   GOOD fixpoint loops terminate);
//! * **edge addition (EA)** — an edge between two images per embedding;
//! * **node deletion (ND)** — delete the images of a designated variable;
//! * **edge deletion (ED)** — delete the matched edge instances;
//! * **abstraction (AB)** — one new node per equivalence class of nodes
//!   sharing the same `via`-successor set, linked to the class members
//!   (the set-creating operation, mirroring the tabular algebra's
//!   set-new).
//!
//! Programs are sequences of operations plus a `Loop` construct iterating
//! its body until the graph stops changing.

use crate::error::{GoodError, Result};
use crate::graph::Graph;
use crate::pattern::Pattern;
use tabular_core::Symbol;

/// One GOOD operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GoodOp {
    /// Node addition.
    NodeAddition {
        /// Match pattern.
        pattern: Pattern,
        /// Label of the created nodes.
        label: Symbol,
        /// Edges from the new node: `(edge label, pattern variable)`.
        edges: Vec<(Symbol, u32)>,
        /// Key variables: one node per distinct image of these (defaults
        /// to the variables referenced by `edges` when empty).
        key: Vec<u32>,
    },
    /// Edge addition.
    EdgeAddition {
        /// Match pattern.
        pattern: Pattern,
        /// New edge label.
        label: Symbol,
        /// Source variable.
        from: u32,
        /// Target variable.
        to: u32,
    },
    /// Node deletion.
    NodeDeletion {
        /// Match pattern.
        pattern: Pattern,
        /// Variable whose images are deleted.
        target: u32,
    },
    /// Edge deletion.
    EdgeDeletion {
        /// Match pattern.
        pattern: Pattern,
        /// Source variable.
        from: u32,
        /// Edge label to delete.
        label: Symbol,
        /// Target variable.
        to: u32,
    },
    /// Abstraction.
    Abstraction {
        /// Label of the nodes being abstracted.
        node_label: Symbol,
        /// Edge label whose successor sets define the equivalence.
        via: Symbol,
        /// Label of the created class nodes.
        label: Symbol,
        /// Edge label from class node to members.
        link: Symbol,
    },
}

/// A statement: an operation or a loop-to-fixpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GoodStatement {
    /// Apply one operation.
    Op(GoodOp),
    /// Iterate the body until the graph stops changing.
    Loop(Vec<GoodStatement>),
}

/// A GOOD program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GoodProgram {
    /// Statements in order.
    pub statements: Vec<GoodStatement>,
}

impl GoodProgram {
    /// Empty program.
    pub fn new() -> GoodProgram {
        GoodProgram::default()
    }

    /// Builder: append an operation.
    pub fn op(mut self, op: GoodOp) -> GoodProgram {
        self.statements.push(GoodStatement::Op(op));
        self
    }

    /// Builder: append a fixpoint loop.
    pub fn fixpoint(mut self, body: GoodProgram) -> GoodProgram {
        self.statements.push(GoodStatement::Loop(body.statements));
        self
    }

    /// Run the program. `max_iters` bounds every loop.
    pub fn run(&self, g: &Graph, max_iters: usize) -> Result<Graph> {
        let mut graph = g.clone();
        run_statements(&self.statements, &mut graph, max_iters)?;
        Ok(graph)
    }
}

fn run_statements(stmts: &[GoodStatement], g: &mut Graph, max_iters: usize) -> Result<()> {
    for stmt in stmts {
        match stmt {
            GoodStatement::Op(op) => apply(op, g)?,
            GoodStatement::Loop(body) => {
                let mut iters = 0usize;
                loop {
                    let before = (g.node_count(), g.edge_count(), g.edges().to_vec());
                    run_statements(body, g, max_iters)?;
                    let after = (g.node_count(), g.edge_count(), g.edges().to_vec());
                    if before == after {
                        break;
                    }
                    iters += 1;
                    if iters > max_iters {
                        return Err(GoodError::FixpointLimit(max_iters));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Apply one operation in place.
pub fn apply(op: &GoodOp, g: &mut Graph) -> Result<()> {
    match op {
        GoodOp::NodeAddition {
            pattern,
            label,
            edges,
            key,
        } => {
            let key_vars: Vec<u32> = if key.is_empty() {
                let mut vs: Vec<u32> = edges.iter().map(|&(_, v)| v).collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            } else {
                key.clone()
            };
            for v in edges
                .iter()
                .map(|&(_, v)| v)
                .chain(key_vars.iter().copied())
            {
                if !pattern.vars().contains(&v) {
                    return Err(GoodError::UnknownVariable(v));
                }
            }
            // Distinct key images, in embedding order.
            let mut seen: Vec<Vec<Symbol>> = Vec::new();
            for emb in pattern.embeddings(g) {
                let image: Vec<Symbol> = key_vars.iter().map(|v| emb[v]).collect();
                if seen.contains(&image) {
                    continue;
                }
                seen.push(image);
                // The wiring the new node would get.
                let wiring: Vec<(Symbol, Symbol)> =
                    edges.iter().map(|&(l, v)| (l, emb[&v])).collect();
                // Guard: skip if an equally-labeled node with exactly this
                // wiring already exists (GOOD's no-duplicate semantics,
                // which makes fixpoint loops terminate).
                let exists = g.nodes_labeled(*label).into_iter().any(|n| {
                    let mut out: Vec<(Symbol, Symbol)> = g
                        .edges()
                        .iter()
                        .filter(|&&(s, _, _)| s == n)
                        .map(|&(_, l, d)| (l, d))
                        .collect();
                    out.sort();
                    let mut want = wiring.clone();
                    want.sort();
                    out == want
                });
                if exists {
                    continue;
                }
                let new = g.add_node(*label);
                for (l, target) in wiring {
                    g.add_edge(new, l, target);
                }
            }
            Ok(())
        }
        GoodOp::EdgeAddition {
            pattern,
            label,
            from,
            to,
        } => {
            for v in [from, to] {
                if !pattern.vars().contains(v) {
                    return Err(GoodError::UnknownVariable(*v));
                }
            }
            let additions: Vec<(Symbol, Symbol)> = pattern
                .embeddings(g)
                .into_iter()
                .map(|emb| (emb[from], emb[to]))
                .collect();
            for (s, d) in additions {
                g.add_edge(s, *label, d);
            }
            Ok(())
        }
        GoodOp::NodeDeletion { pattern, target } => {
            if !pattern.vars().contains(target) {
                return Err(GoodError::UnknownVariable(*target));
            }
            let doomed: Vec<Symbol> = pattern
                .embeddings(g)
                .into_iter()
                .map(|emb| emb[target])
                .collect();
            for id in doomed {
                g.delete_node(id);
            }
            Ok(())
        }
        GoodOp::EdgeDeletion {
            pattern,
            from,
            label,
            to,
        } => {
            for v in [from, to] {
                if !pattern.vars().contains(v) {
                    return Err(GoodError::UnknownVariable(*v));
                }
            }
            let doomed: Vec<(Symbol, Symbol)> = pattern
                .embeddings(g)
                .into_iter()
                .map(|emb| (emb[from], emb[to]))
                .collect();
            for (s, d) in doomed {
                g.delete_edge(s, *label, d);
            }
            Ok(())
        }
        GoodOp::Abstraction {
            node_label,
            via,
            label,
            link,
        } => {
            // Group the node_label-nodes by their via-successor sets.
            let mut classes: Vec<(Vec<Symbol>, Vec<Symbol>)> = Vec::new();
            for n in g.nodes_labeled(*node_label) {
                let key = g.successors(n, *via);
                match classes.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(n),
                    None => classes.push((key, vec![n])),
                }
            }
            for (_, members) in classes {
                // Guard: an existing class node already linking exactly
                // these members?
                let exists = g.nodes_labeled(*label).into_iter().any(|c| {
                    let mut linked = g.successors(c, *link);
                    linked.sort();
                    let mut want = members.clone();
                    want.sort();
                    linked == want
                });
                if exists {
                    continue;
                }
                let class = g.add_node(*label);
                for m in members {
                    g.add_edge(class, *link, m);
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn family() -> (Graph, Symbol, Symbol, Symbol) {
        let mut g = Graph::new();
        let a = g.add_node(nm("Person"));
        let b = g.add_node(nm("Person"));
        let c = g.add_node(nm("Person"));
        g.add_edge(a, nm("parent"), b);
        g.add_edge(b, nm("parent"), c);
        (g, a, b, c)
    }

    fn grandparent_pattern() -> Pattern {
        Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .node(2, "Person")
            .edge(0, "parent", 1)
            .edge(1, "parent", 2)
    }

    #[test]
    fn edge_addition_derives_grandparent() {
        let (g, a, _, c) = family();
        let p = GoodProgram::new().op(GoodOp::EdgeAddition {
            pattern: grandparent_pattern(),
            label: nm("grandparent"),
            from: 0,
            to: 2,
        });
        let out = p.run(&g, 100).unwrap();
        assert!(out.has_edge(a, nm("grandparent"), c));
        assert_eq!(out.edge_count(), 3);
    }

    #[test]
    fn node_addition_creates_one_node_per_key_image() {
        // A "Parenthood" object per (parent, child) pair.
        let (g, ..) = family();
        let pattern = Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .edge(0, "parent", 1);
        let p = GoodProgram::new().op(GoodOp::NodeAddition {
            pattern,
            label: nm("Parenthood"),
            edges: vec![(nm("of"), 0), (nm("child"), 1)],
            key: vec![],
        });
        let out = p.run(&g, 100).unwrap();
        assert_eq!(out.nodes_labeled(nm("Parenthood")).len(), 2);
        assert_eq!(out.edge_count(), 2 + 4);
    }

    #[test]
    fn node_addition_is_idempotent() {
        let (g, ..) = family();
        let pattern = Pattern::new().node(0, "Person");
        let op = GoodOp::NodeAddition {
            pattern,
            label: nm("Tag"),
            edges: vec![(nm("tags"), 0)],
            key: vec![],
        };
        let p = GoodProgram::new().op(op.clone()).op(op);
        let out = p.run(&g, 100).unwrap();
        assert_eq!(out.nodes_labeled(nm("Tag")).len(), 3);
    }

    #[test]
    fn node_deletion_removes_images_and_edges() {
        let (g, _, b, _) = family();
        // Delete every person with a parent edge in *and* out (the middle
        // generation).
        let pattern = Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .node(2, "Person")
            .edge(0, "parent", 1)
            .edge(1, "parent", 2);
        let p = GoodProgram::new().op(GoodOp::NodeDeletion { pattern, target: 1 });
        let out = p.run(&g, 100).unwrap();
        assert_eq!(out.node_count(), 2);
        assert_eq!(out.edge_count(), 0);
        assert!(out.label_of(b).is_none());
    }

    #[test]
    fn edge_deletion_removes_matched_edges_only() {
        let (g, a, b, _) = family();
        let pattern = Pattern::new()
            .node(0, "Person")
            .node(1, "Person")
            .edge(0, "parent", 1);
        // Delete only the edges out of nodes that themselves have a parent
        // edge pointing at them — i.e. b → c.
        let pattern = pattern.node(2, "Person").edge(2, "parent", 0);
        let p = GoodProgram::new().op(GoodOp::EdgeDeletion {
            pattern,
            from: 0,
            label: nm("parent"),
            to: 1,
        });
        let out = p.run(&g, 100).unwrap();
        assert_eq!(out.edge_count(), 1);
        assert!(out.has_edge(a, nm("parent"), b));
    }

    #[test]
    fn abstraction_groups_by_neighborhood() {
        let mut g = Graph::new();
        let t1 = g.add_node(nm("Topic"));
        let t2 = g.add_node(nm("Topic"));
        let p1 = g.add_node(nm("Paper"));
        let p2 = g.add_node(nm("Paper"));
        let p3 = g.add_node(nm("Paper"));
        g.add_edge(p1, nm("about"), t1);
        g.add_edge(p2, nm("about"), t1);
        g.add_edge(p3, nm("about"), t2);
        let p = GoodProgram::new().op(GoodOp::Abstraction {
            node_label: nm("Paper"),
            via: nm("about"),
            label: nm("Area"),
            link: nm("contains"),
        });
        let out = p.run(&g, 100).unwrap();
        // Two classes: {p1, p2} (about t1) and {p3} (about t2).
        let areas = out.nodes_labeled(nm("Area"));
        assert_eq!(areas.len(), 2);
        let sizes: Vec<usize> = areas
            .iter()
            .map(|&a| out.successors(a, nm("contains")).len())
            .collect();
        let mut sizes = sizes;
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn fixpoint_loop_computes_transitive_closure() {
        // ancestor edges: seed with parent, extend until fixpoint.
        let (g, a, _, c) = family();
        let seed = GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .edge(0, "parent", 1),
            label: nm("ancestor"),
            from: 0,
            to: 1,
        };
        let extend = GoodOp::EdgeAddition {
            pattern: Pattern::new()
                .node(0, "Person")
                .node(1, "Person")
                .node(2, "Person")
                .edge(0, "ancestor", 1)
                .edge(1, "ancestor", 2),
            label: nm("ancestor"),
            from: 0,
            to: 2,
        };
        let p = GoodProgram::new()
            .op(seed)
            .fixpoint(GoodProgram::new().op(extend));
        let out = p.run(&g, 100).unwrap();
        assert!(out.has_edge(a, nm("ancestor"), c));
        // parent(2) + ancestor(3)
        assert_eq!(out.edge_count(), 5);
    }

    #[test]
    fn diverging_loop_hits_the_limit() {
        // NA keyed on *all* nodes of a label that itself creates: each
        // round adds a node of the matched label, so the loop never
        // stabilizes.
        let mut g = Graph::new();
        g.add_node(nm("Seed"));
        let grower = GoodOp::NodeAddition {
            pattern: Pattern::new().node(0, "Seed"),
            label: nm("Seed"),
            edges: vec![(nm("from"), 0)],
            key: vec![0],
        };
        let p = GoodProgram::new().fixpoint(GoodProgram::new().op(grower));
        assert!(matches!(p.run(&g, 5), Err(GoodError::FixpointLimit(5))));
    }

    #[test]
    fn unknown_variables_are_reported() {
        let (g, ..) = family();
        let bad = GoodOp::EdgeAddition {
            pattern: Pattern::new().node(0, "Person"),
            label: nm("x"),
            from: 0,
            to: 9,
        };
        assert!(matches!(
            GoodProgram::new().op(bad).run(&g, 10),
            Err(GoodError::UnknownVariable(9))
        ));
    }
}
