//! # tabular-good
//!
//! The **GOOD** graph-oriented object database model (Gyssens, Paredaens &
//! Van Gucht, PODS 1990) and its embedding into the tabular model —
//! contribution (4) of *Tables as a Paradigm for Querying and
//! Restructuring* (PODS 1996): "the graph-based object-oriented data model
//! GOOD can be embedded within the tabular database model; in particular,
//! every GOOD query can be expressed in the tabular algebra."
//!
//! * [`graph`] — object bases: directed graphs with labeled nodes
//!   (objects) and edges, object identities as first-class symbols;
//! * [`pattern`] — patterns and their embeddings (graph homomorphisms);
//! * [`ops`] — the five GOOD operations (node/edge addition, node/edge
//!   deletion, abstraction) and programs with fixpoint loops;
//! * [`embed`] — the lossless embedding `Graph ↔ {Node(Id,Label),
//!   Edge(Src,Lab,Dst)}` into the tabular model;
//! * [`compile`] — compilation of GOOD programs into `FO + while + new`
//!   and thence (Theorem 4.1) into the tabular algebra; abstraction, the
//!   set-creating operation, stays native (it corresponds to TA's
//!   exponential `set-new`).
//!
//! ```
//! use tabular_good::{graph::Graph, ops::{GoodOp, GoodProgram}, pattern::Pattern};
//! use tabular_core::Symbol;
//!
//! let mut g = Graph::new();
//! let a = g.add_node(Symbol::name("Person"));
//! let b = g.add_node(Symbol::name("Person"));
//! g.add_edge(a, Symbol::name("parent"), b);
//!
//! let derive = GoodProgram::new().op(GoodOp::EdgeAddition {
//!     pattern: Pattern::new().node(0, "Person").node(1, "Person").edge(0, "parent", 1),
//!     label: Symbol::name("child_of"),
//!     from: 1,
//!     to: 0,
//! });
//! let out = derive.run(&g, 100).unwrap();
//! assert!(out.has_edge(b, Symbol::name("child_of"), a));
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod embed;
pub mod error;
pub mod graph;
pub mod ops;
pub mod pattern;

pub use compile::{compile_good, run_via_ta};
pub use embed::{from_tabular, to_tabular};
pub use error::GoodError;
pub use graph::Graph;
pub use ops::{GoodOp, GoodProgram, GoodStatement};
pub use pattern::{Embedding, Pattern};
