//! Integration tests for the query service, over real sockets and
//! through the epoll reactor.
//!
//! The contracts under test: sessions are isolated; a client
//! disconnect cancels its in-flight run (reactor `EPOLLRDHUP`/EOF, no
//! watcher thread); a deadline trip answers 408 with the partial
//! stats the governor carries; malformed bodies are the client's
//! error (400), never the server's (500); chunked transfer encoding
//! is refused with 501; pipelined requests are answered in order even
//! past the pipeline and byte backpressure caps; a client that
//! half-closes after a burst still gets its queued responses; and one
//! slow-loris connection cannot stall other clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tabular_server::{json, Config, Server, Service, MAX_BUF, MAX_PIPELINE};

fn start(
    default_deadline_ms: Option<u64>,
    default_cell_budget: Option<usize>,
) -> (SocketAddr, Arc<Service>) {
    let config = Config {
        addr: "127.0.0.1:0".into(),
        default_deadline_ms,
        default_cell_budget,
        workers: 0,
    };
    Server::bind(config).unwrap().spawn().unwrap()
}

/// Read one HTTP response from a keep-alive stream: status line,
/// headers, content-length body.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).into_owned())
}

/// One-shot HTTP exchange (`connection: close`); returns status + body.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn open_session(addr: SocketAddr) -> String {
    let (status, body) = http(addr, "POST", "/sessions", "");
    assert_eq!(status, 201, "{body}");
    json::parse(&body)
        .unwrap()
        .get("session")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn upload(addr: SocketAddr, session: &str, csv: &str) {
    let (status, body) = http(addr, "POST", &format!("/sessions/{session}/tables"), csv);
    assert_eq!(status, 201, "{body}");
}

fn query_body(program: &str) -> String {
    format!("{{\"program\": \"{}\"}}", json::escape(program))
}

#[test]
fn sessions_are_isolated_and_commits_persist() {
    let (addr, _) = start(None, None);
    let a = open_session(addr);
    let b = open_session(addr);
    assert_ne!(a, b);
    upload(addr, &a, "Secret,X\nr,only-in-a\n");
    upload(addr, &b, "Other,Y\nr,only-in-b\n");

    // A mutating query in session A commits; session B never sees it.
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{a}/query"),
        &query_body("T <- COPY(Secret)"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("only-in-a"), "{body}");
    assert!(
        !body.contains("only-in-b"),
        "session A saw session B: {body}"
    );

    // The committed T is visible to a later query in A …
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{a}/query"),
        &query_body("U <- COPY(T)"),
    );
    assert_eq!(status, 200, "commit persisted: {body}");
    assert!(body.contains("\"name\":\"U\""), "{body}");

    // … but not to session B, where the same program cannot resolve T.
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{b}/query"),
        &query_body("U <- COPY(T)"),
    );
    assert_eq!(status, 200, "COPY of an absent table matches nothing");
    assert!(!body.contains("only-in-a"), "isolation broken: {body}");

    // readonly=1 skips the commit.
    let (status, _) = http(
        addr,
        "POST",
        &format!("/sessions/{b}/query?readonly=1"),
        &query_body("V <- COPY(Other)"),
    );
    assert_eq!(status, 200);
    let (_, body) = http(
        addr,
        "POST",
        &format!("/sessions/{b}/query"),
        &query_body("W2 <- COPY(V)"),
    );
    assert!(
        !body.contains("\"name\":\"V\""),
        "readonly run leaked a commit: {body}"
    );

    // Closing a session 404s further use.
    let (status, _) = http(addr, "DELETE", &format!("/sessions/{a}"), "");
    assert_eq!(status, 204);
    let (status, _) = http(
        addr,
        "POST",
        &format!("/sessions/{a}/query"),
        &query_body("T <- COPY(X)"),
    );
    assert_eq!(status, 404);
}

#[test]
fn disconnect_mid_run_cancels_the_query() {
    let (addr, service) = start(None, None);
    let session = open_session(addr);
    // Spin tables sized so the run cannot finish before the client
    // vanishes: the A/B swap keeps every iteration executing (no delta
    // skip), and the 250k-row PRODUCT rebuilt each iteration makes the
    // full 10_000-iteration run take minutes, not milliseconds.
    let mut rows = String::new();
    for i in 0..500 {
        rows.push_str(&format!("r{i},v{i}\n"));
    }
    upload(addr, &session, &format!("A,X\n{rows}"));
    upload(addr, &session, &format!("B,Y\n{rows}"));
    upload(addr, &session, "W,K\ngo,1\n");

    let body = query_body(
        "while W do
           T <- PRODUCT(A, B)
           S <- COPY(A)
           A <- COPY(B)
           B <- COPY(S)
         end",
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /sessions/{session}/query HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    stream.flush().unwrap();
    // Let the run get admitted, then vanish without reading the answer.
    std::thread::sleep(Duration::from_millis(60));
    drop(stream);

    let deadline = Instant::now() + Duration::from_secs(10);
    while service.counters.disconnect_cancels.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the run"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The reactor trips the token before the run unwinds; the trip is
    // only counted once the (doomed) response renders, so keep polling.
    while service.counters.budget_trips.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "cancelled run never surfaced as a budget trip"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The stats route reports the cancellation.
    let (status, body) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = json::parse(&body).unwrap();
    assert!(
        stats.get("disconnect_cancels").unwrap().as_num().unwrap() >= 1.0,
        "{body}"
    );
}

#[test]
fn deadline_trip_answers_408_with_partial_stats() {
    // Server-wide default deadline of 0: every admission trips at once.
    let (addr, _) = start(Some(0), None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\n");
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query?trace=spans"),
        &query_body("T <- TRANSPOSE(A)"),
    );
    assert_eq!(status, 408, "{body}");
    let parsed = json::parse(&body).expect("partial report is well-formed JSON");
    let result = &parsed.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        result.get("resource").unwrap().as_str(),
        Some("wall-clock deadline (ms)")
    );
    assert!(
        result.get("stats").is_some(),
        "partial stats attached: {body}"
    );
    assert!(
        result.get("trace").is_some(),
        "partial trace attached: {body}"
    );

    // A per-request override can lift the default: generous deadline.
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query?deadline_ms=60000"),
        &query_body("T <- TRANSPOSE(A)"),
    );
    assert_eq!(status, 200, "{body}");
}

#[test]
fn cell_budget_trip_answers_408() {
    let (addr, _) = start(None, Some(5_000));
    let session = open_session(addr);
    upload(addr, &session, "W,A\nr,w\n");
    upload(addr, &session, "G,B\nr,x\ns,y\n");
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query"),
        &query_body("while W do W <- PRODUCT(W, G) end"),
    );
    assert_eq!(status, 408, "{body}");
    let parsed = json::parse(&body).unwrap();
    let result = &parsed.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        result.get("resource").unwrap().as_str(),
        Some("run cell budget")
    );
    let stats = result.get("stats").unwrap();
    assert!(stats.get("while_iterations").unwrap().as_num().unwrap() >= 1.0);
}

#[test]
fn malformed_bodies_are_400_never_500() {
    let (addr, _) = start(None, None);
    let session = open_session(addr);
    let query_path = format!("/sessions/{session}/query");
    for (what, body) in [
        ("not JSON at all", "}{ not json"),
        ("JSON without a program", "{\"nope\": 1}"),
        ("non-string programs", "{\"programs\": [1, 2]}"),
        ("empty programs", "{\"programs\": []}"),
        ("unparsable program", "{\"program\": \"T <- NOPE(A)\"}"),
        ("truncated program", "{\"program\": \"T <- SWITCH[((((\"}"),
        ("invalid UTF-8-ish escape", "{\"program\": \"\\ud800\"}"),
    ] {
        let (status, resp) = http(addr, "POST", &query_path, body);
        assert_eq!(status, 400, "{what}: {resp}");
        assert!(
            json::parse(&resp).is_ok(),
            "{what}: error body is JSON: {resp}"
        );
    }
    // Bad admission overrides are also the client's error.
    let (status, _) = http(
        addr,
        "POST",
        &format!("{query_path}?deadline_ms=soon"),
        "{\"program\": \"T <- COPY(A)\"}",
    );
    assert_eq!(status, 400);
    // Bad CSV uploads too.
    let (status, _) = http(addr, "POST", &format!("/sessions/{session}/tables"), "");
    assert_eq!(status, 400);
    // Unknown sessions are 404, unknown routes 404, bad methods 405.
    let (status, _) = http(
        addr,
        "POST",
        "/sessions/s999/query",
        "{\"program\": \"T <- COPY(A)\"}",
    );
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "PUT", "/sessions", "");
    assert_eq!(status, 405);
    // A garbage request line closes with 400, not a hung or dead server.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"%%%\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw:?}");
    // And the server is still alive afterwards.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
}

#[test]
fn multi_program_requests_split_the_budget_and_run_readonly() {
    let (addr, _) = start(None, None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\ns,b\n");
    let body = "{\"programs\": [\"T <- COPY(A)\", \"U <- TRANSPOSE(A)\", \"V <- PRODUCT(A, A)\"]}";
    let (status, resp) = http(addr, "POST", &format!("/sessions/{session}/query"), body);
    assert_eq!(status, 200, "{resp}");
    let parsed = json::parse(&resp).unwrap();
    let results = parsed.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 3);
    for r in results {
        assert_eq!(r.get("ok"), Some(&json::Json::Bool(true)), "{resp}");
    }
    // Read-only: none of T/U/V was committed to the session.
    let (_, resp) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query"),
        &query_body("Z <- COPY(T)"),
    );
    assert!(!resp.contains("\"name\":\"Z\",\"height\":2"), "{resp}");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (addr, service) = start(None, None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\n");

    // Send a pipelined burst — several complete requests in one write,
    // no reads in between. Each query commits a distinctly named table
    // so the responses are distinguishable.
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut burst = String::new();
    for i in 0..5 {
        let body = query_body(&format!("Pipe{i} <- COPY(A)"));
        burst.push_str(&format!(
            "POST /sessions/{session}/query HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();

    for i in 0..5 {
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i}: {body}");
        assert!(
            body.contains(&format!("\"name\":\"Pipe{i}\"")),
            "response {i} out of order: {body}"
        );
    }
    // The commits landed in request order: the last state holds Pipe4.
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query"),
        &query_body("Z <- COPY(Pipe4)"),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"Z\",\"height\":1"), "{body}");
    // And the reactor observed the burst as pipelining.
    assert!(
        service.counters.pipelined_requests.load(Ordering::Relaxed) >= 1,
        "pipelined burst not counted"
    );
}

#[test]
fn pipeline_deeper_than_the_cap_drains_completely() {
    // Regression: once MAX_PIPELINE requests were parsed, followers
    // already drained into the connection buffer were only re-examined
    // on socket readability — which never fires again once the kernel
    // buffer is empty — so a burst deeper than the cap hung forever.
    // Worker completions must re-parse the buffer.
    let (addr, _) = start(None, None);
    let total = MAX_PIPELINE + 36;
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // A hang shows up as a read timeout, not a stalled CI job.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let burst = "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n".repeat(total);
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();
    for i in 0..total {
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i} of {total}: {body}");
    }
}

#[test]
fn half_close_after_pipelined_burst_still_serves_the_queue() {
    // shutdown(SHUT_WR) after a pipelined burst closes only the
    // client's send side; the requests were fully received and the
    // client is still reading. Regression: the reactor treated the
    // hangup as a mid-run disconnect and destroyed the connection
    // with the queue unserved.
    let (addr, service) = start(None, None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\n");
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut burst = String::new();
    for i in 0..3 {
        let body = query_body(&format!("Half{i} <- COPY(A)"));
        burst.push_str(&format!(
            "POST /sessions/{session}/query HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    writer.write_all(burst.as_bytes()).unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    for i in 0..3 {
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "response {i} after half-close: {body}");
        assert!(
            body.contains(&format!("\"name\":\"Half{i}\"")),
            "response {i} out of order: {body}"
        );
    }
    // With the queue served the server closes the connection …
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after the final response: {rest:?}");
    // … and none of this counted as a mid-run disconnect.
    assert_eq!(
        service.counters.disconnect_cancels.load(Ordering::Relaxed),
        0,
        "half-close cancelled a run"
    );
}

#[test]
fn flood_past_the_byte_cap_is_fully_served() {
    // A sender that outpaces the worker pool parks at the reactor's
    // unparsed-byte cap (EPOLLIN drops until parsing frees space)
    // instead of growing the connection buffer without bound — and
    // everything it sent must still be answered as the queue drains.
    let (addr, _) = start(None, None);
    let pad = "x".repeat(4096);
    let request = format!(
        "POST /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{pad}",
        pad.len()
    );
    let total = MAX_BUF / request.len() + 64;
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // The writer must be its own thread: once the cap is reached the
    // server stops reading and the socket buffers fill, so the flood
    // blocks until responses are consumed on this side.
    let flood = std::thread::spawn(move || {
        for _ in 0..total {
            writer.write_all(request.as_bytes()).unwrap();
        }
        writer
    });
    for i in 0..total {
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 405, "response {i} of {total}");
    }
    drop(flood.join().unwrap());
}

#[test]
fn chunked_transfer_encoding_is_rejected_with_501() {
    let (addr, _) = start(None, None);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            b"POST /sessions HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 501"), "{raw:?}");
    assert!(
        json::parse(raw.split("\r\n\r\n").nth(1).unwrap_or("")).is_ok(),
        "501 body is JSON: {raw:?}"
    );
    // The connection closed (the stream past the refused body is
    // unframed) and the server is still alive for others.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
}

#[test]
fn slow_loris_does_not_stall_other_clients() {
    let (addr, _) = start(None, None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\n");

    // The loris: trickle a never-ending request head a chunk at a
    // time. The reactor must keep serving others and eventually close
    // this connection via the 16KiB head cap.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let loris_probe = std::thread::spawn(move || {
        let pad = format!("x-pad: {}\r\n", "a".repeat(2048));
        // Trickle header chunks; the 50ms read timeout between chunks
        // is both the pacing and the poll for the server's verdict
        // (reading eagerly avoids racing an RST against the buffered
        // 413 once the server closes).
        let _ = loris.set_read_timeout(Some(Duration::from_millis(50)));
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        for _ in 0..10 {
            if loris.write_all(pad.as_bytes()).is_err() {
                break; // already shut by the head cap
            }
            match loris.read(&mut buf) {
                Ok(n) if n > 0 => {
                    raw.extend_from_slice(&buf[..n]);
                    break;
                }
                Ok(_) => break, // EOF
                Err(_) => {}    // timeout: keep trickling
            }
        }
        // More than MAX_HEAD bytes are in (or the write broke): the
        // server must have answered 413 and closed, not hung.
        let _ = loris.set_read_timeout(Some(Duration::from_secs(5)));
        let mut rest = Vec::new();
        let _ = loris.read_to_end(&mut rest);
        raw.extend_from_slice(&rest);
        String::from_utf8_lossy(&raw).into_owned()
    });

    // Meanwhile, a well-behaved client's latencies stay bounded.
    let query_path = format!("/sessions/{session}/query?readonly=1");
    let body = query_body("T <- COPY(A)");
    let mut worst = Duration::ZERO;
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(500) {
        let t0 = Instant::now();
        let (status, _) = http(addr, "POST", &query_path, &body);
        assert_eq!(status, 200);
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_secs(2),
        "a stalled head delayed other clients: worst {worst:?}"
    );

    let raw = loris_probe.join().unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 413"),
        "loris connection should die on the head cap: {raw:?}"
    );
}

#[test]
fn stats_reports_reactor_counters() {
    let (addr, _) = start(None, None);
    // Hold one keep-alive connection open while asking for stats.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // Pipeline two stats requests on the held connection so the
    // pipelining counter moves too.
    writer
        .write_all(b"GET /stats HTTP/1.1\r\nhost: t\r\n\r\nGET /stats HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _first) = read_response(&mut reader);
    assert_eq!(status, 200);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    let stats = json::parse(&body).unwrap();
    let num = |k: &str| {
        stats
            .get(k)
            .and_then(json::Json::as_num)
            .unwrap_or_else(|| panic!("stats missing {k}: {body}"))
    };
    assert!(num("connections_open") >= 1.0, "{body}");
    assert!(num("connections_accepted") >= 1.0, "{body}");
    assert!(num("worker_busy_us") >= 0.0, "{body}");
    assert!(num("reactor_busy_us") >= 0.0, "{body}");
    // The two stats requests above went out back-to-back: by the time
    // the second rendered, it had been parsed behind the first.
    assert!(num("pipelined_requests") >= 1.0, "{body}");

    // Closing the held connection eventually drops the gauge.
    drop(reader);
    drop(writer);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, body) = http(addr, "GET", "/stats", "");
        let open = json::parse(&body)
            .unwrap()
            .get("connections_open")
            .unwrap()
            .as_num()
            .unwrap();
        // The probe's own connection is open while it asks.
        if open <= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "gauge never dropped: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn plan_and_trace_attachments_render() {
    let (addr, _) = start(None, None);
    let session = open_session(addr);
    upload(addr, &session, "A,X\nr,a\n");
    let (status, body) = http(
        addr,
        "POST",
        &format!("/sessions/{session}/query?plan=1&trace=spans"),
        &query_body("T <- TRANSPOSE(A)"),
    );
    assert_eq!(status, 200, "{body}");
    let parsed = json::parse(&body).unwrap();
    let result = &parsed.get("results").unwrap().as_arr().unwrap()[0];
    let plan = result.get("plan").expect("plan report attached");
    assert!(plan.get("decisions").unwrap().as_arr().is_some());
    let trace = result.get("trace").expect("trace attached");
    assert!(trace
        .get("spans")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .any(|s| { s.get("op").and_then(json::Json::as_str) == Some("TRANSPOSE") }));
    let stats = result.get("stats").unwrap();
    assert!(stats.get("op_counts").unwrap().get("TRANSPOSE").is_some());
}
