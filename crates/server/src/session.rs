//! Per-session databases.
//!
//! Each session owns an isolated [`Database`]. Queries execute against
//! an O(1) [`Database::snapshot`] taken under a short lock, so readers
//! never hold the session lock while evaluating and a long analytical
//! read never blocks a concurrent writer — the paper's restructuring
//! pipelines can run for seconds, and admission control (not locking)
//! is what bounds them. Every critical section here is O(1), which is
//! what lets the reactor's worker pool route into sessions without a
//! lock ever becoming the connection-scaling bottleneck; the registry
//! itself is read-mostly (one lookup per routed request against rare
//! creates/removes), so it sits behind an `RwLock`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use tabular_core::Database;

/// One client session: an isolated database behind a lock that is only
/// ever held for O(1) snapshot/commit operations.
pub struct Session {
    db: Mutex<Database>,
}

impl Session {
    /// Snapshot the current state (O(1) handle clone).
    pub fn snapshot(&self) -> Database {
        self.db.lock().unwrap_or_else(|e| e.into_inner()).snapshot()
    }

    /// Replace the session state with a completed run's output
    /// (last-writer-wins; the snapshot taken at admission is the
    /// read view the run saw).
    pub fn commit(&self, db: Database) {
        *self.db.lock().unwrap_or_else(|e| e.into_inner()) = db;
    }

    /// Mutate the state in place (table uploads).
    pub fn with_db<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        f(&mut self.db.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The session registry. Ids are dense integers rendered as `s<N>` on
/// the wire.
#[derive(Default)]
pub struct Sessions {
    next: AtomicU64,
    map: RwLock<HashMap<u64, Arc<Session>>>,
}

impl Sessions {
    /// Open a new empty session and return its id.
    pub fn create(&self) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let session = Arc::new(Session {
            db: Mutex::new(Database::new()),
        });
        self.map
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, session);
        id
    }

    /// Look up a live session (shared lock: the per-request hot path).
    pub fn get(&self, id: u64) -> Option<Arc<Session>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Close a session; `false` if it was not open.
    pub fn remove(&self, id: u64) -> bool {
        self.map
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
            .is_some()
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parse a wire session id (`s<N>`).
    pub fn parse_id(text: &str) -> Option<u64> {
        text.strip_prefix('s')?.parse().ok()
    }

    /// Render a session id for the wire.
    pub fn render_id(id: u64) -> String {
        format!("s{id}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::Table;

    #[test]
    fn sessions_are_isolated() {
        let sessions = Sessions::default();
        let a = sessions.create();
        let b = sessions.create();
        assert_ne!(a, b);
        sessions.get(a).unwrap().with_db(|db| {
            db.insert(Table::relational("T", &["X"], &[&["only in a"]]));
        });
        assert_eq!(sessions.get(a).unwrap().snapshot().tables().len(), 1);
        assert!(sessions.get(b).unwrap().snapshot().tables().is_empty());
        assert!(sessions.remove(a));
        assert!(!sessions.remove(a));
        assert!(sessions.get(a).is_none());
        assert_eq!(sessions.len(), 1);
    }

    #[test]
    fn wire_ids_round_trip() {
        assert_eq!(Sessions::parse_id(&Sessions::render_id(7)), Some(7));
        assert_eq!(Sessions::parse_id("7"), None);
        assert_eq!(Sessions::parse_id("sx"), None);
    }
}
