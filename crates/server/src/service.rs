//! Request routing and governed query execution.
//!
//! The governor is the admission-control layer: every query runs under
//! a [`Budget`] assembled from the server defaults
//! (`--default-deadline-ms` / `--default-cell-budget`) with optional
//! per-request overrides (`?deadline_ms=` / `?cell_budget=`), plus a
//! per-request [`CancelToken`] supplied by the epoll reactor, which
//! trips it on `EPOLLRDHUP`/EOF when the client goes away mid-run. A
//! request carrying several programs shares one admission grant: the
//! budget is [`Budget::split`] across the statements, which run
//! concurrently against the same snapshot and share the cancel token.
//!
//! Routes:
//!
//! | method & path                  | effect                              |
//! |--------------------------------|-------------------------------------|
//! | `GET /healthz`                 | liveness                            |
//! | `GET /stats`                   | service counters                    |
//! | `POST /sessions`               | open a session → `{"session":"sN"}` |
//! | `DELETE /sessions/{id}`        | close a session                     |
//! | `POST /sessions/{id}/tables`   | upload one CSV table (core `io`)    |
//! | `POST /sessions/{id}/query`    | run program(s); see below           |
//!
//! Query bodies are `{"program": "…"}` or `{"programs": ["…", …]}`.
//! Query params: `plan=1` attaches the cost-based planner's
//! [`PlanReport`]; `trace=spans` attaches the span trace
//! (`Trace::to_json`); `readonly=1` skips the commit; `deadline_ms=` /
//! `cell_budget=` override the admission defaults. Status mapping:
//! parse errors and malformed bodies are 400, budget trips are 408
//! (with the partial stats the governor carries), other evaluation
//! errors are 422, broken engine invariants are 500.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tabular_algebra::{
    parser, pretty, run_governed_traced, run_planned_governed_traced, AlgebraError, Budget,
    CancelToken, EvalLimits, EvalStats, PlanReport, Program, Trace, TraceLevel,
};
use tabular_core::{interner, io, Database};

use crate::http::Request;
use crate::json::{self, Json};
use crate::session::{Session, Sessions};

/// Server configuration (CLI flags of `tabular-serve`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address.
    pub addr: String,
    /// Admission default: wall-clock deadline per query request.
    pub default_deadline_ms: Option<u64>,
    /// Admission default: cumulative cell budget per query request.
    pub default_cell_budget: Option<usize>,
    /// Query worker threads behind the reactor (0 = auto: the
    /// available parallelism, floored at 4 so short queries are not
    /// head-of-line blocked behind one long fixpoint on small hosts).
    pub workers: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:7878".into(),
            default_deadline_ms: None,
            default_cell_budget: None,
            workers: 0,
        }
    }
}

/// Service counters (`GET /stats`): monotonic totals plus the
/// reactor's `connections_open` gauge.
#[derive(Default)]
pub struct Counters {
    /// Requests routed (any method).
    pub requests: AtomicU64,
    /// Query programs executed (a multi-program request counts each).
    pub queries: AtomicU64,
    /// Programs stopped by a budget trip (deadline, cells, or cancel).
    pub budget_trips: AtomicU64,
    /// Runs cancelled because the reactor saw the client hang up
    /// (`EPOLLRDHUP`/EOF) while their request was in flight.
    pub disconnect_cancels: AtomicU64,
    /// Connections currently registered with the reactor (gauge).
    pub connections_open: AtomicU64,
    /// Connections accepted since startup.
    pub connections_accepted: AtomicU64,
    /// Requests parsed while an earlier request from the same
    /// connection was still queued or in flight (HTTP/1.1 pipelining).
    pub pipelined_requests: AtomicU64,
    /// Cumulative CPU microseconds worker threads consumed executing
    /// requests (`CLOCK_THREAD_CPUTIME_ID`, so descheduled time on an
    /// oversubscribed host does not count; feeds the scaling bench's
    /// multi-core projection).
    pub worker_busy_us: AtomicU64,
    /// Cumulative CPU microseconds the reactor thread consumed
    /// processing events (accept, parse, dispatch, write).
    pub reactor_busy_us: AtomicU64,
}

/// The shared service state behind the reactor and its worker pool.
pub struct Service {
    /// Configuration the server was started with.
    pub config: Config,
    /// The session registry.
    pub sessions: Sessions,
    /// Monotonic counters.
    pub counters: Counters,
}

/// A routed response: status and JSON body (empty for 204).
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response { status, body }
    }

    fn error(status: u16, msg: &str) -> Response {
        Response {
            status,
            body: format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(msg)),
        }
    }
}

type RunOutcome = Result<(Database, EvalStats, Trace, Option<PlanReport>), AlgebraError>;

impl Service {
    /// A service with the given configuration and no sessions.
    pub fn new(config: Config) -> Service {
        Service {
            config,
            sessions: Sessions::default(),
            counters: Counters::default(),
        }
    }

    /// Route one request. `cancel` is the per-request token the
    /// reactor trips when the client hangs up mid-run
    /// (`EPOLLRDHUP`/EOF); queries run their whole budget under it.
    pub fn handle(&self, req: &Request, cancel: Option<&CancelToken>) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Response::json(200, "{\"ok\":true}".into()),
            ("GET", ["stats"]) => Response::json(200, self.stats_body()),
            ("POST", ["sessions"]) => {
                let id = self.sessions.create();
                Response::json(
                    201,
                    format!(
                        "{{\"ok\":true,\"session\":\"{}\"}}",
                        Sessions::render_id(id)
                    ),
                )
            }
            ("DELETE", ["sessions", id]) => match Sessions::parse_id(id) {
                Some(id) if self.sessions.remove(id) => Response::json(204, String::new()),
                _ => Response::error(404, "no such session"),
            },
            ("POST", ["sessions", id, "tables"]) => match self.session_for(id) {
                Ok(session) => upload_table(&session, req),
                Err(resp) => resp,
            },
            ("POST", ["sessions", id, "query"]) => match self.session_for(id) {
                Ok(session) => self.run_query(&session, req, cancel),
                Err(resp) => resp,
            },
            (_, ["healthz" | "stats"]) | (_, ["sessions", ..]) => {
                Response::error(405, "method not allowed for this path")
            }
            _ => Response::error(404, "no such route"),
        }
    }

    fn session_for(&self, id: &str) -> Result<Arc<Session>, Response> {
        Sessions::parse_id(id)
            .and_then(|id| self.sessions.get(id))
            .ok_or_else(|| Response::error(404, "no such session"))
    }

    fn stats_body(&self) -> String {
        format!(
            "{{\"ok\":true,\"sessions_open\":{},\"requests\":{},\"queries\":{},\
             \"budget_trips\":{},\"disconnect_cancels\":{},\"connections_open\":{},\
             \"connections_accepted\":{},\"pipelined_requests\":{},\
             \"worker_busy_us\":{},\"reactor_busy_us\":{}}}",
            self.sessions.len(),
            self.counters.requests.load(Ordering::Relaxed),
            self.counters.queries.load(Ordering::Relaxed),
            self.counters.budget_trips.load(Ordering::Relaxed),
            self.counters.disconnect_cancels.load(Ordering::Relaxed),
            self.counters.connections_open.load(Ordering::Relaxed),
            self.counters.connections_accepted.load(Ordering::Relaxed),
            self.counters.pipelined_requests.load(Ordering::Relaxed),
            self.counters.worker_busy_us.load(Ordering::Relaxed),
            self.counters.reactor_busy_us.load(Ordering::Relaxed),
        )
    }

    /// Execute a query request: admit, snapshot, run, commit, render.
    fn run_query(
        &self,
        session: &Session,
        req: &Request,
        cancel: Option<&CancelToken>,
    ) -> Response {
        // -- Decode and parse (any failure here is the client's: 400) --
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "request body is not UTF-8");
        };
        let parsed_body = match json::parse(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("request body is not JSON: {e}")),
        };
        let sources: Vec<&str> = if let Some(p) = parsed_body.get("program").and_then(Json::as_str)
        {
            vec![p]
        } else if let Some(list) = parsed_body.get("programs").and_then(Json::as_arr) {
            let mut sources = Vec::with_capacity(list.len());
            for item in list {
                match item.as_str() {
                    Some(s) => sources.push(s),
                    None => return Response::error(400, "\"programs\" must be strings"),
                }
            }
            sources
        } else {
            return Response::error(400, "body must carry \"program\" or \"programs\"");
        };
        if sources.is_empty() {
            return Response::error(400, "\"programs\" is empty");
        }
        let mut programs = Vec::with_capacity(sources.len());
        for src in &sources {
            match parser::parse(src) {
                Ok(p) => programs.push(p),
                Err(e) => return Response::error(400, &e.to_string()),
            }
        }

        let want_plan = req.query_param("plan") == Some("1");
        let want_trace = req.query_param("trace") == Some("spans");
        // Concurrent statements of one request run against one
        // snapshot; committing several last-writer-wins results would
        // silently drop work, so multi-program requests are read-only.
        let readonly =
            matches!(req.query_param("readonly"), Some("1" | "true")) || programs.len() > 1;
        let deadline_ms = match override_param(req, "deadline_ms") {
            Ok(v) => v.or(self.config.default_deadline_ms),
            Err(resp) => return resp,
        };
        let cell_budget = match override_param(req, "cell_budget") {
            Ok(v) => v.map(|n| n as usize).or(self.config.default_cell_budget),
            Err(resp) => return resp,
        };

        // -- Admission: one grant for the whole request --
        let limits = EvalLimits {
            trace: if want_trace {
                TraceLevel::Spans
            } else {
                TraceLevel::default()
            },
            ..EvalLimits::default()
        };
        // The reactor owns disconnect detection: it trips this token
        // on EPOLLRDHUP/EOF, so no per-request watcher thread exists.
        let token = cancel.cloned().unwrap_or_else(CancelToken::new);
        let mut budget = Budget::from_limits(&limits).with_cancel(token);
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(cells) = cell_budget {
            budget = budget.with_cell_budget(cells);
        }

        // -- Snapshot under a short lock: reads never block writers --
        let snapshot = session.snapshot();

        self.counters
            .queries
            .fetch_add(programs.len() as u64, Ordering::Relaxed);
        let outcomes: Vec<RunOutcome> = if programs.len() == 1 {
            vec![run_one(&programs[0], &snapshot, &budget, want_plan)]
        } else {
            let share = budget.split(programs.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = programs
                    .iter()
                    .map(|program| {
                        let share = share.clone();
                        let snapshot = &snapshot;
                        scope.spawn(move || run_one(program, snapshot, &share, want_plan))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(AlgebraError::Internal {
                                what: "a query worker panicked",
                            })
                        })
                    })
                    .collect()
            })
        };
        // -- Commit: a single mutating program replaces the session db --
        if !readonly {
            if let Some(Ok((out, ..))) = outcomes.first() {
                session.commit(out.clone());
            }
        }

        self.render_outcomes(&outcomes, want_trace)
    }

    fn render_outcomes(&self, outcomes: &[RunOutcome], want_trace: bool) -> Response {
        let mut any_trip = false;
        let mut any_invalid = false;
        let mut any_internal = false;
        let mut results = String::new();
        for (i, outcome) in outcomes.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            match outcome {
                Ok((db, stats, trace, plan)) => {
                    results.push_str("{\"ok\":true,\"tables\":[");
                    let mut first = true;
                    for t in db.tables() {
                        let Some(name) = t.name().text().filter(|n| !interner::is_reserved(n))
                        else {
                            continue; // scratch and tag tables stay server-side
                        };
                        if !first {
                            results.push(',');
                        }
                        first = false;
                        write!(
                            results,
                            "{{\"name\":\"{}\",\"height\":{},\"width\":{},\"csv\":\"{}\"}}",
                            json::escape(name),
                            t.height(),
                            t.width(),
                            json::escape(&io::to_csv(t)),
                        )
                        .unwrap();
                    }
                    results.push_str("],\"stats\":");
                    results.push_str(&stats_json(stats));
                    if let Some(report) = plan {
                        results.push_str(",\"plan\":");
                        results.push_str(&plan_json(report));
                    }
                    if want_trace {
                        results.push_str(",\"trace\":");
                        results.push_str(&trace.to_json());
                    }
                    results.push('}');
                }
                Err(AlgebraError::BudgetExceeded {
                    resource,
                    spent,
                    limit,
                    partial,
                }) => {
                    any_trip = true;
                    self.counters.budget_trips.fetch_add(1, Ordering::Relaxed);
                    write!(
                        results,
                        "{{\"ok\":false,\"error\":\"{}\",\"resource\":\"{}\",\
                         \"spent\":{spent},\"limit\":{limit},\"stats\":{}",
                        json::escape(&outcome.as_ref().unwrap_err().to_string()),
                        json::escape(resource),
                        stats_json(&partial.stats),
                    )
                    .unwrap();
                    if want_trace {
                        results.push_str(",\"trace\":");
                        results.push_str(&partial.trace.to_json());
                    }
                    results.push('}');
                }
                Err(e @ AlgebraError::Internal { .. }) => {
                    any_internal = true;
                    write!(
                        results,
                        "{{\"ok\":false,\"error\":\"{}\"}}",
                        json::escape(&e.to_string())
                    )
                    .unwrap();
                }
                Err(e) => {
                    any_invalid = true;
                    write!(
                        results,
                        "{{\"ok\":false,\"error\":\"{}\"}}",
                        json::escape(&e.to_string())
                    )
                    .unwrap();
                }
            }
        }
        let status = if any_internal {
            500
        } else if any_trip {
            408
        } else if any_invalid {
            422
        } else {
            200
        };
        Response::json(
            status,
            format!("{{\"ok\":{},\"results\":[{results}]}}", status == 200),
        )
    }
}

/// Run one program against the snapshot under its budget share.
fn run_one(program: &Program, db: &Database, budget: &Budget, want_plan: bool) -> RunOutcome {
    if want_plan {
        run_planned_governed_traced(program, db, budget)
            .map(|(out, stats, trace, report)| (out, stats, trace, Some(report)))
    } else {
        run_governed_traced(program, db, budget)
            .map(|(out, stats, trace)| (out, stats, trace, None))
    }
}

/// `POST /sessions/{id}/tables`: the body is one CSV table in the
/// `tabular_core::io` convention.
fn upload_table(session: &Session, req: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    let table = match io::from_csv(body) {
        Ok(t) => t,
        Err(e) => return Response::error(400, &format!("bad CSV table: {e}")),
    };
    let name = table.name();
    let (height, width) = (table.height(), table.width());
    session.with_db(|db| db.insert(table));
    Response::json(
        201,
        format!(
            "{{\"ok\":true,\"table\":\"{}\",\"height\":{height},\"width\":{width}}}",
            json::escape(&name.to_string()),
        ),
    )
}

/// Parse a numeric admission override from the query string.
fn override_param(req: &Request, name: &str) -> Result<Option<u64>, Response> {
    match req.query_param(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| Response::error(400, &format!("bad {name} value {v:?}"))),
    }
}

/// Render [`EvalStats`] as a flat JSON object (the scalar counters plus
/// the per-op execution counts).
pub fn stats_json(s: &EvalStats) -> String {
    let mut out = String::from("{\"op_counts\":{");
    for (i, (op, n)) in s.op_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "\"{}\":{n}", json::escape(op)).unwrap();
    }
    write!(
        out,
        "}},\"total_micros\":{},\"while_iterations\":{},\"tables_produced\":{},\
         \"max_table_cells\":{},\"shard_jobs\":{},\"partitioned_joins\":{},\
         \"partition_shards\":{},\"while_delta_skipped\":{},\"while_fallback_naive\":{},\
         \"join_fused\":{},\"join_unfused\":{},\"restructure_fused\":{},\
         \"restructure_unfused\":{},\"snapshots\":{},\"cow_copies\":{},\
         \"plans_rewritten\":{},\"plan_rules_applied\":{}}}",
        s.total_micros,
        s.while_iterations,
        s.tables_produced,
        s.max_table_cells,
        s.shard_jobs,
        s.partitioned_joins,
        s.partition_shards,
        s.while_delta_skipped,
        s.while_fallback_naive,
        s.join_fused,
        s.join_unfused,
        s.restructure_fused,
        s.restructure_unfused,
        s.snapshots,
        s.cow_copies,
        s.plans_rewritten,
        s.plan_rules_applied,
    )
    .unwrap();
    out
}

/// Render a [`PlanReport`] as JSON, mirroring `pretty::render_plan`
/// decision-for-decision (the `pretty` line rendering is also attached
/// for human consumers).
pub fn plan_json(report: &PlanReport) -> String {
    let mut out = format!(
        "{{\"statements_rewritten\":{},\"rules_applied\":{},\"pretty\":\"{}\",\"decisions\":[",
        report.statements_rewritten,
        report.rules_applied(),
        json::escape(pretty::render_plan(report).trim_end()),
    );
    for (i, d) in report.decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"rule\":\"{}\",\"site\":\"{}\",\"detail\":\"{}\",\
             \"before_cells\":{},\"after_cells\":{}}}",
            json::escape(d.rule.name()),
            json::escape(&d.site),
            json::escape(&d.detail),
            opt_num(d.before_cells),
            opt_num(d.after_cells),
        )
        .unwrap();
    }
    out.push_str("]}");
    out
}

fn opt_num(v: Option<u128>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}
