//! # tabular-server
//!
//! An HTTP/JSON query service for tabular algebra programs: clients
//! open sessions, upload CSV tables, and POST textual TA programs;
//! the service executes them against per-session databases with
//! snapshot-isolated reads ([`tabular_core::Database::snapshot`]) and
//! the resource governor as the admission-control layer — per-request
//! deadlines and cell budgets, [`tabular_algebra::Budget::split`]
//! across the concurrent statements of one request, and cooperative
//! cancellation when the client disconnects mid-run.
//!
//! The transport is a hand-rolled epoll reactor over `std::net` (the
//! offline vendor set has no async runtime; the epoll syscalls are
//! raw `extern "C"` declarations against the libc the binary already
//! links): one reactor thread multiplexes every connection, parses
//! HTTP/1.1 incrementally with pipelining, and dispatches complete
//! requests to a bounded worker pool that runs the governed query
//! path. Connection count no longer costs a thread apiece, and a
//! client hangup cancels its in-flight run via `EPOLLRDHUP` — see the
//! `reactor` module internals and [`service`] for the route table and
//! wire protocol.

#![warn(missing_docs)]

pub mod http;
pub mod json;
mod reactor;
pub mod service;
pub mod session;

pub use reactor::{MAX_BUF, MAX_PIPELINE};
pub use service::{Config, Response, Service};

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

/// A bound listener plus its shared service state.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Bind the configured address.
    pub fn bind(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(Service::new(config)),
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service state (counters, sessions).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Serve forever on the calling thread: the epoll reactor loop.
    /// Returns only if the epoll instance itself fails.
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.service.config.workers;
        reactor::Reactor::new(self.listener, self.service, workers)?.run()
    }

    /// Serve on a background thread; returns the bound address and the
    /// shared service state. The reactor thread runs for the life of
    /// the process (tests just let it die with the harness).
    pub fn spawn(self) -> std::io::Result<(SocketAddr, Arc<Service>)> {
        let addr = self.local_addr()?;
        let service = self.service();
        std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok((addr, service))
    }
}
