//! # tabular-server
//!
//! An HTTP/JSON query service for tabular algebra programs: clients
//! open sessions, upload CSV tables, and POST textual TA programs;
//! the service executes them against per-session databases with
//! snapshot-isolated reads ([`tabular_core::Database::snapshot`]) and
//! the resource governor as the admission-control layer — per-request
//! deadlines and cell budgets, [`tabular_algebra::Budget::split`]
//! across the concurrent statements of one request, and cooperative
//! cancellation when the client disconnects mid-run.
//!
//! The transport is a deliberately small hand-rolled HTTP/1.1 over
//! `std::net` (the offline vendor set has no async runtime): one
//! thread per connection with keep-alive, which matches the service's
//! shape — queries are admission-controlled CPU work, not massive I/O
//! fan-in, so the governor (not the event loop) is what bounds load.
//!
//! See [`service`] for the route table and wire protocol.

#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod service;
pub mod session;

pub use service::{Config, Response, Service};

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// A bound listener plus its shared service state.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Bind the configured address.
    pub fn bind(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(Service::new(config)),
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service state (counters, sessions).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Serve forever on the calling thread: accept connections and
    /// handle each on its own thread.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || handle_connection(&service, stream));
        }
        Ok(())
    }

    /// Serve on a background thread; returns the bound address and the
    /// shared service state. The listener thread runs for the life of
    /// the process (tests just let it die with the harness).
    pub fn spawn(self) -> std::io::Result<(SocketAddr, Arc<Service>)> {
        let addr = self.local_addr()?;
        let service = self.service();
        std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok((addr, service))
    }
}

/// One connection: read requests until the client closes, routing each
/// through the service. Malformed requests answer with their status
/// and close; transport errors close silently.
fn handle_connection(service: &Service, mut stream: TcpStream) {
    // Responses are written whole; waiting out Nagle would add ~40ms
    // of idle latency per round trip on loopback.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    loop {
        match http::read_request(&mut reader) {
            Ok(None) | Err(http::ReadError::Io(_)) => return,
            Err(http::ReadError::Malformed(status, msg)) => {
                let body = format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(&msg));
                let _ = http::write_response(&mut stream, status, body.as_bytes(), false);
                return;
            }
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive();
                let resp = service.handle(&req, Some(&stream));
                if http::write_response(&mut stream, resp.status, resp.body.as_bytes(), keep_alive)
                    .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
        }
    }
}
