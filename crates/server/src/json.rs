//! Minimal JSON for the wire protocol: a value parser for request
//! bodies and escape helpers for hand-rolled response rendering.
//!
//! The offline vendor set has no `serde_json`, and the protocol needs
//! only the RFC 8259 value grammar — so this is a small recursive
//! descent parser with a nesting cap (wire input is untrusted; a
//! bracket bomb must return an error, not blow the stack) plus string
//! escaping for the response side. Responses themselves are rendered by
//! pushing literals in `service.rs`; there is no generic serializer.

use std::collections::BTreeMap;

/// Maximum bracket nesting accepted from the wire.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept in a map; duplicate keys keep the last
    /// occurrence (the common lenient reading).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one JSON value spanning the whole input.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.b.get(self.pos) {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte {c:#04x} at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &[u8], v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if self.b.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            self.ws();
            let val = self.value()?;
            m.insert(key, val);
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.b[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or("bad \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if *c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.b.len() && (self.b[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.pos]).unwrap_or("\u{fffd}"),
                    );
                }
            }
        }
    }

    /// Four hex digits after a `\u`, leaving `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let d = self
            .b
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(d).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.b.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).unwrap_or("");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escape a string for embedding in a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = parse(r#"{"program": "T <- COPY(A)", "n": 3}"#).unwrap();
        assert_eq!(v.get("program").unwrap().as_str(), Some("T <- COPY(A)"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(3.0));
        let v = parse(r#"{"programs": ["a", "b"]}"#).unwrap();
        assert_eq!(v.get("programs").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\n\"quoted\" \\ tab\t京";
        let wire = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for src in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"\\u12",
            "\u{1}",
            "1 2",
            "{\"a\": }",
            "nul",
            "-",
            "\"\\q\"",
            "[",
        ] {
            assert!(parse(src).is_err(), "{src:?} should not parse");
        }
        // A bracket bomb trips the depth cap instead of the stack.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }
}
