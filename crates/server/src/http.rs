//! A minimal HTTP/1.1 reader/writer over `std::net`.
//!
//! The offline vendor set has no async runtime and no HTTP crate, so
//! the service speaks a deliberately small slice of HTTP/1.1: request
//! line + headers + `Content-Length` body (no chunked encoding, no
//! 100-continue), keep-alive by default, hard caps on header and body
//! sizes. Everything read here is untrusted wire input — every
//! malformed shape must come back as an error value, never a panic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Cap on a request body.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body (possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure; drop the connection silently.
    Io(std::io::Error),
    /// The bytes were not a request this server accepts; answer with
    /// the carried status (400 or 413) and close.
    Malformed(u16, String),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Read one request. `Ok(None)` means the client closed the connection
/// cleanly between requests.
pub fn read_request(r: &mut BufReader<TcpStream>) -> Result<Option<Request>, ReadError> {
    // Head: everything up to the blank line, capped.
    let mut head = Vec::new();
    loop {
        let line_start = head.len();
        let n = read_line_capped(r, &mut head)?;
        if n == 0 {
            return if line_start == 0 {
                Ok(None) // clean EOF before any byte of a request
            } else {
                Err(ReadError::Malformed(400, "truncated request head".into()))
            };
        }
        // A line of just "\r\n" (or "\n") ends the head.
        if head[line_start..] == b"\r\n"[..] || head[line_start..] == b"\n"[..] {
            head.truncate(line_start);
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(ReadError::Malformed(413, "request head too large".into()));
        }
    }

    let head = String::from_utf8(head)
        .map_err(|_| ReadError::Malformed(400, "request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed(400, "empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed(400, "request line has no target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(
            400,
            format!("bad version {version:?}"),
        ));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| ReadError::Malformed(400, "bad percent-encoding in path".into()))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k)
            .ok_or_else(|| ReadError::Malformed(400, "bad percent-encoding in query".into()))?;
        let v = percent_decode(v)
            .ok_or_else(|| ReadError::Malformed(400, "bad percent-encoding in query".into()))?;
        query.push((k, v));
    }

    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(400, format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| ReadError::Malformed(400, "bad content-length".into()))?;
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Malformed(
            400,
            "chunked bodies unsupported".into(),
        ));
    }
    if let Some(len) = content_length {
        if len > MAX_BODY {
            return Err(ReadError::Malformed(413, "request body too large".into()));
        }
        body.resize(len, 0);
        r.read_exact(&mut body)?;
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// `read_until(b'\n')` with the head cap applied mid-line, so a
/// newline-free flood cannot grow the buffer unboundedly.
fn read_line_capped(r: &mut BufReader<TcpStream>, out: &mut Vec<u8>) -> Result<usize, ReadError> {
    let start = out.len();
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Ok(out.len() - start);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(ix) => {
                out.extend_from_slice(&available[..=ix]);
                r.consume(ix + 1);
                return Ok(out.len() - start);
            }
            None => {
                let n = available.len();
                out.extend_from_slice(available);
                r.consume(n);
                if out.len() > MAX_HEAD {
                    return Err(ReadError::Malformed(413, "request head too large".into()));
                }
            }
        }
    }
}

/// Decode `%XX` escapes and `+` (as space); `None` on truncated or
/// non-hex escapes or non-UTF-8 results.
fn percent_decode(s: &str) -> Option<String> {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'%' => {
                let hex = b.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Write one response. Errors are returned for the caller to ignore —
/// a client that disconnected mid-run cannot receive its answer.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Response",
    };
    // One buffered write: head and body in separate segments interact
    // badly with Nagle + delayed ACK (~40ms stalls per response).
    let mut msg = Vec::with_capacity(128 + body.len());
    write!(
        msg,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .expect("write to Vec");
    msg.extend_from_slice(body);
    stream.write_all(&msg)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%E4%BA%AC").as_deref(), Some("京"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%ff").is_none()); // lone continuation byte
    }
}
