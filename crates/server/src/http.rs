//! A minimal HTTP/1.1 parser/encoder for the epoll reactor.
//!
//! The offline vendor set has no async runtime and no HTTP crate, so
//! the service speaks a deliberately small slice of HTTP/1.1: request
//! line + headers + `Content-Length` body (chunked transfer encoding
//! answers 501, 100-continue is not spoken), keep-alive by default,
//! hard caps on header and body sizes. Everything parsed here is
//! untrusted wire input — every malformed shape must come back as an
//! error value, never a panic.
//!
//! Parsing is *incremental*: [`parse_request`] looks at a byte buffer
//! the reactor has accumulated so far and either yields one complete
//! request (telling the caller how many bytes it consumed, so
//! pipelined followers stay in the buffer), asks for more bytes, or
//! rejects the prefix as malformed. The caps apply to partial input
//! too: a head that exceeds [`MAX_HEAD`] without terminating is
//! rejected *before* its blank line ever arrives, which is what closes
//! slow-loris connections.

use std::io::Write as _;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Cap on a request body.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body (possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// The outcome of examining the buffered prefix of a connection.
#[derive(Debug)]
pub enum Parsed {
    /// The buffer holds no complete request yet; read more bytes.
    Incomplete,
    /// One request parsed from the first `usize` bytes of the buffer
    /// (pipelined followers begin right after).
    Request(Box<Request>, usize),
    /// The bytes are not a request this server accepts; answer with
    /// the carried status (400, 413, or 501) and close.
    Malformed(u16, String),
}

fn malformed(status: u16, msg: &str) -> Parsed {
    Parsed::Malformed(status, msg.to_string())
}

/// Incrementally parse one request from the front of `buf`.
///
/// Stateless re-scan: the head is capped at [`MAX_HEAD`] bytes, so
/// re-examining it on every readiness event is O(cap) and the caller
/// keeps no parser state beyond the byte buffer itself.
pub fn parse_request(buf: &[u8]) -> Parsed {
    // -- Head: scan line by line for the blank terminator --
    let mut pos = 0;
    let (head_len, body_start) = loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            return if buf.len() > MAX_HEAD {
                malformed(413, "request head too large")
            } else {
                Parsed::Incomplete
            };
        };
        let line = &buf[pos..pos + nl];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            break (pos, pos + nl + 1);
        }
        pos += nl + 1;
        if pos > MAX_HEAD {
            return malformed(413, "request head too large");
        }
    };

    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return malformed(400, "request head is not UTF-8");
    };
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return malformed(400, "empty request line");
    };
    let method = method.to_ascii_uppercase();
    let Some(target) = parts.next() else {
        return malformed(400, "request line has no target");
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Parsed::Malformed(400, format!("bad version {version:?}"));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let Some(path) = percent_decode(raw_path) else {
        return malformed(400, "bad percent-encoding in path");
    };
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
            return malformed(400, "bad percent-encoding in query");
        };
        query.push((k, v));
    }

    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Malformed(400, format!("bad header line {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // The reader only understands Content-Length framing; a chunked
    // body would be misread as pipelined garbage, so refuse loudly.
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return malformed(501, "chunked transfer encoding is not implemented");
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return malformed(400, "bad content-length"),
        },
    };
    if content_length > MAX_BODY {
        return malformed(413, "request body too large");
    }
    let Some(body) = buf.get(body_start..body_start + content_length) else {
        return Parsed::Incomplete;
    };

    Parsed::Request(
        Box::new(Request {
            method,
            path,
            query,
            headers,
            body: body.to_vec(),
        }),
        body_start + content_length,
    )
}

/// Decode `%XX` escapes and `+` (as space); `None` on truncated or
/// non-hex escapes or non-UTF-8 results.
fn percent_decode(s: &str) -> Option<String> {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'%' => {
                let hex = b.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Encode one response as wire bytes for the reactor's write queue.
/// Head and body share one buffer: fragmented writes interact badly
/// with Nagle + delayed ACK (~40ms stalls per response).
pub fn encode_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Response",
    };
    let mut msg = Vec::with_capacity(128 + body.len());
    write!(
        msg,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .expect("write to Vec");
    msg.extend_from_slice(body);
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parsed::Request(req, used) => (*req, used),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%E4%BA%AC").as_deref(), Some("京"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%ff").is_none()); // lone continuation byte
    }

    #[test]
    fn incremental_parse_waits_for_every_byte() {
        let wire = b"POST /a?x=1 HTTP/1.1\r\nhost: t\r\ncontent-length: 4\r\n\r\nbodyNEXT";
        // Every proper prefix up to the last body byte is Incomplete.
        for cut in 0..wire.len() - 4 {
            assert!(
                matches!(parse_request(&wire[..cut]), Parsed::Incomplete),
                "cut at {cut}"
            );
        }
        let (req, used) = ok(wire);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/a");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.body, b"body");
        assert_eq!(&wire[used..], b"NEXT"); // pipelined follower preserved
    }

    #[test]
    fn bare_lf_line_endings_parse() {
        let (req, used) = ok(b"GET /healthz HTTP/1.1\nhost: t\n\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(used, 31);
        assert!(req.keep_alive());
    }

    #[test]
    fn chunked_transfer_encoding_is_501() {
        let wire = b"POST /q HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n";
        match parse_request(wire) {
            Parsed::Malformed(501, _) => {}
            other => panic!("chunked should be 501, got {other:?}"),
        }
        // `identity` is the degenerate allowed value.
        let (req, _) =
            ok(b"POST /q HTTP/1.1\r\ntransfer-encoding: identity\r\ncontent-length: 2\r\n\r\nhi");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn head_cap_applies_to_partial_heads() {
        // A newline-free flood larger than the cap is rejected even
        // though its head never terminates — the slow-loris guard.
        let flood = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&flood), Parsed::Malformed(413, _)));
        // So is a many-lines head that exceeds the cap.
        let mut lines = b"GET / HTTP/1.1\r\n".to_vec();
        while lines.len() <= MAX_HEAD {
            lines.extend_from_slice(b"x-pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(matches!(parse_request(&lines), Parsed::Malformed(413, _)));
        // But a sub-cap partial head just waits.
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nhost:"),
            Parsed::Incomplete
        ));
    }

    #[test]
    fn malformed_shapes_reject() {
        assert!(matches!(parse_request(b"\r\n"), Parsed::Malformed(400, _)));
        assert!(matches!(
            parse_request(b"GET\r\n\r\n"),
            Parsed::Malformed(400, _)
        ));
        assert!(matches!(
            parse_request(b"GET / SPDY/3\r\n\r\n"),
            Parsed::Malformed(400, _)
        ));
        assert!(matches!(
            parse_request(b"GET /%zz HTTP/1.1\r\n\r\n"),
            Parsed::Malformed(400, _)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n"),
            Parsed::Malformed(400, _)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\ncontent-length: much\r\n\r\n"),
            Parsed::Malformed(400, _)
        ));
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_request(huge.as_bytes()),
            Parsed::Malformed(413, _)
        ));
    }

    #[test]
    fn responses_encode_with_status_reasons() {
        let bytes = encode_response(501, b"{}", false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 501 Not Implemented\r\n"),
            "{text}"
        );
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
