//! A single-threaded epoll reactor with a bounded query-worker pool.
//!
//! PR 9's transport was a thread per keep-alive connection plus a
//! detached 1ms-`peek` watcher thread per in-flight query; it measured
//! ~1 037 QPS at exactly 4 clients and had no story past that. This
//! module replaces it: one reactor thread multiplexes every connection
//! through `epoll` (raw `extern "C"` declarations — the binary already
//! links libc through `std`, so the crate keeps its zero-new-deps
//! rule), accumulates bytes into per-connection buffers, parses
//! requests incrementally through the capped [`http`](crate::http)
//! parser, and hands complete requests to a bounded pool of worker
//! threads that run the governed query path. Workers push encoded
//! responses onto a completion queue and ring an `eventfd`; the
//! reactor drains completions and writes them out.
//!
//! **Pipelining and the ordering guarantee.** A client may send many
//! requests without waiting for answers; the reactor parses them all
//! into a per-connection FIFO. At most one request per connection is
//! in flight in the pool at a time — the next is dispatched only when
//! its predecessor's response has been queued — so responses are
//! written strictly in request order and a session's mutating
//! programs commit in the order the client sent them. Cross-request
//! parallelism comes from having many connections, not from reordering
//! one connection's stream.
//!
//! **Disconnect detection.** `EPOLLRDHUP` (or a 0-byte read) only
//! says the peer is done *sending*; its read side may still be open
//! (`shutdown(SHUT_WR)` after a pipelined burst is a legitimate HTTP
//! pattern). So EOF with fully-received requests still queued serves
//! the queue and then closes, like `Connection: close`. Only a
//! connection whose in-flight run is the last thing it asked for —
//! nothing else parsed or parseable — is treated as a mid-run
//! disconnect: the run's [`CancelToken`] trips directly and a
//! `disconnect_cancels` is counted. The per-request watcher thread
//! and its 1ms `peek` poll are gone either way.
//!
//! **Backpressure.** Readiness is level-triggered, and reading is
//! gated on two caps. A connection with [`MAX_PIPELINE`] parsed
//! requests queued, or more than [`MAX_BUF`] buffered-but-unparsed
//! bytes, has its `EPOLLIN` interest dropped until responses drain —
//! so a flooding client is bounded by its own unserved queue in both
//! requests *and* bytes, with the overflow left in the kernel socket
//! buffers it owns. A head that exceeds the
//! [`http::MAX_HEAD`](crate::http::MAX_HEAD) cap without terminating
//! is rejected with 413 — which is what eventually closes a slow-loris
//! connection without ever occupying a worker.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use tabular_algebra::CancelToken;

use crate::http::{self, Request};
use crate::json;
use crate::service::Service;

// ---- raw epoll / eventfd bindings (Linux) --------------------------------
//
// `std` already links libc; declaring the five syscall wrappers we need
// keeps the crate dependency-free. The event struct is packed on
// x86-64 (and only there), matching <sys/epoll.h>.

#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
}

const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

/// CPU microseconds consumed by the calling thread. The busy counters
/// use this rather than wall time so that, on an oversubscribed host,
/// time spent descheduled does not count as busy — deltas of these
/// counters are what the scaling benchmark's multi-core projection
/// divides across cores, so they must be CPU seconds, not wall.
fn thread_cpu_us() -> u64 {
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000 + ts.tv_nsec as u64 / 1_000
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

fn ep_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // The DEL op ignores the event but old kernels reject a null pointer.
    if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(())
}

// ---- keys and limits -----------------------------------------------------

/// Epoll user data for the listener and the wakeup eventfd; connection
/// keys are `slot << 32 | generation`, and a slot this large cannot be
/// reached (it would need 2^32 simultaneous connections).
const LISTENER_KEY: u64 = u64::MAX;
const WAKE_KEY: u64 = u64::MAX - 1;

/// Parsed-but-unserved requests a single connection may queue before
/// its `EPOLLIN` interest is dropped (read backpressure).
pub const MAX_PIPELINE: usize = 64;

/// Unparsed inbound bytes a connection may buffer before the reactor
/// stops reading from it (byte-level backpressure; without it a fast
/// sender could grow the buffer without limit while the pipeline cap
/// admits one request per completion). Strictly larger than one
/// maximal request so a parse paused at the pipeline cap can always
/// make progress once the queue drains.
pub const MAX_BUF: usize = http::MAX_HEAD + http::MAX_BODY + 64 * 1024;

const MAX_EVENTS: usize = 256;

fn key_of(slot: usize, generation: u32) -> u64 {
    ((slot as u64) << 32) | generation as u64
}

fn error_body(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(msg))
}

// ---- worker pool ---------------------------------------------------------

struct Job {
    key: u64,
    req: Box<Request>,
    keep_alive: bool,
    cancel: CancelToken,
}

struct Completion {
    key: u64,
    bytes: Vec<u8>,
}

struct WorkerPool {
    jobs: Arc<(Mutex<VecDeque<Job>>, Condvar)>,
    completions: Arc<Mutex<Vec<Completion>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl WorkerPool {
    /// Spawn `workers` query threads that drain the job queue, run the
    /// governed path, and ring `wake_fd` with each encoded response.
    fn start(workers: usize, wake_fd: i32, service: Arc<Service>) -> WorkerPool {
        let pool = WorkerPool {
            jobs: Arc::new((Mutex::new(VecDeque::new()), Condvar::new())),
            completions: Arc::new(Mutex::new(Vec::new())),
        };
        for _ in 0..workers.max(1) {
            let jobs = Arc::clone(&pool.jobs);
            let completions = Arc::clone(&pool.completions);
            let service = Arc::clone(&service);
            std::thread::spawn(move || loop {
                let job = {
                    let (queue, available) = &*jobs;
                    let mut queue = lock(queue);
                    loop {
                        match queue.pop_front() {
                            Some(job) => break job,
                            None => {
                                queue = available.wait(queue).unwrap_or_else(|e| e.into_inner());
                            }
                        }
                    }
                };
                let started = thread_cpu_us();
                let resp = service.handle(&job.req, Some(&job.cancel));
                let bytes =
                    http::encode_response(resp.status, resp.body.as_bytes(), job.keep_alive);
                service
                    .counters
                    .worker_busy_us
                    .fetch_add(thread_cpu_us().saturating_sub(started), Ordering::Relaxed);
                lock(&completions).push(Completion {
                    key: job.key,
                    bytes,
                });
                ring(wake_fd);
            });
        }
        pool
    }

    fn submit(&self, job: Job) {
        let (queue, available) = &*self.jobs;
        lock(queue).push_back(job);
        available.notify_one();
    }
}

/// Bump the eventfd counter so `epoll_wait` returns. The write can
/// only fail if the counter saturates, in which case the reactor is
/// already guaranteed a wakeup.
fn ring(wake_fd: i32) {
    let one = 1u64.to_ne_bytes();
    let _ = unsafe { write(wake_fd, one.as_ptr(), one.len()) };
}

// ---- per-connection state machine ----------------------------------------

struct Conn {
    stream: TcpStream,
    generation: u32,
    /// Epoll interest bits currently registered.
    interest: u32,
    /// Inbound bytes not yet parsed into a request.
    buf: Vec<u8>,
    /// Parsed requests awaiting dispatch, in arrival order.
    pending: VecDeque<Box<Request>>,
    /// Cancel token of the single in-flight request, if any.
    in_flight: Option<CancelToken>,
    /// Encoded responses awaiting write, already in response order.
    out: Vec<u8>,
    written: usize,
    /// No further requests will be read (Connection: close, a
    /// malformed prefix, or peer EOF).
    read_closed: bool,
    /// The peer's write side is known closed.
    saw_eof: bool,
    /// A final error response to send once earlier responses drain.
    fail: Option<Vec<u8>>,
    /// Close the connection once `out` is fully written.
    close_after_drain: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u32) -> Conn {
        Conn {
            stream,
            generation,
            interest: EPOLLIN | EPOLLRDHUP,
            buf: Vec::new(),
            pending: VecDeque::new(),
            in_flight: None,
            out: Vec::new(),
            written: 0,
            read_closed: false,
            saw_eof: false,
            fail: None,
            close_after_drain: false,
        }
    }
}

fn conn_at(conns: &mut [Option<Conn>], slot: usize) -> Option<&mut Conn> {
    conns.get_mut(slot).and_then(|c| c.as_mut())
}

// ---- the reactor ---------------------------------------------------------

/// The event loop: owns the listener, the epoll instance, the
/// connection slab, and the worker pool.
pub(crate) struct Reactor {
    epfd: i32,
    wake_fd: i32,
    listener: TcpListener,
    service: Arc<Service>,
    pool: WorkerPool,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u32,
}

impl Reactor {
    /// Build the reactor: nonblocking listener, epoll instance,
    /// wakeup eventfd, and `workers` query threads (0 = auto).
    pub fn new(
        listener: TcpListener,
        service: Arc<Service>,
        workers: usize,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let wake_fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if wake_fd < 0 {
            let e = std::io::Error::last_os_error();
            unsafe { close(epfd) };
            return Err(e);
        }
        ep_ctl(
            epfd,
            EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            EPOLLIN,
            LISTENER_KEY,
        )?;
        ep_ctl(epfd, EPOLL_CTL_ADD, wake_fd, EPOLLIN, WAKE_KEY)?;
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        } else {
            workers
        };
        let pool = WorkerPool::start(workers, wake_fd, Arc::clone(&service));
        Ok(Reactor {
            epfd,
            wake_fd,
            listener,
            service,
            pool,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        })
    }

    /// Serve forever on the calling thread. Only a broken epoll
    /// instance returns (an error); everything per-connection is
    /// contained.
    pub fn run(mut self) -> std::io::Result<()> {
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as i32, -1) };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            let started = thread_cpu_us();
            for ev in &events[..n as usize] {
                let (bits, data) = (ev.events, ev.data);
                match data {
                    LISTENER_KEY => self.on_accept(),
                    WAKE_KEY => self.on_wake(),
                    key => {
                        let slot = (key >> 32) as usize;
                        let generation = key as u32;
                        // A stale event for a slot that was closed and
                        // reused earlier in this batch must not touch
                        // the new connection.
                        match conn_at(&mut self.conns, slot) {
                            Some(conn) if conn.generation == generation => {}
                            _ => continue,
                        }
                        if bits & (EPOLLERR | EPOLLHUP) != 0 {
                            self.destroy(slot);
                            continue;
                        }
                        if bits & EPOLLOUT != 0 {
                            self.flush(slot);
                        }
                        if bits & EPOLLIN != 0 {
                            self.on_readable(slot);
                        } else if bits & EPOLLRDHUP != 0 {
                            self.on_hangup(slot);
                        }
                    }
                }
            }
            self.service
                .counters
                .reactor_busy_us
                .fetch_add(thread_cpu_us().saturating_sub(started), Ordering::Relaxed);
        }
    }

    fn on_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.insert_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failures (e.g. fd exhaustion): back
                // off briefly instead of spinning on the level-
                // triggered readiness.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        // Responses are written whole; waiting out Nagle would add
        // ~40ms of idle latency per round trip on loopback.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = stream.as_raw_fd();
        self.next_generation = self.next_generation.wrapping_add(1);
        let generation = self.next_generation;
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if ep_ctl(
            self.epfd,
            EPOLL_CTL_ADD,
            fd,
            EPOLLIN | EPOLLRDHUP,
            key_of(slot, generation),
        )
        .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn::new(stream, generation));
        let counters = &self.service.counters;
        counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        counters.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the eventfd and apply queued worker completions.
    fn on_wake(&mut self) {
        let mut counter = [0u8; 8];
        let _ = unsafe { read(self.wake_fd, counter.as_mut_ptr(), counter.len()) };
        let done: Vec<Completion> = std::mem::take(&mut *lock(&self.pool.completions));
        for completion in done {
            let slot = (completion.key >> 32) as usize;
            match conn_at(&mut self.conns, slot) {
                Some(conn) if conn.generation == completion.key as u32 => {
                    conn.out.extend_from_slice(&completion.bytes);
                    conn.in_flight = None;
                }
                // The connection died mid-run (its token was already
                // cancelled); drop the orphaned response.
                _ => continue,
            }
            // The completion freed pipeline capacity; requests beyond
            // the cap may be sitting unparsed in `buf` with `EPOLLIN`
            // dropped and the socket already drained — this is their
            // only way forward. (`flush` then re-arms interest.)
            self.parse_some(slot);
            self.pump(slot);
            self.flush(slot);
        }
    }

    /// Read until the socket drains, then parse, dispatch, and write.
    fn on_readable(&mut self, slot: usize) {
        let mut scratch = [0u8; 16 * 1024];
        let mut eof = false;
        loop {
            let Some(conn) = conn_at(&mut self.conns, slot) else {
                return;
            };
            if conn.read_closed || conn.saw_eof || conn.buf.len() >= MAX_BUF {
                // At the byte cap the rest stays in the kernel socket
                // buffer; `update_interest` drops `EPOLLIN` until
                // parsing frees space.
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.destroy(slot);
                    return;
                }
            }
        }
        self.parse_some(slot);
        self.pump(slot);
        self.flush(slot);
        if eof {
            self.on_hangup(slot);
        } else {
            self.update_interest(slot);
        }
    }

    /// Parse as many complete requests as the buffer holds, stopping
    /// at the pipeline cap, a `Connection: close` request, or a
    /// malformed prefix.
    fn parse_some(&mut self, slot: usize) {
        loop {
            let Some(conn) = conn_at(&mut self.conns, slot) else {
                return;
            };
            if conn.read_closed || conn.buf.is_empty() || conn.pending.len() >= MAX_PIPELINE {
                return;
            }
            match http::parse_request(&conn.buf) {
                http::Parsed::Incomplete => return,
                http::Parsed::Request(req, used) => {
                    conn.buf.drain(..used);
                    if !req.keep_alive() {
                        // Nothing after an explicit close is served.
                        conn.read_closed = true;
                        conn.buf.clear();
                    }
                    if conn.in_flight.is_some() || !conn.pending.is_empty() {
                        self.service
                            .counters
                            .pipelined_requests
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    conn.pending.push_back(req);
                }
                http::Parsed::Malformed(status, msg) => {
                    // Answer everything already queued, then this
                    // error, then close — the stream is unframed past
                    // this point.
                    conn.read_closed = true;
                    conn.buf.clear();
                    let body = error_body(&msg);
                    conn.fail = Some(http::encode_response(status, body.as_bytes(), false));
                    return;
                }
            }
        }
    }

    /// Dispatch the next queued request if none is in flight; once a
    /// closing connection has nothing left to serve, queue its final
    /// error (if any) and arrange the close.
    fn pump(&mut self, slot: usize) {
        let Some(conn) = conn_at(&mut self.conns, slot) else {
            return;
        };
        if conn.in_flight.is_some() {
            return;
        }
        if let Some(req) = conn.pending.pop_front() {
            let cancel = CancelToken::new();
            conn.in_flight = Some(cancel.clone());
            let keep_alive = req.keep_alive();
            self.pool.submit(Job {
                key: key_of(slot, conn.generation),
                req,
                keep_alive,
                cancel,
            });
        } else if conn.read_closed || conn.saw_eof {
            // Bytes still buffered at EOF (with parsing not otherwise
            // shut off) are a truncated head that can never complete:
            // the 400 goes out behind whatever was served.
            if conn.saw_eof && !conn.read_closed && !conn.buf.is_empty() && conn.fail.is_none() {
                let body = error_body("truncated request head");
                conn.fail = Some(http::encode_response(400, body.as_bytes(), false));
                conn.buf.clear();
            }
            if let Some(fail) = conn.fail.take() {
                conn.out.extend_from_slice(&fail);
            }
            conn.close_after_drain = true;
        }
    }

    /// Write queued response bytes until the socket blocks; close once
    /// drained if the connection is finished.
    fn flush(&mut self, slot: usize) {
        enum Outcome {
            Keep,
            Close,
        }
        let outcome = {
            let Some(conn) = conn_at(&mut self.conns, slot) else {
                return;
            };
            loop {
                if conn.written == conn.out.len() {
                    conn.out.clear();
                    conn.written = 0;
                    break if conn.close_after_drain {
                        Outcome::Close
                    } else {
                        Outcome::Keep
                    };
                }
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => break Outcome::Close,
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Outcome::Keep,
                    Err(_) => break Outcome::Close,
                }
            }
        };
        match outcome {
            Outcome::Close => self.destroy(slot),
            Outcome::Keep => self.update_interest(slot),
        }
    }

    /// The peer's write side closed (`EPOLLRDHUP` or a 0-byte read).
    /// That alone does not mean the responses are unwanted — a client
    /// may pipeline requests and `shutdown(SHUT_WR)` while reading —
    /// so fully-received requests are still served, after which the
    /// connection closes as if the last request said `Connection:
    /// close` (a truncated trailing head gets its 400 on the way out,
    /// from `pump`). Only an in-flight run with nothing further queued
    /// or parseable is a true mid-run disconnect: cancel and drop.
    fn on_hangup(&mut self, slot: usize) {
        // Parse what the final reads delivered so the cancel-vs-drain
        // decision sees every fully-received request.
        self.parse_some(slot);
        let cancel_mid_run = {
            let Some(conn) = conn_at(&mut self.conns, slot) else {
                return;
            };
            conn.saw_eof = true;
            conn.in_flight.is_some() && conn.pending.is_empty()
        };
        if cancel_mid_run {
            self.destroy(slot);
            return;
        }
        self.pump(slot);
        self.flush(slot);
    }

    /// Recompute and apply this connection's epoll interest set.
    fn update_interest(&mut self, slot: usize) {
        let epfd = self.epfd;
        let Some(conn) = conn_at(&mut self.conns, slot) else {
            return;
        };
        let mut want = 0;
        if !conn.read_closed
            && !conn.saw_eof
            && conn.pending.len() < MAX_PIPELINE
            && conn.buf.len() < MAX_BUF
        {
            want |= EPOLLIN;
        }
        if !conn.saw_eof {
            // Hangup interest stays armed while read is paused so a
            // mid-run disconnect still cancels; it drops after EOF so
            // a level-triggered RDHUP cannot spin the loop.
            want |= EPOLLRDHUP;
        }
        if conn.written < conn.out.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let key = key_of(slot, conn.generation);
            let _ = ep_ctl(epfd, EPOLL_CTL_MOD, fd, want, key);
        }
    }

    /// Tear a connection down: cancel any in-flight run (counting the
    /// disconnect), deregister, close, and free the slot.
    fn destroy(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let counters = &self.service.counters;
        if let Some(token) = conn.in_flight {
            token.cancel();
            counters.disconnect_cancels.fetch_add(1, Ordering::Relaxed);
        }
        let _ = ep_ctl(self.epfd, EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
        counters.connections_open.fetch_sub(1, Ordering::Relaxed);
        self.free.push(slot);
        // Dropping the stream closes the socket.
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe {
            close(self.wake_fd);
            close(self.epfd);
        }
    }
}
