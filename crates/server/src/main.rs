//! `tabular-serve` — the tabular algebra query service.
//!
//! ```sh
//! tabular-serve [--addr <host:port>] [--default-deadline-ms <N>]
//!               [--default-cell-budget <N>] [--workers <N>]
//! ```
//!
//! `--default-deadline-ms` and `--default-cell-budget` set the
//! admission-control defaults applied to every query request; clients
//! may override per request with `?deadline_ms=` / `?cell_budget=`.
//! `--workers` sizes the query worker pool behind the epoll reactor
//! (default: auto from the available parallelism).

use std::process::ExitCode;

use tabular_server::{Config, Server};

const USAGE: &str = "usage: tabular-serve [--addr <host:port>] \
[--default-deadline-ms <N>] [--default-cell-budget <N>] [--workers <N>]\n\
\n\
--addr <host:port>          listen address (default 127.0.0.1:7878)\n\
--default-deadline-ms <N>   admission default: per-request wall-clock deadline\n\
--default-cell-budget <N>   admission default: per-request cumulative cell budget\n\
--workers <N>               query worker threads behind the reactor (default: auto)\n\
Clients override per request with ?deadline_ms= / ?cell_budget= on\n\
POST /sessions/{id}/query.";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs an address")?.clone();
            }
            "--default-deadline-ms" => {
                let v = it.next().ok_or("--default-deadline-ms needs a number")?;
                config.default_deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --default-deadline-ms {v:?}"))?,
                );
            }
            "--default-cell-budget" => {
                let v = it.next().ok_or("--default-cell-budget needs a number")?;
                config.default_cell_budget = Some(
                    v.parse()
                        .map_err(|_| format!("bad --default-cell-budget {v:?}"))?,
                );
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a number")?;
                config.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            _ => return Err(format!("unknown flag {arg}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("tabular-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tabular-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("tabular-serve listening on {addr}"),
        Err(_) => eprintln!("tabular-serve listening"),
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tabular-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        let config = parse_args(&[
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--default-deadline-ms".into(),
            "250".into(),
            "--default-cell-budget".into(),
            "100000".into(),
            "--workers".into(),
            "8".into(),
        ])
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.default_deadline_ms, Some(250));
        assert_eq!(config.default_cell_budget, Some(100_000));
        assert_eq!(config.workers, 8);
        assert_eq!(Config::default().workers, 0, "0 means auto-size");
        assert!(parse_args(&["--addr".into()]).is_err());
        assert!(parse_args(&["--default-deadline-ms".into(), "soon".into()]).is_err());
        assert!(parse_args(&["--workers".into(), "many".into()]).is_err());
        assert!(parse_args(&["--nope".into()]).is_err());
    }
}
