//! **Theorem 4.4** (completeness), executably: every transformation (a
//! generic, permutation-invariant, determinate, constructive database
//! mapping) is computed by a tabular algebra program — via the normal form
//!
//! ```text
//!   P_Rep  ∘  P  ∘  P_Rep⁻¹
//! ```
//!
//! where `P_Rep` encodes the database into its canonical representation,
//! `P` is an `FO + while + new` program over the *fixed* scheme
//! `{Data, Map}`, and `P_Rep⁻¹` decodes the result (paper §4.1, proof of
//! Theorem 4.4).
//!
//! A [`Transformation`] packages the middle program; [`Transformation::apply`]
//! runs the pipeline with the native encoder/decoder, and
//! [`Transformation::apply_via_ta`] runs the middle program *through the
//! tabular algebra* using the Theorem 4.1 compiler — demonstrating that
//! the whole transformation is TA-computable.
//!
//! The shipped transformations show the power of the normal form: they
//! restructure *schema-level* features (table names, the row/column axes,
//! data-as-attributes matrix forms) that no query over the original
//! tables' fixed schemes could touch — [`matrix_to_relation`] and
//! [`relation_to_matrix`] in particular close Figure 1's
//! `SalesInfo3 ↔ SalesInfo1` loop, where the attributes are values and the
//! plain algebra's name-ranging parameters cannot reach them generically.

use crate::decode::decode;
use crate::encode::{data_name, encode, map_name};
use crate::error::Result;
use tabular_algebra::EvalLimits;
use tabular_core::Database;
use tabular_relational::compile::run_compiled;
use tabular_relational::expr::RelExpr;
use tabular_relational::program::FoProgram;
use tabular_relational::relation::RelDatabase;

/// A transformation in normal form: an `FO + while + new` program over the
/// canonical representation scheme `{Data(Tbl,Row,Col,Val), Map(Id,Entry)}`.
#[derive(Clone, Debug)]
pub struct Transformation {
    /// Human-readable label.
    pub label: &'static str,
    /// The middle program `P`.
    pub fo: FoProgram,
}

impl Transformation {
    /// Run `decode ∘ P ∘ encode` with the reference FO interpreter.
    pub fn apply(&self, db: &Database, max_while_iters: usize) -> Result<Database> {
        let rep = encode(db);
        let out = self.fo.run(&rep, max_while_iters)?;
        let data = out
            .get(data_name())
            .ok_or(crate::error::CanonError::MissingRelation(data_name()))?;
        let map = out
            .get(map_name())
            .ok_or(crate::error::CanonError::MissingRelation(map_name()))?;
        decode(&RelDatabase::from_relations([data.clone(), map.clone()]))
    }

    /// Run the same pipeline with the middle program compiled to tabular
    /// algebra (Theorem 4.1): the transformation is then computed by an
    /// actual TA program over the representation.
    pub fn apply_via_ta(&self, db: &Database, limits: &EvalLimits) -> Result<Database> {
        let rep = encode(db);
        let out = run_compiled(&self.fo, &rep, &["Data", "Map"], limits)?;
        decode(&out)
    }
}

/// Transformation: rename every table called `from` to `to`.
///
/// Over `Rep` this is a one-liner on `Map`, touching exactly the ids that
/// occur in `Data.Tbl` — a *schema* renaming, inexpressible as a query over
/// the original tables.
pub fn rename_tables(from: &str, to: &str) -> Transformation {
    // TblIds   := ρ_{Id←Tbl} π_Tbl(Data)
    // Affected := π_{Id,Entry} σ_{Id=Id2}(Map × ρ_{Id2←Id}(TblIds)) with Entry = from
    // Map      := (Map \ Affected) ∪ (π_Id(Affected) × {Entry: to})
    let tbl_ids = RelExpr::rel("Data").project(&["Tbl"]).rename("Tbl", "Id2");
    let affected = RelExpr::rel("Map")
        .times(tbl_ids)
        .select("Id", "Id2")
        .select_const("Entry", &format!("n:{from}"))
        .project(&["Id", "Entry"]);
    let renamed = RelExpr::rel("Affected")
        .project(&["Id"])
        .times(RelExpr::constant("Entry", &format!("n:{to}")));
    Transformation {
        label: "rename-tables",
        fo: FoProgram::new().assign("Affected", affected).assign(
            "Map",
            RelExpr::rel("Map")
                .minus(RelExpr::rel("Affected"))
                .union(renamed),
        ),
    }
}

/// Transformation: transpose *every* table of the database — swap the row
/// and column axes wholesale by exchanging `Data.Row` and `Data.Col`.
pub fn transpose_all() -> Transformation {
    Transformation {
        label: "transpose-all",
        fo: FoProgram::new().assign(
            "Data",
            RelExpr::rel("Data")
                .rename("Row", "Tmp")
                .rename("Col", "Row")
                .rename("Tmp", "Col"),
        ),
    }
}

/// Transformation: turn a 2-dimensional *matrix table* — row and column
/// names as data, like the bold `SalesInfo3` of Figure 1 — into its
/// relational form (`SalesInfo1`), with one row per non-⊥ cell.
///
/// This is the restructuring the plain algebra cannot reach generically
/// (the matrix's attributes are *values*, and operation parameters range
/// over names), and therefore the flagship use of the Theorem 4.4 normal
/// form: over `Rep`, the row attributes, column attributes, and cells are
/// all ordinary data, and the output table is assembled with `new`.
///
/// `src` names the matrix table; `row_attr`/`col_attr`/`val_attr` name the
/// output columns receiving the matrix's row names, column names, and
/// cell values (`Region`/`Part`/`Sold` for SalesInfo3 — note the matrix's
/// *columns* are parts).
///
/// The middle program uses a ⊥ constant (for the output's row
/// attributes), which the Theorem 4.1 compiler does not materialize
/// (names can be switched into data; ⊥ cannot become a table name), so
/// this transformation runs through [`Transformation::apply`] — the
/// reference pipeline — rather than `apply_via_ta`.
pub fn matrix_to_relation(
    src: &str,
    row_attr: &str,
    col_attr: &str,
    val_attr: &str,
) -> Transformation {
    // Data(Tbl, Row, Col, Val), Map(Id, Entry); all joins are
    // product+select+project.
    let src_tbl = RelExpr::rel("Data")
        .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "E"))
        .select("Tbl", "I")
        .select_const("E", &format!("n:{src}"))
        .project(&["Tbl"]);
    let d = RelExpr::rel("Data")
        .times(RelExpr::rel("SrcTbl").rename("Tbl", "Tbl2"))
        .select("Tbl", "Tbl2")
        .project(&["Tbl", "Row", "Col", "Val"]);
    let dv = RelExpr::rel("D")
        .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "VE"))
        .select("Val", "I")
        .project(&["Row", "Col", "VE"]);
    let dk = dv.clone().minus(dv.select_const("VE", "_"));
    let with_row = RelExpr::rel("DK")
        .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "RE"))
        .select("Row", "I")
        .project(&["Row", "Col", "VE", "RE"]);
    let with_col = RelExpr::rel("P0")
        .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "CE"))
        .select("Col", "I")
        .project(&["Row", "Col", "VE", "RE", "CE"]);

    // New column ids need a one-row seed; π over no attributes of the
    // (non-empty) pair relation provides it.
    let one = RelExpr::rel("P4").project(&[]);

    let cross = |ids: &str, val: &str, col: &str| {
        RelExpr::rel("P4")
            .project(&["NRow", ids])
            .rename(ids, "Val")
            .rename("NRow", "Row")
            .times(RelExpr::rel("T1").rename("NTbl", "Tbl"))
            .times(RelExpr::rel(col).rename(val, "Col"))
            .project(&["Tbl", "Row", "Col", "Val"])
    };
    let new_data = cross("VPart", "CP", "C1")
        .union(cross("VRegion", "CR", "C2"))
        .union(cross("VSold", "CS", "C3"));

    let map_of = |idrel: &str, idattr: &str, entry: RelExpr| {
        RelExpr::rel(idrel)
            .rename(idattr, "Id")
            .project(&["Id"])
            .times(entry)
            .project(&["Id", "Entry"])
    };
    let name_const = |n: &str| RelExpr::constant("Entry", &format!("n:{n}"));
    let new_map = map_of("T1", "NTbl", name_const(src))
        .union(map_of("C1", "CP", name_const(col_attr)))
        .union(map_of("C2", "CR", name_const(row_attr)))
        .union(map_of("C3", "CS", name_const(val_attr)))
        .union(map_of("P4", "NRow", RelExpr::constant("Entry", "_")))
        .union(
            RelExpr::rel("P4")
                .project(&["VPart", "CE"])
                .rename("VPart", "Id")
                .rename("CE", "Entry"),
        )
        .union(
            RelExpr::rel("P4")
                .project(&["VRegion", "RE"])
                .rename("VRegion", "Id")
                .rename("RE", "Entry"),
        )
        .union(
            RelExpr::rel("P4")
                .project(&["VSold", "VE"])
                .rename("VSold", "Id")
                .rename("VE", "Entry"),
        );

    Transformation {
        label: "matrix-to-relation",
        fo: FoProgram::new()
            .assign("SrcTbl", src_tbl)
            .assign("D", d)
            .assign("DK", dk)
            .assign("P0", with_row)
            .assign("P1", with_col)
            .new_ids("P2", "P1", "NRow")
            .new_ids("P3", "P2", "VPart")
            .new_ids("P3b", "P3", "VRegion")
            .new_ids("P4", "P3b", "VSold")
            .assign("One", one)
            .new_ids("T1", "One", "NTbl")
            .new_ids("C1", "One", "CP")
            .new_ids("C2", "One", "CR")
            .new_ids("C3", "One", "CS")
            .assign("Data", new_data)
            .assign("Map", new_map),
    }
}

/// The inverse of [`matrix_to_relation`]: turn a relational table into the
/// 2-dimensional matrix form (`SalesInfo1` → `SalesInfo3`), with the
/// `row_attr` values becoming row names, the `col_attr` values column
/// names, and the `val_attr` values the cells. Missing (row, column)
/// combinations become ⊥ cells, since tables are total mappings.
///
/// Like [`matrix_to_relation`], the program needs a ⊥ constant (for the
/// missing cells), so it runs through [`Transformation::apply`].
pub fn relation_to_matrix(
    src: &str,
    row_attr: &str,
    col_attr: &str,
    val_attr: &str,
) -> Transformation {
    // The column ids of src's three columns, located through Map.
    let col_of = |attr: &str| {
        RelExpr::rel("D")
            .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "E"))
            .select("Col", "I")
            .select_const("E", &format!("n:{attr}"))
            .project(&["Col"])
    };
    // Per-row entry under one column: (Row, <out>).
    let entry_of = |colrel: &str, out: &str| {
        RelExpr::rel("D")
            .times(RelExpr::rel(colrel).rename("Col", "C2"))
            .select("Col", "C2")
            .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", out))
            .select("Val", "I")
            .project(&["Row", out])
    };
    let src_tbl = RelExpr::rel("Data")
        .times(RelExpr::rel("Map").rename("Id", "I").rename("Entry", "E"))
        .select("Tbl", "I")
        .select_const("E", &format!("n:{src}"))
        .project(&["Tbl"]);
    let d = RelExpr::rel("Data")
        .times(RelExpr::rel("SrcTbl").rename("Tbl", "Tbl2"))
        .select("Tbl", "Tbl2")
        .project(&["Tbl", "Row", "Col", "Val"]);

    let tuples = RelExpr::rel("RowsOf")
        .times(RelExpr::rel("ColsOf").rename("Row", "R2"))
        .select("Row", "R2")
        .times(RelExpr::rel("ValsOf").rename("Row", "R3"))
        .select("Row", "R3")
        .project(&["RE", "PE", "SE"]);

    let grid = RelExpr::rel("NewRows").times(RelExpr::rel("NewCols"));
    let present = RelExpr::rel("Grid")
        .times(
            RelExpr::rel("Tuples")
                .rename("RE", "RE2")
                .rename("PE", "PE2"),
        )
        .select("RE", "RE2")
        .select("PE", "PE2")
        .project(&["RE", "NR", "PE", "NC", "SE"]);
    let missing =
        RelExpr::rel("Grid").minus(RelExpr::rel("Present").project(&["RE", "NR", "PE", "NC"]));

    let data_rows = |src_rel: &str| {
        RelExpr::rel(src_rel)
            .project(&["NR", "NC", "NV"])
            .rename("NR", "Row")
            .rename("NC", "Col")
            .rename("NV", "Val")
            .times(RelExpr::rel("T1").rename("NT", "Tbl"))
            .project(&["Tbl", "Row", "Col", "Val"])
    };
    let new_data = data_rows("PresentV").union(data_rows("MissingV"));

    let new_map = RelExpr::rel("T1")
        .rename("NT", "Id")
        .times(RelExpr::constant("Entry", &format!("n:{src}")))
        .project(&["Id", "Entry"])
        .union(
            RelExpr::rel("NewRows")
                .rename("NR", "Id")
                .rename("RE", "Entry")
                .project(&["Id", "Entry"]),
        )
        .union(
            RelExpr::rel("NewCols")
                .rename("NC", "Id")
                .rename("PE", "Entry")
                .project(&["Id", "Entry"]),
        )
        .union(
            RelExpr::rel("PresentV")
                .project(&["NV", "SE"])
                .rename("NV", "Id")
                .rename("SE", "Entry"),
        )
        .union(
            RelExpr::rel("MissingV")
                .project(&["NV"])
                .rename("NV", "Id")
                .times(RelExpr::constant("Entry", "_")),
        );

    Transformation {
        label: "relation-to-matrix",
        fo: FoProgram::new()
            .assign("SrcTbl", src_tbl)
            .assign("D", d)
            .assign("RowCol", col_of(row_attr))
            .assign("ColCol", col_of(col_attr))
            .assign("ValCol", col_of(val_attr))
            .assign("RowsOf", entry_of("RowCol", "RE"))
            .assign("ColsOf", entry_of("ColCol", "PE"))
            .assign("ValsOf", entry_of("ValCol", "SE"))
            .assign("Tuples", tuples)
            .assign("Regions", RelExpr::rel("Tuples").project(&["RE"]))
            .new_ids("NewRows", "Regions", "NR")
            .assign("Parts", RelExpr::rel("Tuples").project(&["PE"]))
            .new_ids("NewCols", "Parts", "NC")
            .assign("Grid", grid)
            .assign("Present", present)
            .assign("MissingG", missing)
            .new_ids("PresentV", "Present", "NV")
            .new_ids("MissingV", "MissingG", "NV")
            .assign("One", RelExpr::rel("Grid").project(&[]))
            .new_ids("T1", "One", "NT")
            .assign("Data", new_data)
            .assign("Map", new_map),
    }
}

/// Transformation: delete every table named `name` (its `Data` quadruples
/// are removed; dangling `Map` rows are harmless for decoding but are
/// removed as well, keeping the representation tight).
pub fn drop_tables(name: &str) -> Transformation {
    let tbl_ids_named = RelExpr::rel("Map")
        .select_const("Entry", &format!("n:{name}"))
        .project(&["Id"])
        .rename("Id", "Tbl");
    let dead = RelExpr::rel("Data")
        .times(tbl_ids_named.rename("Tbl", "Tbl2"))
        .select("Tbl", "Tbl2")
        .project(&["Tbl", "Row", "Col", "Val"]);
    // Map rows still referenced by the surviving Data.
    let live_ids = RelExpr::rel("Data")
        .project(&["Tbl"])
        .rename("Tbl", "Id")
        .union(RelExpr::rel("Data").project(&["Row"]).rename("Row", "Id"))
        .union(RelExpr::rel("Data").project(&["Col"]).rename("Col", "Id"))
        .union(RelExpr::rel("Data").project(&["Val"]).rename("Val", "Id"));
    Transformation {
        label: "drop-tables",
        fo: FoProgram::new()
            .assign("Dead", dead)
            .assign("Data", RelExpr::rel("Data").minus(RelExpr::rel("Dead")))
            .assign("Live", live_ids)
            .assign(
                "Map",
                RelExpr::rel("Map")
                    .times(RelExpr::rel("Live").rename("Id", "Id2"))
                    .select("Id", "Id2")
                    .project(&["Id", "Entry"]),
            ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;
    use tabular_core::Symbol;

    #[test]
    fn rename_tables_renames_only_table_names() {
        let db = fixtures::sales_info1_full();
        let out = rename_tables("Sales", "Orders").apply(&db, 1000).unwrap();
        assert!(out.table_str("Sales").is_none());
        let renamed = out.table_str("Orders").unwrap();
        let original = db.table_str("Sales").unwrap();
        let mut expected = original.clone();
        expected.set_name(Symbol::name("Orders"));
        assert!(renamed.equiv(&expected));
        // Other tables untouched.
        assert!(out.table_str("GrandTotal").is_some());
        assert_eq!(out.len(), db.len());
    }

    #[test]
    fn transpose_all_matches_per_table_transposition() {
        let db = fixtures::sales_info2_full();
        let out = transpose_all().apply(&db, 1000).unwrap();
        let expected = Database::from_tables(db.tables().iter().map(|t| t.transpose()));
        assert!(out.equiv(&expected), "got:\n{out}\nexpected:\n{expected}");
    }

    #[test]
    fn transpose_all_is_an_involution() {
        let db = fixtures::sales_info3();
        let t = transpose_all();
        let twice = t.apply(&t.apply(&db, 1000).unwrap(), 1000).unwrap();
        assert!(twice.equiv(&db));
    }

    #[test]
    fn drop_tables_removes_a_name_group() {
        let db = fixtures::sales_info4_full(); // five tables named Sales
        let out = drop_tables("Sales").apply(&db, 1000);
        // All tables are named Sales: dropping them leaves an empty Data —
        // decode then yields an empty database, but Data/Map must exist.
        let out = out.unwrap();
        assert!(out.is_empty());

        let db2 = fixtures::sales_info1_full();
        let out2 = drop_tables("GrandTotal").apply(&db2, 1000).unwrap();
        assert_eq!(out2.len(), db2.len() - 1);
        assert!(out2.table_str("GrandTotal").is_none());
        assert!(out2.table_str("Sales").is_some());
    }

    #[test]
    fn matrix_to_relation_turns_info3_into_info1() {
        // The Figure 1 claim closed: SalesInfo3 (row/column names are
        // data) restructures into SalesInfo1 via the normal form.
        let db = fixtures::sales_info3();
        let t = matrix_to_relation("Sales", "Region", "Part", "Sold");
        let out = t.apply(&db, 1000).unwrap();
        assert!(
            out.equiv(&fixtures::sales_info1()),
            "got:\n{out}\nexpected:\n{}",
            fixtures::sales_info1()
        );
    }

    #[test]
    fn relation_to_matrix_turns_info1_into_info3() {
        let db = fixtures::sales_info1();
        let t = relation_to_matrix("Sales", "Region", "Part", "Sold");
        let out = t.apply(&db, 1000).unwrap();
        assert!(
            out.equiv(&fixtures::sales_info3()),
            "got:\n{out}\nexpected:\n{}",
            fixtures::sales_info3()
        );
    }

    #[test]
    fn matrix_and_relation_transformations_are_mutually_inverse() {
        let db = fixtures::sales_info3();
        let to_rel = matrix_to_relation("Sales", "Region", "Part", "Sold");
        let to_mat = relation_to_matrix("Sales", "Region", "Part", "Sold");
        let round = to_mat
            .apply(&to_rel.apply(&db, 1000).unwrap(), 1000)
            .unwrap();
        assert!(round.equiv(&db));
        let db1 = fixtures::sales_info1();
        let round1 = to_rel
            .apply(&to_mat.apply(&db1, 1000).unwrap(), 1000)
            .unwrap();
        assert!(round1.equiv(&db1));
    }

    #[test]
    fn matrix_to_relation_keeps_only_nonnull_cells() {
        let db = fixtures::sales_info3();
        let t = matrix_to_relation("Sales", "Region", "Part", "Sold");
        let out = t.apply(&db, 1000).unwrap();
        let table = out.table_str("Sales").unwrap();
        // 8 non-⊥ cells in the bold SalesInfo3 (the 4 ⊥ cells drop out).
        assert_eq!(table.height(), 8);
        assert!(table.is_relational());
    }

    #[test]
    fn normal_form_runs_through_tabular_algebra_too() {
        // Theorem 4.4's pipeline with the Theorem 4.1 compiler in the
        // middle: the transformation is computed by a real TA program.
        let db = fixtures::sales_info1();
        let t = rename_tables("Sales", "Orders");
        let native = t.apply(&db, 1000).unwrap();
        let via_ta = t.apply_via_ta(&db, &EvalLimits::default()).unwrap();
        assert!(
            native.equiv(&via_ta),
            "native:\n{native}\nvia TA:\n{via_ta}"
        );
    }

    #[test]
    fn transpose_all_via_ta() {
        let db = fixtures::sales_info1();
        let t = transpose_all();
        let native = t.apply(&db, 1000).unwrap();
        let via_ta = t.apply_via_ta(&db, &EvalLimits::default()).unwrap();
        assert!(native.equiv(&via_ta));
    }
}
