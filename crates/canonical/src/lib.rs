//! # tabular-canonical
//!
//! The **canonical representation** machinery of the PODS 1996 paper (§4.1):
//!
//! * [`encode`] / [`decode`] — **Lemmas 4.2 / 4.3**: every tabular database
//!   encodes into a relational database over the fixed scheme
//!   `Rep = {Data(Tbl,Row,Col,Val), Map(Id,Entry)}` and back, exactly up to
//!   row/column permutations and the choice of occurrence identifiers;
//! * [`ta_programs`] — a generator emitting an actual *tabular algebra
//!   program* `P_Rep` performing the encoding for relational-shaped schemes
//!   (the executable core of Lemma 4.2);
//! * [`normal_form`] — **Theorem 4.4**: transformations in the normal form
//!   `P_Rep ∘ P ∘ P_Rep⁻¹` with `P` an `FO + while + new` program over
//!   `Rep`, runnable both natively and through the Theorem 4.1 compiler.
//!
//! ```
//! use tabular_canonical::{encode::encode, decode::decode};
//! use tabular_core::fixtures;
//!
//! let db = fixtures::sales_info2_full();
//! let back = decode(&encode(&db)).unwrap();
//! assert!(back.equiv(&db));
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod error;
pub mod normal_form;
pub mod ta_programs;

pub use decode::decode;
pub use encode::{check_fds, encode};
pub use error::CanonError;
pub use normal_form::{matrix_to_relation, relation_to_matrix, Transformation};
pub use ta_programs::{encode_program, EncodeScheme};
