//! **Lemma 4.2, executably**: a generator emitting a *tabular algebra
//! program* `P_Rep` that computes (the natural tabular representation of)
//! the canonical representation `{Data, Map}` of a database — the paper's
//! `P^Rep`, "only dependent upon the scheme N".
//!
//! Scope of the demonstration (DESIGN.md §4): the generated program
//! handles databases of *relational-shaped* tables whose attributes are
//! known names — which covers the reduction actually used by the
//! completeness proof, where `P_Rep` is composed with programs over the
//! fixed relational scheme `Rep`. The fully width-polymorphic program of
//! the unavailable technical report (which also encodes tables with data
//! in attribute positions, via data-driven switching) is substituted by
//! the native [`crate::encode`]; both agree on their common domain, which
//! the tests check via `decode ∘ run(P_Rep) = id`.
//!
//! The construction leans on exactly the derived tricks the paper
//! sketches in §3.3–3.4:
//!
//! * a **one-row table** is obtained by projecting onto no columns and
//!   cleaning up (all rows join);
//! * a **constant table** holding an arbitrary known symbol as *data* is
//!   obtained by naming a scratch table with that symbol and switching on
//!   a fresh tagged value, which drops the name into a data position;
//! * occurrence **identifiers** are minted with tuple-new;
//! * `Data` / `Map` accumulate with classical union (union + purge +
//!   clean-up).

use crate::error::{CanonError, Result};
use tabular_algebra::param::Item;
use tabular_algebra::{OpKind, Param, Program};
use tabular_core::{Symbol, SymbolSet};

/// The shape information `P_Rep` is generated from: one entry per table —
/// its name and its (distinct, named) attributes.
#[derive(Clone, Debug)]
pub struct EncodeScheme {
    /// `(table name, attributes)` pairs.
    pub tables: Vec<(Symbol, Vec<Symbol>)>,
}

impl EncodeScheme {
    /// Build from string names.
    pub fn new(tables: &[(&str, &[&str])]) -> EncodeScheme {
        EncodeScheme {
            tables: tables
                .iter()
                .map(|(n, attrs)| {
                    (
                        Symbol::name(n),
                        attrs.iter().map(|a| Symbol::name(a)).collect(),
                    )
                })
                .collect(),
        }
    }
}

/// Thin wrapper adding nothing over the shared emitter; kept as a local
/// alias so the construction reads like the lemma's proof sketch.
use tabular_algebra::derived::Emitter;

fn attr_set(attrs: &[Symbol]) -> Param {
    Param {
        positive: attrs.iter().map(|&a| Item::Sym(a)).collect(),
        negative: vec![],
    }
}

/// Reserved names of the `Rep` scheme that user tables must avoid.
fn reserved() -> SymbolSet {
    SymbolSet::from_iter(
        ["Data", "Map", "Tbl", "Row", "Col", "Val", "Id", "Entry"]
            .iter()
            .map(|s| Symbol::name(s)),
    )
}

/// Generate `P_Rep` for the given scheme. Preconditions (checked where
/// statically possible, documented otherwise):
///
/// * every listed table is relational-shaped (⊥ row attributes, distinct
///   name attributes matching the scheme) and has at least one row;
/// * no table or attribute name collides with the `Rep` scheme names
///   (`Data`, `Map`, `Tbl`, `Row`, `Col`, `Val`, `Id`, `Entry`).
///
/// Running the program leaves the representation in tables named `Data`
/// and `Map`.
pub fn encode_program(scheme: &EncodeScheme) -> Result<Program> {
    let bad = reserved();
    for (name, attrs) in &scheme.tables {
        if bad.contains(*name) || attrs.iter().any(|a| bad.contains(*a)) {
            return Err(CanonError::UnsupportedShape(format!(
                "table {name}: names colliding with the Rep scheme"
            )));
        }
        let distinct: SymbolSet = attrs.iter().copied().collect();
        if distinct.len() != attrs.len() || attrs.is_empty() {
            return Err(CanonError::UnsupportedShape(format!(
                "table {name}: attributes must be distinct and non-empty"
            )));
        }
    }

    let mut e = Emitter::new();

    // Phase 0: copy every source out of harm's way — constant construction
    // transiently overwrites user-named tables.
    let copies: Vec<Symbol> = scheme
        .tables
        .iter()
        .map(|(name, _)| {
            let s = e.fresh();
            e.assign(s, OpKind::Copy, &[*name]);
            s
        })
        .collect();

    let mut data_acc: Option<Symbol> = None;
    let mut map_acc: Option<Symbol> = None;

    for ((name, attrs), src) in scheme.tables.iter().zip(&copies) {
        let one = e.one_row(*src);

        // Table occurrence id and its Map row.
        let i1 = e.fresh();
        e.assign(
            i1,
            OpKind::TupleNew {
                attr: Param::name("Tbl"),
            },
            &[one],
        );
        let c_name = e.constant(*name, Symbol::name("Entry"), one);
        let i1_id = e.fresh();
        e.assign(
            i1_id,
            OpKind::Rename {
                from: Param::name("Tbl"),
                to: Param::name("Id"),
            },
            &[i1],
        );
        let map_t = e.fresh();
        e.assign(map_t, OpKind::Product, &[i1_id, c_name]);
        map_acc = Some(e.union_into(map_acc, map_t));

        // Row occurrence ids; their Map entries are the ⊥ row attributes,
        // materialized by padding with an empty Entry-attributed table.
        let r1 = e.fresh();
        e.assign(
            r1,
            OpKind::TupleNew {
                attr: Param::name("Row"),
            },
            &[*src],
        );
        let row_ids = e.fresh();
        e.assign(
            row_ids,
            OpKind::Project {
                attrs: Param::name("Row"),
            },
            &[r1],
        );
        let row_ids_id = e.fresh();
        e.assign(
            row_ids_id,
            OpKind::Rename {
                from: Param::name("Row"),
                to: Param::name("Id"),
            },
            &[row_ids],
        );
        let empty_entry = e.fresh();
        e.assign(empty_entry, OpKind::Difference, &[c_name, c_name]);
        let map_rows = e.fresh();
        e.assign(map_rows, OpKind::Union, &[row_ids_id, empty_entry]);
        map_acc = Some(e.union_into(map_acc, map_rows));

        // Per attribute: a column id, its Map row, the cell ids with their
        // Map rows, and the Data quadruples.
        for &a in attrs {
            let cj = e.fresh();
            e.assign(
                cj,
                OpKind::TupleNew {
                    attr: Param::name("Col"),
                },
                &[one],
            );
            let c_attr = e.constant(a, Symbol::name("Entry"), one);
            let cj_id = e.fresh();
            e.assign(
                cj_id,
                OpKind::Rename {
                    from: Param::name("Col"),
                    to: Param::name("Id"),
                },
                &[cj],
            );
            let map_col = e.fresh();
            e.assign(map_col, OpKind::Product, &[cj_id, c_attr]);
            map_acc = Some(e.union_into(map_acc, map_col));

            let dj0 = e.fresh();
            e.assign(
                dj0,
                OpKind::Project {
                    attrs: attr_set(&[Symbol::name("Row"), a]),
                },
                &[r1],
            );
            let dj1 = e.fresh();
            e.assign(
                dj1,
                OpKind::Rename {
                    from: Param::sym(a),
                    to: Param::name("Entry"),
                },
                &[dj0],
            );
            let dj = e.fresh();
            e.assign(
                dj,
                OpKind::TupleNew {
                    attr: Param::name("Val"),
                },
                &[dj1],
            );
            let map_cells0 = e.fresh();
            e.assign(
                map_cells0,
                OpKind::Project {
                    attrs: attr_set(&[Symbol::name("Val"), Symbol::name("Entry")]),
                },
                &[dj],
            );
            let map_cells = e.fresh();
            e.assign(
                map_cells,
                OpKind::Rename {
                    from: Param::name("Val"),
                    to: Param::name("Id"),
                },
                &[map_cells0],
            );
            map_acc = Some(e.union_into(map_acc, map_cells));

            let data0 = e.fresh();
            e.assign(
                data0,
                OpKind::Project {
                    attrs: attr_set(&[Symbol::name("Row"), Symbol::name("Val")]),
                },
                &[dj],
            );
            let data1 = e.fresh();
            e.assign(data1, OpKind::Product, &[data0, cj]);
            let data2 = e.fresh();
            e.assign(data2, OpKind::Product, &[data1, i1]);
            data_acc = Some(e.union_into(data_acc, data2));
        }
    }

    let data_acc = data_acc.ok_or_else(|| {
        CanonError::UnsupportedShape("encode_program needs at least one table".into())
    })?;
    let map_acc = map_acc.expect("map accumulates whenever data does");
    e.assign(Symbol::name("Data"), OpKind::Copy, &[data_acc]);
    e.assign(Symbol::name("Map"), OpKind::Copy, &[map_acc]);

    Ok(e.into_program())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::encode::{check_fds, data_name, map_name};
    use tabular_algebra::{run_outputs, EvalLimits};
    use tabular_core::{fixtures, Database};
    use tabular_relational::relation::RelDatabase;

    fn run_encode(scheme: &EncodeScheme, db: &Database) -> RelDatabase {
        let p = encode_program(scheme).unwrap();
        let out = run_outputs(&p, db, &[data_name(), map_name()], &EvalLimits::default()).unwrap();
        RelDatabase::from_tabular(&out, &[data_name(), map_name()]).unwrap()
    }

    #[test]
    fn ta_encode_of_sales_relation_decodes_back() {
        let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
        let db = fixtures::sales_info1();
        let rep = run_encode(&scheme, &db);
        assert_eq!(check_fds(&rep), None);
        let back = decode(&rep).unwrap();
        assert!(back.equiv(&db), "decode(P_Rep(D)) ≠ D:\n{back}\nvs\n{db}");
    }

    #[test]
    fn ta_encode_matches_native_encode_in_size() {
        let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
        let db = fixtures::sales_info1();
        let rep_ta = run_encode(&scheme, &db);
        let rep_native = crate::encode::encode(&db);
        for name in [data_name(), map_name()] {
            assert_eq!(
                rep_ta.get(name).unwrap().len(),
                rep_native.get(name).unwrap().len(),
                "{name} sizes differ"
            );
        }
    }

    #[test]
    fn ta_encode_handles_multiple_tables() {
        let scheme = EncodeScheme::new(&[
            ("Sales", &["Part", "Region", "Sold"]),
            ("TotalPartSales", &["Part", "Total"]),
            ("TotalRegionSales", &["Region", "Total"]),
            ("GrandTotal", &["Total"]),
        ]);
        let db = fixtures::sales_info1_full();
        let rep = run_encode(&scheme, &db);
        let back = decode(&rep).unwrap();
        assert!(back.equiv(&db));
    }

    #[test]
    fn ta_encode_scales() {
        let rel = fixtures::make_sales_relation(10, 6);
        let db = Database::from_tables([rel]);
        let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
        let back = decode(&run_encode(&scheme, &db)).unwrap();
        assert!(back.equiv(&db));
    }

    #[test]
    fn scheme_collisions_are_rejected() {
        assert!(matches!(
            encode_program(&EncodeScheme::new(&[("Data", &["A"])])),
            Err(CanonError::UnsupportedShape(_))
        ));
        assert!(matches!(
            encode_program(&EncodeScheme::new(&[("R", &["Id"])])),
            Err(CanonError::UnsupportedShape(_))
        ));
        assert!(matches!(
            encode_program(&EncodeScheme::new(&[("R", &[])])),
            Err(CanonError::UnsupportedShape(_))
        ));
        assert!(matches!(
            encode_program(&EncodeScheme { tables: vec![] }),
            Err(CanonError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn program_depends_only_on_the_scheme() {
        let scheme = EncodeScheme::new(&[("Sales", &["Part", "Region", "Sold"])]);
        let p1 = encode_program(&scheme).unwrap();
        let p2 = encode_program(&scheme).unwrap();
        // Statement count is a function of the scheme alone.
        assert_eq!(p1.len(), p2.len());
    }
}
