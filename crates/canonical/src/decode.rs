//! **Lemma 4.3**: decoding a canonical representation back into a tabular
//! database — `D = Rep⁻¹(Rep(D))` up to permutations of the non-attribute
//! rows and columns (which is exactly the paper's notion of database
//! equality, §4.1 condition (ii)).

use crate::encode::{data_name, map_name};
use crate::error::{CanonError, Result};
use std::collections::HashMap;
use tabular_core::{Database, Symbol, Table};
use tabular_relational::relation::RelDatabase;

/// Reconstruct the tabular database from its canonical representation.
///
/// Row and column orders within each reconstructed table follow the
/// canonical order of their occurrence identifiers, so the result is
/// deterministic for a given `Rep` instance and equal to the original
/// database up to row/column permutations.
pub fn decode(rep: &RelDatabase) -> Result<Database> {
    let data = rep
        .get(data_name())
        .ok_or(CanonError::MissingRelation(data_name()))?;
    let map = rep
        .get(map_name())
        .ok_or(CanonError::MissingRelation(map_name()))?;
    if data.arity() != 4 {
        return Err(CanonError::BadArity {
            relation: data_name(),
            expected: 4,
            got: data.arity(),
        });
    }
    if map.arity() != 2 {
        return Err(CanonError::BadArity {
            relation: map_name(),
            expected: 2,
            got: map.arity(),
        });
    }

    // Resolve columns by attribute name so that attribute order (which a
    // TA-produced representation need not preserve) is irrelevant.
    let (c_tbl, c_row, c_col, c_val) = (
        data.attr_index(Symbol::name("Tbl"))?,
        data.attr_index(Symbol::name("Row"))?,
        data.attr_index(Symbol::name("Col"))?,
        data.attr_index(Symbol::name("Val"))?,
    );
    let (c_id, c_entry) = (
        map.attr_index(Symbol::name("Id"))?,
        map.attr_index(Symbol::name("Entry"))?,
    );

    let mut entries: HashMap<Symbol, Symbol> = HashMap::new();
    for t in map.tuples() {
        if let Some(&prev) = entries.get(&t[c_id]) {
            if prev != t[c_entry] {
                return Err(CanonError::FdViolation("Id -> Entry"));
            }
        }
        entries.insert(t[c_id], t[c_entry]);
    }
    let lookup = |id: Symbol| -> Result<Symbol> {
        entries.get(&id).copied().ok_or(CanonError::UnmappedId(id))
    };

    // Group Data by table occurrence id, collecting row/column ids in
    // first-appearance order of the (sorted) Data relation — deterministic.
    struct Build {
        rows: Vec<Symbol>,
        cols: Vec<Symbol>,
        cells: HashMap<(Symbol, Symbol), Symbol>,
    }
    let mut tables: Vec<(Symbol, Build)> = Vec::new();
    for t in data.tuples() {
        let (tbl, row, col, val) = (t[c_tbl], t[c_row], t[c_col], t[c_val]);
        let build = match tables.iter_mut().find(|(id, _)| *id == tbl) {
            Some((_, b)) => b,
            None => {
                tables.push((
                    tbl,
                    Build {
                        rows: Vec::new(),
                        cols: Vec::new(),
                        cells: HashMap::new(),
                    },
                ));
                &mut tables.last_mut().expect("just pushed").1
            }
        };
        if !build.rows.contains(&row) {
            build.rows.push(row);
        }
        if !build.cols.contains(&col) {
            build.cols.push(col);
        }
        if build
            .cells
            .insert((row, col), val)
            .is_some_and(|p| p != val)
        {
            return Err(CanonError::FdViolation("Tbl, Row, Col -> Val"));
        }
    }

    let mut out = Database::new();
    for (tbl_id, build) in tables {
        let mut table = Table::new(lookup(tbl_id)?, build.rows.len(), build.cols.len());
        for (j, &col_id) in build.cols.iter().enumerate() {
            table.set(0, j + 1, lookup(col_id)?);
        }
        for (i, &row_id) in build.rows.iter().enumerate() {
            table.set(i + 1, 0, lookup(row_id)?);
            for (j, &col_id) in build.cols.iter().enumerate() {
                let val_id = build.cells.get(&(row_id, col_id)).copied().ok_or(
                    CanonError::IncompleteGrid {
                        table: tbl_id,
                        row: row_id,
                        col: col_id,
                    },
                )?;
                table.set(i + 1, j + 1, lookup(val_id)?);
            }
        }
        out.insert(table);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use tabular_core::fixtures;
    use tabular_relational::relation::Relation;

    #[test]
    fn round_trip_on_all_figure_1_databases() {
        for db in [
            fixtures::sales_info1(),
            fixtures::sales_info1_full(),
            fixtures::sales_info2(),
            fixtures::sales_info2_full(),
            fixtures::sales_info3(),
            fixtures::sales_info3_full(),
            fixtures::sales_info4(),
            fixtures::sales_info4_full(),
        ] {
            let back = decode(&encode(&db)).unwrap();
            assert!(back.equiv(&db), "round trip failed:\n{back}");
        }
    }

    #[test]
    fn round_trip_preserves_multi_table_names() {
        let db = fixtures::make_sales_info4(6, 5);
        let back = decode(&encode(&db)).unwrap();
        assert!(back.equiv(&db));
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn decode_requires_both_relations() {
        let rep = RelDatabase::from_relations([Relation::new("Map", &["Id", "Entry"], &[])]);
        assert!(matches!(decode(&rep), Err(CanonError::MissingRelation(_))));
    }

    #[test]
    fn decode_rejects_wrong_arity() {
        let rep = RelDatabase::from_relations([
            Relation::new("Data", &["Tbl", "Row", "Col"], &[]),
            Relation::new("Map", &["Id", "Entry"], &[]),
        ]);
        assert!(matches!(decode(&rep), Err(CanonError::BadArity { .. })));
    }

    #[test]
    fn decode_rejects_unmapped_ids() {
        let rep = RelDatabase::from_relations([
            Relation::new(
                "Data",
                &["Tbl", "Row", "Col", "Val"],
                &[&["t", "r", "c", "v"]],
            ),
            Relation::new("Map", &["Id", "Entry"], &[]),
        ]);
        assert!(matches!(decode(&rep), Err(CanonError::UnmappedId(_))));
    }

    #[test]
    fn decode_rejects_incomplete_grids() {
        // Two rows, two cols, but only 3 of the 4 cells present.
        let rep = RelDatabase::from_relations([
            Relation::new(
                "Data",
                &["Tbl", "Row", "Col", "Val"],
                &[
                    &["t", "r1", "c1", "v1"],
                    &["t", "r1", "c2", "v2"],
                    &["t", "r2", "c1", "v3"],
                ],
            ),
            Relation::new(
                "Map",
                &["Id", "Entry"],
                &[
                    &["t", "T"],
                    &["r1", "_"],
                    &["r2", "_"],
                    &["c1", "A"],
                    &["c2", "B"],
                    &["v1", "1"],
                    &["v2", "2"],
                    &["v3", "3"],
                ],
            ),
        ]);
        assert!(matches!(
            decode(&rep),
            Err(CanonError::IncompleteGrid { .. })
        ));
    }

    #[test]
    fn decode_is_insensitive_to_id_spelling() {
        // Hand-written ids (not interner-fresh) decode fine.
        let rep = RelDatabase::from_relations([
            Relation::new(
                "Data",
                &["Tbl", "Row", "Col", "Val"],
                &[&["t", "r", "c", "v"]],
            ),
            Relation::new(
                "Map",
                &["Id", "Entry"],
                &[&["t", "n:T"], &["r", "_"], &["c", "n:A"], &["v", "42"]],
            ),
        ]);
        let db = decode(&rep).unwrap();
        let t = db.table_str("T").unwrap();
        assert_eq!(t.get(1, 1), Symbol::value("42"));
        assert!(t.get(1, 0).is_null());
    }
}
