//! Errors for canonical-representation encoding/decoding.

use tabular_core::Symbol;

/// Errors from decoding a canonical representation or running the
/// normal-form pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// `Data` or `Map` is missing.
    MissingRelation(Symbol),
    /// A `Rep` relation has the wrong arity.
    BadArity {
        /// Which relation.
        relation: Symbol,
        /// Expected arity.
        expected: usize,
        /// Found arity.
        got: usize,
    },
    /// A functional dependency of `Rep` is violated.
    FdViolation(&'static str),
    /// An occurrence id appears in `Data` but not in `Map`.
    UnmappedId(Symbol),
    /// A table's (row, column) grid has a hole — `Data` must be total on
    /// rows × columns per table, since tables are total mappings.
    IncompleteGrid {
        /// Table occurrence id.
        table: Symbol,
        /// Row occurrence id.
        row: Symbol,
        /// Column occurrence id.
        col: Symbol,
    },
    /// `encode_program` preconditions violated (see its docs).
    UnsupportedShape(String),
    /// An embedded relational error.
    Rel(tabular_relational::RelError),
    /// An embedded tabular algebra error.
    Tabular(tabular_algebra::AlgebraError),
}

impl std::fmt::Display for CanonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanonError::MissingRelation(r) => write!(f, "canonical representation lacks {r}"),
            CanonError::BadArity {
                relation,
                expected,
                got,
            } => write!(f, "{relation} has arity {got}, expected {expected}"),
            CanonError::FdViolation(fd) => write!(f, "functional dependency {fd} violated"),
            CanonError::UnmappedId(id) => write!(f, "occurrence id {id} has no Map entry"),
            CanonError::IncompleteGrid { table, row, col } => write!(
                f,
                "table {table}: no Data tuple for row {row}, column {col}"
            ),
            CanonError::UnsupportedShape(msg) => write!(f, "unsupported shape: {msg}"),
            CanonError::Rel(e) => write!(f, "{e}"),
            CanonError::Tabular(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CanonError {}

impl From<tabular_relational::RelError> for CanonError {
    fn from(e: tabular_relational::RelError) -> CanonError {
        CanonError::Rel(e)
    }
}

impl From<tabular_algebra::AlgebraError> for CanonError {
    fn from(e: tabular_algebra::AlgebraError) -> CanonError {
        CanonError::Tabular(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CanonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CanonError::FdViolation("Id -> Entry")
            .to_string()
            .contains("Id -> Entry"));
    }
}
