//! **Lemma 4.2**: the canonical representation `Rep(D)` of a tabular
//! database — a relational database over the fixed scheme
//!
//! ```text
//! Rep = { Data(Tbl, Row, Col, Val),  Map(Id, Entry) }
//! ```
//!
//! with the functional dependencies `Id → Entry` and `Tbl, Row, Col → Val`,
//! such that a table `ρ` has entries `ρ₀⁰, ρᵢ⁰, ρ₀ʲ, ρᵢʲ` iff there are
//! occurrence identifiers `id₁..id₄` with `(id₁,ρ₀⁰), (id₂,ρᵢ⁰),
//! (id₃,ρ₀ʲ), (id₄,ρᵢʲ) ∈ Map` and `(id₁,id₂,id₃,id₄) ∈ Data`.
//!
//! Every occurrence gets a *unique* id, so tables of variable width encode
//! into fixed-arity relations — the pivot on which the completeness proof
//! of Theorem 4.4 turns.

use tabular_core::{Database, Symbol, Table};
use tabular_relational::relation::{RelDatabase, Relation};

/// Name of the `Data` relation.
pub fn data_name() -> Symbol {
    Symbol::name("Data")
}

/// Name of the `Map` relation.
pub fn map_name() -> Symbol {
    Symbol::name("Map")
}

/// Compute `Rep(D)`.
///
/// Identifiers are fresh values from the interner's reserved namespace —
/// the same mechanism as the tagging operations, realizing the paper's
/// "unique up to the particular choice of occurrence identifiers".
///
/// Degenerate tables (height 0 or width 0) have no data occurrences and
/// therefore no `Data` rows; they are outside the domain of `Rep` exactly
/// as in the paper, where every example table is non-degenerate. See
/// [`crate::decode`] for the inverse.
pub fn encode(db: &Database) -> RelDatabase {
    let mut data = Relation::empty(
        data_name(),
        vec![
            Symbol::name("Tbl"),
            Symbol::name("Row"),
            Symbol::name("Col"),
            Symbol::name("Val"),
        ],
    )
    .expect("static attrs");
    let mut map = Relation::empty(map_name(), vec![Symbol::name("Id"), Symbol::name("Entry")])
        .expect("static attrs");

    for table in db.tables() {
        encode_table(table, &mut data, &mut map);
    }
    RelDatabase::from_relations([data, map])
}

fn encode_table(table: &Table, data: &mut Relation, map: &mut Relation) {
    let id1 = Symbol::fresh_value();
    map.insert(vec![id1, table.name()]).expect("arity");
    let row_ids: Vec<Symbol> = (1..=table.height())
        .map(|i| {
            let id = Symbol::fresh_value();
            map.insert(vec![id, table.get(i, 0)]).expect("arity");
            id
        })
        .collect();
    let col_ids: Vec<Symbol> = (1..=table.width())
        .map(|j| {
            let id = Symbol::fresh_value();
            map.insert(vec![id, table.col_attr(j)]).expect("arity");
            id
        })
        .collect();
    for i in 1..=table.height() {
        for j in 1..=table.width() {
            let id4 = Symbol::fresh_value();
            map.insert(vec![id4, table.get(i, j)]).expect("arity");
            data.insert(vec![id1, row_ids[i - 1], col_ids[j - 1], id4])
                .expect("arity");
        }
    }
}

/// Check the `Rep` functional dependencies on an encoded database:
/// `Id → Entry` in `Map` and `Tbl, Row, Col → Val` in `Data`. Returns the
/// violated dependency's name if any.
pub fn check_fds(rep: &RelDatabase) -> Option<&'static str> {
    use std::collections::HashMap;
    if let Some(map) = rep.get(map_name()) {
        let mut seen: HashMap<Symbol, Symbol> = HashMap::new();
        for t in map.tuples() {
            if let Some(&prev) = seen.get(&t[0]) {
                if prev != t[1] {
                    return Some("Id -> Entry");
                }
            }
            seen.insert(t[0], t[1]);
        }
    }
    if let Some(data) = rep.get(data_name()) {
        let mut seen: HashMap<(Symbol, Symbol, Symbol), Symbol> = HashMap::new();
        for t in data.tuples() {
            let key = (t[0], t[1], t[2]);
            if let Some(&prev) = seen.get(&key) {
                if prev != t[3] {
                    return Some("Tbl, Row, Col -> Val");
                }
            }
            seen.insert(key, t[3]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    #[test]
    fn encode_counts_occurrences() {
        let db = fixtures::sales_info1(); // one 8×3 table
        let rep = encode(&db);
        let data = rep.get(data_name()).unwrap();
        let map = rep.get(map_name()).unwrap();
        assert_eq!(data.len(), 8 * 3);
        // ids: 1 table + 8 rows + 3 cols + 24 cells.
        assert_eq!(map.len(), 1 + 8 + 3 + 24);
    }

    #[test]
    fn encode_satisfies_the_functional_dependencies() {
        for db in [
            fixtures::sales_info1_full(),
            fixtures::sales_info2_full(),
            fixtures::sales_info3_full(),
            fixtures::sales_info4_full(),
        ] {
            assert_eq!(check_fds(&encode(&db)), None);
        }
    }

    #[test]
    fn variable_width_tables_encode_into_fixed_arity() {
        let db = fixtures::sales_info2(); // 5-wide table
        let rep = encode(&db);
        assert_eq!(rep.get(data_name()).unwrap().arity(), 4);
        assert_eq!(rep.get(map_name()).unwrap().arity(), 2);
    }

    #[test]
    fn multiple_same_named_tables_get_distinct_table_ids() {
        let db = fixtures::sales_info4(); // four tables named Sales
        let rep = encode(&db);
        let data = rep.get(data_name()).unwrap();
        let tbl_ids: std::collections::HashSet<Symbol> = data.tuples().map(|t| t[0]).collect();
        assert_eq!(tbl_ids.len(), 4);
    }

    #[test]
    fn null_entries_are_mapped() {
        let db = fixtures::sales_info2();
        let rep = encode(&db);
        let map = rep.get(map_name()).unwrap();
        assert!(map.tuples().any(|t| t[1].is_null()));
    }

    #[test]
    fn fd_checker_flags_violations() {
        let mut data = Relation::new("Data", &["Tbl", "Row", "Col", "Val"], &[]);
        data.insert(vec![
            Symbol::value("t"),
            Symbol::value("r"),
            Symbol::value("c"),
            Symbol::value("v1"),
        ])
        .unwrap();
        data.insert(vec![
            Symbol::value("t"),
            Symbol::value("r"),
            Symbol::value("c"),
            Symbol::value("v2"),
        ])
        .unwrap();
        let rep = RelDatabase::from_relations([data]);
        assert_eq!(check_fds(&rep), Some("Tbl, Row, Col -> Val"));
    }
}
