//! Pretty-printer for tabular algebra programs: the inverse of
//! [`crate::parser::parse`]. `parse(render(p)) == p` for every program
//! (checked by tests and by a proptest over random programs).
//!
//! Also renders evaluation traces ([`render_trace`]) as an
//! `EXPLAIN ANALYZE`-style tree.

use crate::obs::trace::{DeltaDecision, Span, SpanKind, Trace};
use crate::param::{Item, Param};
use crate::program::{Assignment, OpKind, Program, Statement};
use std::fmt::Write;
use tabular_core::Symbol;

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        && s != "_"
        && !s.eq_ignore_ascii_case("while")
        && !s.eq_ignore_ascii_case("do")
        && !s.eq_ignore_ascii_case("end")
        && !s.eq_ignore_ascii_case("by")
        && !s.eq_ignore_ascii_case("on")
        // FUSEDRESTRUCTURE clause keywords: a bare identifier spelled like
        // one of these inside its bracket list would be taken as the next
        // clause, so such names always render quoted.
        && !s.eq_ignore_ascii_case("group")
        && !s.eq_ignore_ascii_case("cleanup")
        && !s.eq_ignore_ascii_case("purge")
}

fn render_symbol(s: Symbol, out: &mut String) {
    match s {
        Symbol::Null => out.push('_'),
        Symbol::Name(i) => {
            let text = i.as_str();
            if ident_ok(text) {
                out.push_str(text);
            } else {
                write!(
                    out,
                    "n:\"{}\"",
                    text.replace('\\', "\\\\").replace('"', "\\\"")
                )
                .unwrap();
            }
        }
        Symbol::Value(i) => {
            let text = i.as_str();
            if ident_ok(text) {
                write!(out, "v:{text}").unwrap();
            } else {
                write!(
                    out,
                    "v:\"{}\"",
                    text.replace('\\', "\\\\").replace('"', "\\\"")
                )
                .unwrap();
            }
        }
    }
}

fn render_item(item: &Item, out: &mut String) {
    match item {
        Item::Null => out.push('_'),
        Item::Sym(s) => render_symbol(*s, out),
        Item::Star(0) => out.push('*'),
        Item::Star(k) => write!(out, "*{k}").unwrap(),
        Item::Pair(r, c) => {
            out.push('(');
            render_param(r, out);
            out.push_str(", ");
            render_param(c, out);
            out.push(')');
        }
    }
}

/// Render a parameter in the concrete syntax.
pub fn render_param(p: &Param, out: &mut String) {
    let braced = p.positive.len() != 1 || (!p.negative.is_empty() && p.negative.len() > 1);
    if braced {
        out.push('{');
    }
    for (k, item) in p.positive.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        render_item(item, out);
    }
    if !p.negative.is_empty() {
        out.push_str(" \\ ");
        for (k, item) in p.negative.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            render_item(item, out);
        }
    }
    if braced {
        out.push('}');
    }
}

fn render_op(op: &OpKind, out: &mut String) {
    out.push_str(op.keyword());
    match op {
        OpKind::Rename { from, to } => {
            out.push('[');
            render_param(from, out);
            out.push_str(" -> ");
            render_param(to, out);
            out.push(']');
        }
        OpKind::Project { attrs } => {
            out.push('[');
            render_param(attrs, out);
            out.push(']');
        }
        OpKind::Select { a, b } | OpKind::FusedJoin { a, b } => {
            out.push('[');
            render_param(a, out);
            out.push_str(" = ");
            render_param(b, out);
            out.push(']');
        }
        OpKind::SelectConst { a, v } => {
            out.push('[');
            render_param(a, out);
            out.push_str(" = ");
            render_param(v, out);
            out.push(']');
        }
        OpKind::Group { by, on } => {
            out.push_str("[by ");
            render_param(by, out);
            out.push_str(" on ");
            render_param(on, out);
            out.push(']');
        }
        OpKind::Merge { on, by } => {
            out.push_str("[on ");
            render_param(on, out);
            out.push_str(" by ");
            render_param(by, out);
            out.push(']');
        }
        OpKind::Split { on } => {
            out.push_str("[on ");
            render_param(on, out);
            out.push(']');
        }
        OpKind::Collapse { by } => {
            out.push_str("[by ");
            render_param(by, out);
            out.push(']');
        }
        OpKind::Switch { entry } => {
            out.push('[');
            render_param(entry, out);
            out.push(']');
        }
        OpKind::CleanUp { by, on } => {
            out.push_str("[by ");
            render_param(by, out);
            out.push_str(" on ");
            render_param(on, out);
            out.push(']');
        }
        OpKind::Purge { on, by } => {
            out.push_str("[on ");
            render_param(on, out);
            out.push_str(" by ");
            render_param(by, out);
            out.push(']');
        }
        OpKind::FusedRestructure(chain) => {
            out.push_str("[group by ");
            render_param(&chain.group_by, out);
            out.push_str(" on ");
            render_param(&chain.group_on, out);
            out.push_str(" cleanup by ");
            render_param(&chain.cleanup_by, out);
            out.push_str(" on ");
            render_param(&chain.cleanup_on, out);
            if let Some((on, by)) = &chain.purge {
                out.push_str(" purge on ");
                render_param(on, out);
                out.push_str(" by ");
                render_param(by, out);
            }
            out.push(']');
        }
        OpKind::TupleNew { attr } | OpKind::SetNew { attr } => {
            out.push('[');
            render_param(attr, out);
            out.push(']');
        }
        OpKind::Union
        | OpKind::Difference
        | OpKind::Intersect
        | OpKind::Product
        | OpKind::Transpose
        | OpKind::Copy
        | OpKind::ClassicalUnion => {}
    }
}

fn render_statement(stmt: &Statement, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    match stmt {
        Statement::Assign(Assignment { target, op, args }) => {
            render_param(target, out);
            out.push_str(" <- ");
            render_op(op, out);
            out.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                render_param(a, out);
            }
            out.push_str(")\n");
        }
        Statement::While { cond, body } => {
            out.push_str("while ");
            render_param(cond, out);
            out.push_str(" do\n");
            for s in body {
                render_statement(s, indent + 1, out);
            }
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push_str("end\n");
        }
    }
}

/// Render a program in the concrete syntax accepted by
/// [`crate::parser::parse`].
pub fn render(p: &Program) -> String {
    let mut out = String::new();
    for stmt in &p.statements {
        render_statement(stmt, 0, &mut out);
    }
    out
}

/// Render a planner decision report as an `EXPLAIN`-style listing: one
/// line per rewrite decision with the rule, the rewritten site, what was
/// decided, and the cost model's cell estimates where it had statistics.
///
/// ```text
/// plan: 2 rule applications, 5 statements rewritten
///   [reorder-joins] Out: reordered 3-way product chain as L ⋈ N ⋈ M (est 817 → 90 cells)
///   [eliminate-dead] program: dropped 1 dead scratch assignments
/// ```
pub fn render_plan(report: &crate::plan::PlanReport) -> String {
    let mut out = String::new();
    if report.decisions.is_empty() {
        out.push_str("plan: no rewrites\n");
        return out;
    }
    writeln!(
        out,
        "plan: {} rule applications, {} statements rewritten",
        report.rules_applied(),
        report.statements_rewritten
    )
    .unwrap();
    for d in &report.decisions {
        write!(out, "  [{}] {}: {}", d.rule.name(), d.site, d.detail).unwrap();
        match (d.before_cells, d.after_cells) {
            (Some(b), Some(a)) => write!(out, " (est {b} → {a} cells)").unwrap(),
            (Some(b), None) => write!(out, " (est {b} cells before)").unwrap(),
            _ => {}
        }
        out.push('\n');
    }
    out
}

/// Render a trace as a human-readable `EXPLAIN ANALYZE`-style tree: one
/// line per span, children indented under parents, annotated with the
/// statement-level figures — how many argument combinations matched, the
/// cells read and produced, the wall time, and the delta decision. Each
/// line maps to one §3 statement execution (or `while` iteration, or
/// shard-pool job).
///
/// ```text
/// while #1 [42 µs]
///   PRODUCT matched=1 in=36 out=48 [17 µs]
///     shard 0 tables=1 [9 µs]
///   SELECT matched=1 in=48 out=12 [4 µs]
///   COPY (delta-skipped, 1 tables cached)
/// ```
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.dropped() > 0 {
        writeln!(
            out,
            "... {} earlier spans dropped (ring capacity {})",
            trace.dropped(),
            Trace::CAPACITY
        )
        .unwrap();
    }
    // Spans complete children-first (a statement's span closes before its
    // iteration's); rebuild the tree from parent ids and emit it in
    // start order — parents first, children in completion order.
    let spans: Vec<&Span> = trace.spans().collect();
    let index_of: std::collections::HashMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.and_then(|p| index_of.get(&p)) {
            Some(&p) => children[p].push(i),
            // Parent missing (evicted by the ring) ⇒ treat as a root.
            None => roots.push(i),
        }
    }
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        render_trace_line(spans[i], depth, &mut out);
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

fn render_trace_line(s: &Span, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match s.kind {
        SpanKind::WhileIter => {
            if s.decision == DeltaDecision::Aborted {
                writeln!(out, "while #{} ← budget tripped", s.iteration.unwrap_or(0)).unwrap();
            } else {
                writeln!(out, "while #{} [{} µs]", s.iteration.unwrap_or(0), s.micros).unwrap();
            }
        }
        SpanKind::Shard => {
            writeln!(
                out,
                "shard {} tables={} [{} µs]",
                s.shard.unwrap_or(0),
                s.matched,
                s.micros
            )
            .unwrap();
        }
        SpanKind::Partition => {
            writeln!(
                out,
                "partition {} rows={} [{} µs]",
                s.shard.unwrap_or(0),
                s.matched,
                s.micros
            )
            .unwrap();
        }
        SpanKind::Plan => {
            if s.input_cells == 0 && s.output_cells == 0 {
                writeln!(out, "plan [{}]", s.op).unwrap();
            } else {
                writeln!(
                    out,
                    "plan [{}] est {} → {} cells",
                    s.op, s.input_cells, s.output_cells
                )
                .unwrap();
            }
        }
        SpanKind::Assign => {
            // Join-fusion decision, e.g. `FUSEDJOIN (fused-join)` — shows
            // why a FUSEDJOIN statement did or did not run the hash path.
            let fusion = s.fusion.map(|f| format!(" ({f})")).unwrap_or_default();
            match s.decision {
                DeltaDecision::DeltaSkipped => {
                    writeln!(out, "{} (delta-skipped, {} tables cached)", s.op, s.matched).unwrap();
                }
                DeltaDecision::Aborted => {
                    writeln!(
                        out,
                        "{}{} matched={} in={} out={} ← budget tripped",
                        s.op, fusion, s.matched, s.input_cells, s.output_cells
                    )
                    .unwrap();
                }
                _ => {
                    let cow = if s.cow_copies > 0 {
                        format!(" cow={}", s.cow_copies)
                    } else {
                        String::new()
                    };
                    writeln!(
                        out,
                        "{}{} matched={} in={} out={}{} [{} µs]",
                        s.op, fusion, s.matched, s.input_cells, s.output_cells, cow, s.micros
                    )
                    .unwrap();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p = parse(src).unwrap();
        let rendered = render(&p);
        let p2 = parse(&rendered).unwrap_or_else(|e| panic!("re-parse of {rendered:?}: {e}"));
        assert_eq!(p, p2, "round trip changed program; rendered:\n{rendered}");
    }

    #[test]
    fn round_trips_all_operations() {
        round_trip(
            r#"
            T <- UNION(R, S)
            T <- DIFFERENCE(R, S)
            T <- INTERSECT(R, S)
            T <- PRODUCT(R, S)
            T <- CLASSICALUNION(R, S)
            T <- RENAME[A -> B](R)
            T <- PROJECT[{A, B}](R)
            T <- SELECT[A = B](R)
            T <- FUSEDJOIN[A = B](R, S)
            T <- SELECTCONST[A = v:50](R)
            T <- GROUP[by {Region} on {Sold}](R)
            T <- MERGE[on {Sold} by {Region}](R)
            T <- SPLIT[on {Region}](R)
            T <- COLLAPSE[by {Region}](R)
            T <- TRANSPOSE(R)
            T <- SWITCH[v:east](R)
            T <- CLEANUP[by {Part} on {_}](R)
            T <- PURGE[on {Sold} by {Region}](R)
            T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_} purge on {Sold} by {Region}](R)
            T <- FUSEDRESTRUCTURE[group by {Region} on {Sold} cleanup by {Part} on {_}](R)
            T <- TUPLENEW[Id](R)
            T <- SETNEW[Tag](R)
            T <- COPY(R)
        "#,
        );
    }

    #[test]
    fn render_plan_lists_decisions_with_cell_estimates() {
        use crate::plan;
        use crate::program::{OpKind, Program};
        use tabular_core::{Database, Symbol, Table};

        // A scratch PRODUCT consumed once by a SELECT whose attributes
        // split across the operands: the planner fuses it into a hash
        // join and, with catalog statistics, prices the decision.
        let s = Symbol::fresh_name();
        let p = Program::new()
            .assign(
                Param::sym(s),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("C"),
                },
                vec![Param::sym(s)],
            );
        let db = Database::from_tables([
            Table::relational("R", &["A", "B"], &[&["1", "x"], &["2", "y"]]),
            Table::relational("T", &["C", "D"], &[&["1", "u"]]),
        ]);
        let (_, report) = plan::plan(&p, &db);
        let text = render_plan(&report);
        assert!(text.contains("statements rewritten"), "{text}");
        assert!(text.contains("[fuse-join] Out:"), "{text}");
        assert!(text.contains("cells)"), "estimates rendered: {text}");
        assert_eq!(
            render_plan(&plan::PlanReport::default()),
            "plan: no rewrites\n"
        );
    }

    #[test]
    fn round_trips_loops_wildcards_pairs() {
        round_trip(
            r#"
            while Work do
              *1 <- PROJECT[{* \ Region}](*1)
              T <- SWITCH[(Region, Sold)](R)
            end
        "#,
        );
    }

    #[test]
    fn round_trips_awkward_symbols() {
        round_trip(r#"T <- SWITCH[v:"east west"](R)"#);
        round_trip(r#"T <- SWITCH[n:"has \"quotes\""](R)"#);
        round_trip(r#"T <- SELECTCONST[A = v:"50"](R)"#);
        // Clause keywords used as attribute names must render quoted, or a
        // re-parse would read them as the next FUSEDRESTRUCTURE clause.
        round_trip(
            r#"T <- FUSEDRESTRUCTURE[group by n:"purge" on {Sold} cleanup by n:"group" on n:"cleanup"](R)"#,
        );
    }

    #[test]
    fn render_trace_nests_statements_under_iterations() {
        use crate::eval::{run_traced, EvalLimits};
        use crate::obs::trace::TraceLevel;
        use tabular_core::{Database, Table};

        let p = parse(
            "while W do
               S <- CLASSICALUNION(S, W)
               W <- DIFFERENCE(S, S)
             end",
        )
        .unwrap();
        let db = Database::from_tables([
            Table::relational("W", &["A"], &[&["1"]]),
            Table::relational("S", &["A"], &[&["0"]]),
        ]);
        let limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (_, _, trace) = run_traced(&p, &db, &limits).unwrap();
        let text = render_trace(&trace);
        assert!(text.contains("while #1"), "iteration line:\n{text}");
        // Body statements are indented one level under their iteration.
        assert!(
            text.contains("\n  CLASSICALUNION matched=") || text.contains("\n  CLASSICALUNION ("),
            "nested statement line:\n{text}"
        );
    }

    #[test]
    fn renders_keyword_collisions_quoted() {
        // A table named "while" must render quoted, not bare.
        let p = Program::new().assign(Param::name("while"), OpKind::Copy, vec![Param::name("end")]);
        let rendered = render(&p);
        let p2 = parse(&rendered).unwrap();
        assert_eq!(p, p2);
    }
}
