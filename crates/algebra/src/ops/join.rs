//! Fused hash join: `SELECT_{A=B}(PRODUCT(R, S))` without the product.
//!
//! The paper expresses joins as a Cartesian product followed by a weak
//! selection, and the relational compiler (Theorem 4.1) emits exactly that
//! chain — materializing `O(|ρ|·|σ|)` rows only to discard almost all of
//! them. When the two selection attributes each resolve to exactly one
//! column on opposite operands, the per-row entry sets are singletons and
//! weak equality degenerates to plain symbol equality (`{⊥} ≗ {⊥}` holds,
//! `{⊥} ≗ {v}` does not), so the selection can be pushed into the product
//! as a classical hash join: build a map from `σ`'s key column, probe with
//! `ρ`'s, and emit only the matching product rows. Output rows are
//! byte-identical to the unfused pipeline, in the same left-major order.
//!
//! [`fusable_join_cols`] is the applicability check; anything outside it
//! (repeated attributes, attributes spanning one operand, `A = A`) must
//! fall back to the unfused `product` + `select` pipeline, because weak
//! equality then compares entry *sets* spanning both operands.

use std::collections::HashMap;
use std::time::Instant;

use crate::error::Result;
use crate::pool::ShardPool;
use tabular_core::{Symbol, Table};

/// Resolved key columns for a fusable join: `left` is a data-column index
/// of `ρ`, `right` of `σ` (both 1-based), normalized so the probe side is
/// always the left operand regardless of which of `A`/`B` landed on it
/// (weak equality is symmetric).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JoinCols {
    /// Key column in the left (probe) operand.
    pub left: usize,
    /// Key column in the right (build) operand.
    pub right: usize,
}

/// Decide whether `SELECT_{A=B}` over `PRODUCT(R, S)` can run as a hash
/// join, and if so on which columns.
///
/// Fusion requires `a` to occur as a column attribute exactly once across
/// the combined columns of `ρ` and `σ`, likewise `b`, and the two
/// occurrences to sit on *opposite* operands. Then each product row's
/// entry set under either attribute is the singleton holding that one
/// cell, and weak set equality is symbol equality. Everything else —
/// repeated attributes (entry sets spanning both operands), both
/// attributes on one operand, an attribute absent from both, or `a = b`
/// (a tautological selection, not a join) — returns `None`.
pub fn fusable_join_cols(r: &Table, s: &Table, a: Symbol, b: Symbol) -> Option<JoinCols> {
    if a == b {
        return None;
    }
    let (ra, sa) = (r.cols_named(a), s.cols_named(a));
    let (rb, sb) = (r.cols_named(b), s.cols_named(b));
    match (ra.len(), sa.len(), rb.len(), sb.len()) {
        (1, 0, 0, 1) => Some(JoinCols {
            left: ra[0],
            right: sb[0],
        }),
        (0, 1, 1, 0) => Some(JoinCols {
            left: rb[0],
            right: sa[0],
        }),
        _ => None,
    }
}

/// `T ← FUSEDJOIN_{A=B}(R, S)`: the fused evaluation of
/// `SELECT_{A=B}(PRODUCT(R, S))` on columns resolved by
/// [`fusable_join_cols`]. Output equals the unfused pipeline exactly
/// (header, row order, row attributes) but peak allocation is
/// `O(|ρ| + |σ| + |output|)`.
pub fn join(r: &Table, s: &Table, cols: JoinCols, name: Symbol) -> Table {
    let width = r.width() + s.width();
    let mut t = Table::new(name, 0, width);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    for j in 1..=s.width() {
        t.set(0, r.width() + j, s.col_attr(j));
    }
    join_append(&mut t, r, 1, s, cols);
    t
}

/// Append to `acc` the joined rows `ρᵢ × σₖ` with matching keys, for every
/// `i ≥ from_row`, in the left-major order [`join`] (and `product`) use.
/// Returns the number of rows appended.
///
/// This is the incremental step of the delta `while` strategy, mirroring
/// [`product_append`](crate::ops::product_append): when `ρ` has only grown
/// by appended rows and `σ` is unchanged, probing the new rows alone
/// produces exactly the join's new output.
pub fn join_append(
    acc: &mut Table,
    r: &Table,
    from_row: usize,
    s: &Table,
    cols: JoinCols,
) -> usize {
    debug_assert_eq!(
        acc.width(),
        r.width() + s.width(),
        "join_append width mismatch"
    );
    if from_row > r.height() {
        return 0;
    }
    let index = build_index(s, cols.right);
    acc.append_rows(|rows| {
        let mut appended = 0;
        for i in from_row..=r.height() {
            let Some(matches) = index.get(&r.get(i, cols.left)) else {
                continue;
            };
            for &k in matches {
                let attr = r.get(i, 0).join(s.get(k, 0)).unwrap_or_else(|| r.get(i, 0));
                rows.push_row_parts(attr, r.data_row(i), s.data_row(k));
            }
            appended += matches.len();
        }
        appended
    })
}

/// Probe rows processed between governor polls inside a partition, so a
/// cancellation or deadline trip is observed promptly even when one
/// partition is large.
const POLL_STRIDE: usize = 4096;

/// Per-shard observability from a partitioned join: how many output rows
/// the shard produced and how long its jobs ran (probe-count plus scatter
/// passes, wall time in microseconds on the worker that ran them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionShard {
    /// Output rows this shard wrote.
    pub rows: usize,
    /// Wall time of the shard's count + scatter jobs, in microseconds.
    pub wall_micros: u128,
}

/// Partition-parallel [`join`]: split the probe side `ρ` into `shards`
/// contiguous row ranges, build **one** shared hash index of `σ`, probe
/// the ranges in parallel on `pool`, and splice the per-range outputs
/// back in exact left-major order. The output is **byte-identical** to
/// [`join`] — same header, same row order, same row attributes — because
/// range `p` writes precisely the rows the serial loop would have
/// emitted for probe rows in that range, into the exact offsets a prefix
/// sum over the per-range match counts assigns.
///
/// `poll` is called between [`POLL_STRIDE`]-row chunks on every worker
/// (cooperative cancellation / deadline checks); `charge` is called once
/// per partition with the data cells that partition is about to
/// materialize, *before* the output buffer grows — the governor's
/// admission control, per-partition as PRs 5–6 charged per statement.
/// The first error in shard order wins, so trips are deterministic.
///
/// Returns the joined table and one [`PartitionShard`] per range.
#[allow(clippy::too_many_arguments)]
pub fn join_partitioned(
    r: &Table,
    s: &Table,
    cols: JoinCols,
    name: Symbol,
    pool: &ShardPool,
    shards: usize,
    poll: &(dyn Fn() -> Result<()> + Sync),
    charge: &mut dyn FnMut(usize) -> Result<()>,
) -> Result<(Table, Vec<PartitionShard>)> {
    let width = r.width() + s.width();
    let mut t = Table::new(name, 0, width);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    for j in 1..=s.width() {
        t.set(0, r.width() + j, s.col_attr(j));
    }
    let report = join_append_partitioned(&mut t, r, 1, s, cols, pool, shards, poll, charge)?;
    Ok((t, report))
}

/// Partition-parallel [`join_append`]: the incremental delta step, run
/// across `pool` exactly like [`join_partitioned`] (which is this
/// function starting from probe row 1 on a fresh header). Appends, for
/// every probe row `i ≥ from_row`, the joined rows in serial left-major
/// order, byte-identical to [`join_append`].
///
/// Two passes per shard over its probe range: count matches (so a prefix
/// sum can pre-size the output buffer exactly and hand each shard a
/// disjoint `&mut` window), then scatter the rows. On error the
/// accumulator may hold a partially written (⊥-padded) extension; every
/// caller aborts the run and discards the database on `Err`, so no
/// partially joined table is ever observable.
#[allow(clippy::too_many_arguments)]
pub fn join_append_partitioned(
    acc: &mut Table,
    r: &Table,
    from_row: usize,
    s: &Table,
    cols: JoinCols,
    pool: &ShardPool,
    shards: usize,
    poll: &(dyn Fn() -> Result<()> + Sync),
    charge: &mut dyn FnMut(usize) -> Result<()>,
) -> Result<Vec<PartitionShard>> {
    debug_assert_eq!(
        acc.width(),
        r.width() + s.width(),
        "join_append width mismatch"
    );
    if from_row > r.height() {
        return Ok(Vec::new());
    }
    let index = build_index(s, cols.right);
    let probe_rows = r.height() + 1 - from_row;
    let shards = shards.clamp(1, probe_rows);
    let per_shard = probe_rows.div_ceil(shards);
    let ranges: Vec<(usize, usize)> = (0..shards)
        .map(|p| {
            let lo = from_row + p * per_shard;
            (lo, (lo + per_shard).min(r.height() + 1))
        })
        .take_while(|&(lo, hi)| lo < hi)
        .collect();

    // Pass 1: count matches per range, in parallel. Each shard re-probes
    // in pass 2 rather than buffering match lists: re-probing costs a
    // second scan of the shared index, but keeps the kernel's allocation
    // at exactly the output size — partitioning must never raise peak
    // memory over the serial kernel (alloc-regression guard 8).
    let mut counts: Vec<Option<(Result<usize>, u128)>> = vec![None; ranges.len()];
    {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = counts
            .iter_mut()
            .zip(&ranges)
            .map(|(slot, &(lo, hi))| {
                let index = &index;
                Box::new(move || {
                    let start = Instant::now();
                    let mut n = 0usize;
                    let mut out = Ok(());
                    for i in lo..hi {
                        if (i - lo) % POLL_STRIDE == 0 {
                            if let Err(e) = poll() {
                                out = Err(e);
                                break;
                            }
                        }
                        n += index.get(&r.get(i, cols.left)).map_or(0, Vec::len);
                    }
                    *slot = Some((out.map(|()| n), start.elapsed().as_micros()));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped(jobs);
    }
    let mut shard_rows = Vec::with_capacity(ranges.len());
    let mut shard_micros = Vec::with_capacity(ranges.len());
    for slot in counts {
        let (n, micros) = slot.expect("partition count job did not run");
        shard_rows.push(n?);
        shard_micros.push(micros);
    }

    // Admission control before the buffer grows: charge each partition's
    // data cells in shard order on the evaluating thread.
    let row_width = acc.width() + 1;
    for &rows in &shard_rows {
        charge(rows * row_width)?;
    }

    // Pass 2: one exact-size extension, then scatter in parallel into
    // disjoint per-shard row windows. Offsets come from the prefix sum of
    // the pass-1 counts, so shard p's window starts exactly where the
    // serial loop would have been when reaching probe row `ranges[p].0`.
    // The extension is handed out uninitialized — prefilling it with ⊥
    // would serially memset the exact bytes the shards are about to
    // write in parallel, and on a 1M-row join that memset alone rivals a
    // shard's whole scatter.
    let total_rows: usize = shard_rows.iter().sum();
    let mut writes: Vec<Option<(Result<()>, u128)>> = vec![None; ranges.len()];
    // SAFETY: `scoped` drains every submitted job before returning, and
    // each job either writes its entire window (pass 1 counted exactly
    // `rows` matches for its range, and `r`/`s`/`index` are unchanged
    // between passes) or, after an error mid-range, ⊥-fills the window's
    // remainder before returning — so the whole extension is initialized
    // when the closure completes.
    unsafe {
        acc.append_rows_uninit(total_rows, |fresh| {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
            let mut rest = fresh;
            for ((slot, &(lo, hi)), &rows) in writes.iter_mut().zip(&ranges).zip(&shard_rows) {
                let (mine, tail) = rest.split_at_mut(rows * row_width);
                rest = tail;
                let index = &index;
                jobs.push(Box::new(move || {
                    let start = Instant::now();
                    let mut off = 0usize;
                    let mut out = Ok(());
                    'scatter: for i in lo..hi {
                        if (i - lo) % POLL_STRIDE == 0 {
                            if let Err(e) = poll() {
                                out = Err(e);
                                break 'scatter;
                            }
                        }
                        let Some(matches) = index.get(&r.get(i, cols.left)) else {
                            continue;
                        };
                        for &k in matches {
                            let attr = r.get(i, 0).join(s.get(k, 0)).unwrap_or_else(|| r.get(i, 0));
                            let dst = &mut mine[off..off + row_width];
                            dst[0].write(attr);
                            for (d, &v) in dst[1..].iter_mut().zip(r.data_row(i)) {
                                d.write(v);
                            }
                            for (d, &v) in dst[r.width() + 1..].iter_mut().zip(s.data_row(k)) {
                                d.write(v);
                            }
                            off += row_width;
                        }
                    }
                    debug_assert!(out.is_err() || off == rows * row_width);
                    // Initialization guarantee on the error path: the
                    // run is aborting, but the buffer must still hold
                    // only valid symbols when the extension commits.
                    for cell in &mut mine[off..] {
                        cell.write(Symbol::Null);
                    }
                    *slot = Some((out, start.elapsed().as_micros()));
                }));
            }
            pool.scoped(jobs);
        });
    }
    let mut report = Vec::with_capacity(ranges.len());
    for ((slot, rows), probe_micros) in writes.into_iter().zip(shard_rows).zip(shard_micros) {
        let (outcome, micros) = slot.expect("partition scatter job did not run");
        outcome?;
        report.push(PartitionShard {
            rows,
            wall_micros: probe_micros + micros,
        });
    }
    Ok(report)
}

/// Count the rows [`join_append`] would append, without appending. Used by
/// the delta planner to size the output (and charge the governor) before
/// committing to the incremental plan.
pub fn count_join_matches(r: &Table, from_row: usize, s: &Table, cols: JoinCols) -> usize {
    if from_row > r.height() {
        return 0;
    }
    let index = build_index(s, cols.right);
    (from_row..=r.height())
        .map(|i| index.get(&r.get(i, cols.left)).map_or(0, Vec::len))
        .sum()
}

/// Hash the build side's key column: key symbol → ascending row indices.
/// ⊥ keys are indexed like any other symbol, so ⊥ joins exactly ⊥ — the
/// singleton-weak-equality semantics the fusion precondition guarantees.
fn build_index(s: &Table, key_col: usize) -> HashMap<Symbol, Vec<usize>> {
    let mut index: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for k in 1..=s.height() {
        index.entry(s.get(k, key_col)).or_default().push(k);
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{product, select};

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn unfused(r: &Table, s: &Table, a: Symbol, b: Symbol, name: Symbol) -> Table {
        select(&product(r, s, nm("scratch")), a, b, name)
    }

    #[test]
    fn fusable_requires_singleton_columns_on_opposite_operands() {
        let r = Table::relational("R", &["A", "B"], &[&["1", "2"]]);
        let s = Table::relational("S", &["C", "D"], &[&["2", "3"]]);
        assert_eq!(
            fusable_join_cols(&r, &s, nm("B"), nm("C")),
            Some(JoinCols { left: 2, right: 1 })
        );
        // Swapped attribute roles normalize to the same columns.
        assert_eq!(
            fusable_join_cols(&r, &s, nm("C"), nm("B")),
            Some(JoinCols { left: 2, right: 1 })
        );
        // Both attributes on one operand: not a join.
        assert_eq!(fusable_join_cols(&r, &s, nm("A"), nm("B")), None);
        // Absent attribute.
        assert_eq!(fusable_join_cols(&r, &s, nm("B"), nm("Z")), None);
        // A = A is a tautology, not a join.
        assert_eq!(fusable_join_cols(&r, &s, nm("B"), nm("B")), None);
        // Repeated attribute across operands: entry sets span both.
        let s2 = Table::relational("S", &["B", "C"], &[&["2", "3"]]);
        assert_eq!(fusable_join_cols(&r, &s2, nm("B"), nm("C")), None);
    }

    #[test]
    fn join_matches_unfused_pipeline_exactly() {
        let r = Table::relational(
            "R",
            &["A", "B"],
            &[&["1", "2"], &["3", "2"], &["5", "6"], &["7", "8"]],
        );
        let s = Table::relational(
            "S",
            &["C", "D"],
            &[&["2", "x"], &["2", "y"], &["8", "z"], &["9", "w"]],
        );
        let cols = fusable_join_cols(&r, &s, nm("B"), nm("C")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        let reference = unfused(&r, &s, nm("B"), nm("C"), nm("T"));
        assert_eq!(fused, reference);
        assert_eq!(fused.height(), 5); // 2×{x,y} twice + 8×z once
    }

    #[test]
    fn null_keys_join_only_null_keys() {
        // {⊥} ≗ {⊥} holds but {⊥} ≗ {v} does not: ⊥ is its own key.
        let r = Table::from_grid(&[&["R", "A"], &["_", "_"], &["_", "v"]]).unwrap();
        let s = Table::from_grid(&[&["S", "B"], &["_", "_"], &["_", "w"]]).unwrap();
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        assert_eq!(fused, unfused(&r, &s, nm("A"), nm("B"), nm("T")));
        assert_eq!(fused.height(), 1); // only ⊥ ⋈ ⊥
    }

    #[test]
    fn join_append_from_row_matches_tail_of_full_join() {
        let r = Table::relational("R", &["A"], &[&["1"], &["2"], &["1"]]);
        let s = Table::relational("S", &["B"], &[&["1"], &["2"], &["1"]]);
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let full = join(&r, &s, cols, nm("T"));
        // Rebuild incrementally: first two probe rows, then the third.
        let r_prefix = r.retain_rows(|i| i <= 2);
        let mut acc = join(&r_prefix, &s, cols, nm("T"));
        let added = join_append(&mut acc, &r, 3, &s, cols);
        assert_eq!(acc, full);
        assert_eq!(added, 2);
        assert_eq!(count_join_matches(&r, 3, &s, cols), 2);
        assert_eq!(count_join_matches(&r, 1, &s, cols), full.height());
        assert_eq!(count_join_matches(&r, 4, &s, cols), 0);
    }

    #[test]
    fn join_partitioned_is_byte_identical_for_every_shard_count() {
        // Messy probe: ⊥ keys, duplicate keys, rows with no match, row
        // attributes that exercise the informational join.
        let r = Table::from_grid(&[
            &["R", "A", "X"],
            &["p", "1", "a"],
            &["_", "_", "b"],
            &["_", "2", "c"],
            &["q", "1", "d"],
            &["_", "9", "e"],
            &["_", "2", "f"],
            &["_", "1", "g"],
        ])
        .unwrap();
        let s = Table::from_grid(&[
            &["S", "B", "Y"],
            &["_", "1", "u"],
            &["r", "2", "v"],
            &["_", "_", "w"],
            &["_", "1", "x"],
        ])
        .unwrap();
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let serial = join(&r, &s, cols, nm("T"));
        assert_eq!(serial, unfused(&r, &s, nm("A"), nm("B"), nm("T")));
        let pool = ShardPool::new(2);
        for shards in [1, 2, 3, 7, 8, 64] {
            let mut charged = 0usize;
            let (part, report) = join_partitioned(
                &r,
                &s,
                cols,
                nm("T"),
                &pool,
                shards,
                &|| Ok(()),
                &mut |cells| {
                    charged += cells;
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(part, serial, "shards={shards}");
            // Shard count clamps to the probe height; reported rows sum
            // to the output and charges cover exactly the data cells.
            assert_eq!(report.len(), shards.min(r.height()));
            let rows: usize = report.iter().map(|sh| sh.rows).sum();
            assert_eq!(rows, serial.height());
            assert_eq!(charged, serial.height() * (serial.width() + 1));
        }
    }

    #[test]
    fn join_append_partitioned_matches_serial_tail() {
        let r = Table::relational("R", &["A"], &[&["1"], &["2"], &["1"], &["2"], &["3"]]);
        let s = Table::relational("S", &["B"], &[&["1"], &["2"], &["1"]]);
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let full = join(&r, &s, cols, nm("T"));
        let r_prefix = r.retain_rows(|i| i <= 2);
        let pool = ShardPool::new(2);
        let mut acc = join(&r_prefix, &s, cols, nm("T"));
        let report =
            join_append_partitioned(&mut acc, &r, 3, &s, cols, &pool, 4, &|| Ok(()), &mut |_| {
                Ok(())
            })
            .unwrap();
        assert_eq!(acc, full);
        assert_eq!(report.len(), 3); // 3 probe rows, shard count clamped
        assert_eq!(
            report.iter().map(|sh| sh.rows).sum::<usize>(),
            count_join_matches(&r, 3, &s, cols)
        );
        // Empty tail: no shards, no rows, accumulator untouched.
        let report =
            join_append_partitioned(&mut acc, &r, 6, &s, cols, &pool, 4, &|| Ok(()), &mut |_| {
                Ok(())
            })
            .unwrap();
        assert!(report.is_empty());
        assert_eq!(acc, full);
    }

    #[test]
    fn join_partitioned_propagates_poll_and_charge_errors() {
        use crate::error::AlgebraError;
        let r = Table::relational("R", &["A"], &[&["1"], &["2"]]);
        let s = Table::relational("S", &["B"], &[&["1"], &["2"]]);
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let pool = ShardPool::new(2);
        let trip = || {
            Err(AlgebraError::LimitExceeded {
                what: "test poll",
                limit: 0,
                attempted: 1,
            })
        };
        let err =
            join_partitioned(&r, &s, cols, nm("T"), &pool, 2, &trip, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, AlgebraError::LimitExceeded { what, .. } if what == "test poll"));
        // A charge refusal aborts before the output buffer grows.
        let err = join_partitioned(&r, &s, cols, nm("T"), &pool, 2, &|| Ok(()), &mut |_| {
            Err(AlgebraError::LimitExceeded {
                what: "test charge",
                limit: 0,
                attempted: 1,
            })
        })
        .unwrap_err();
        assert!(matches!(err, AlgebraError::LimitExceeded { what, .. } if what == "test charge"));
    }

    #[test]
    fn join_preserves_row_attributes_via_informational_join() {
        let r = Table::from_grid(&[&["R", "A"], &["p", "1"], &["_", "2"]]).unwrap();
        let s = Table::from_grid(&[&["S", "B"], &["q", "1"], &["p", "2"]]).unwrap();
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        assert_eq!(fused, unfused(&r, &s, nm("A"), nm("B"), nm("T")));
        // p ⋈ q has no join: the left row attribute wins (left-biased rule).
        assert_eq!(fused.get(1, 0), nm("p"));
        // ⊥ absorbs: the 2-row pair carries the right side's p.
        assert_eq!(fused.get(2, 0), nm("p"));
    }
}
