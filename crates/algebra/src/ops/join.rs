//! Fused hash join: `SELECT_{A=B}(PRODUCT(R, S))` without the product.
//!
//! The paper expresses joins as a Cartesian product followed by a weak
//! selection, and the relational compiler (Theorem 4.1) emits exactly that
//! chain — materializing `O(|ρ|·|σ|)` rows only to discard almost all of
//! them. When the two selection attributes each resolve to exactly one
//! column on opposite operands, the per-row entry sets are singletons and
//! weak equality degenerates to plain symbol equality (`{⊥} ≗ {⊥}` holds,
//! `{⊥} ≗ {v}` does not), so the selection can be pushed into the product
//! as a classical hash join: build a map from `σ`'s key column, probe with
//! `ρ`'s, and emit only the matching product rows. Output rows are
//! byte-identical to the unfused pipeline, in the same left-major order.
//!
//! [`fusable_join_cols`] is the applicability check; anything outside it
//! (repeated attributes, attributes spanning one operand, `A = A`) must
//! fall back to the unfused `product` + `select` pipeline, because weak
//! equality then compares entry *sets* spanning both operands.

use std::collections::HashMap;

use tabular_core::{Symbol, Table};

/// Resolved key columns for a fusable join: `left` is a data-column index
/// of `ρ`, `right` of `σ` (both 1-based), normalized so the probe side is
/// always the left operand regardless of which of `A`/`B` landed on it
/// (weak equality is symmetric).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JoinCols {
    /// Key column in the left (probe) operand.
    pub left: usize,
    /// Key column in the right (build) operand.
    pub right: usize,
}

/// Decide whether `SELECT_{A=B}` over `PRODUCT(R, S)` can run as a hash
/// join, and if so on which columns.
///
/// Fusion requires `a` to occur as a column attribute exactly once across
/// the combined columns of `ρ` and `σ`, likewise `b`, and the two
/// occurrences to sit on *opposite* operands. Then each product row's
/// entry set under either attribute is the singleton holding that one
/// cell, and weak set equality is symbol equality. Everything else —
/// repeated attributes (entry sets spanning both operands), both
/// attributes on one operand, an attribute absent from both, or `a = b`
/// (a tautological selection, not a join) — returns `None`.
pub fn fusable_join_cols(r: &Table, s: &Table, a: Symbol, b: Symbol) -> Option<JoinCols> {
    if a == b {
        return None;
    }
    let (ra, sa) = (r.cols_named(a), s.cols_named(a));
    let (rb, sb) = (r.cols_named(b), s.cols_named(b));
    match (ra.len(), sa.len(), rb.len(), sb.len()) {
        (1, 0, 0, 1) => Some(JoinCols {
            left: ra[0],
            right: sb[0],
        }),
        (0, 1, 1, 0) => Some(JoinCols {
            left: rb[0],
            right: sa[0],
        }),
        _ => None,
    }
}

/// `T ← FUSEDJOIN_{A=B}(R, S)`: the fused evaluation of
/// `SELECT_{A=B}(PRODUCT(R, S))` on columns resolved by
/// [`fusable_join_cols`]. Output equals the unfused pipeline exactly
/// (header, row order, row attributes) but peak allocation is
/// `O(|ρ| + |σ| + |output|)`.
pub fn join(r: &Table, s: &Table, cols: JoinCols, name: Symbol) -> Table {
    let width = r.width() + s.width();
    let mut t = Table::new(name, 0, width);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    for j in 1..=s.width() {
        t.set(0, r.width() + j, s.col_attr(j));
    }
    join_append(&mut t, r, 1, s, cols);
    t
}

/// Append to `acc` the joined rows `ρᵢ × σₖ` with matching keys, for every
/// `i ≥ from_row`, in the left-major order [`join`] (and `product`) use.
/// Returns the number of rows appended.
///
/// This is the incremental step of the delta `while` strategy, mirroring
/// [`product_append`](crate::ops::product_append): when `ρ` has only grown
/// by appended rows and `σ` is unchanged, probing the new rows alone
/// produces exactly the join's new output.
pub fn join_append(
    acc: &mut Table,
    r: &Table,
    from_row: usize,
    s: &Table,
    cols: JoinCols,
) -> usize {
    debug_assert_eq!(
        acc.width(),
        r.width() + s.width(),
        "join_append width mismatch"
    );
    if from_row > r.height() {
        return 0;
    }
    let index = build_index(s, cols.right);
    acc.append_rows(|rows| {
        let mut appended = 0;
        for i in from_row..=r.height() {
            let Some(matches) = index.get(&r.get(i, cols.left)) else {
                continue;
            };
            for &k in matches {
                let attr = r.get(i, 0).join(s.get(k, 0)).unwrap_or_else(|| r.get(i, 0));
                rows.push_row_parts(attr, r.data_row(i), s.data_row(k));
            }
            appended += matches.len();
        }
        appended
    })
}

/// Count the rows [`join_append`] would append, without appending. Used by
/// the delta planner to size the output (and charge the governor) before
/// committing to the incremental plan.
pub fn count_join_matches(r: &Table, from_row: usize, s: &Table, cols: JoinCols) -> usize {
    if from_row > r.height() {
        return 0;
    }
    let index = build_index(s, cols.right);
    (from_row..=r.height())
        .map(|i| index.get(&r.get(i, cols.left)).map_or(0, Vec::len))
        .sum()
}

/// Hash the build side's key column: key symbol → ascending row indices.
/// ⊥ keys are indexed like any other symbol, so ⊥ joins exactly ⊥ — the
/// singleton-weak-equality semantics the fusion precondition guarantees.
fn build_index(s: &Table, key_col: usize) -> HashMap<Symbol, Vec<usize>> {
    let mut index: HashMap<Symbol, Vec<usize>> = HashMap::new();
    for k in 1..=s.height() {
        index.entry(s.get(k, key_col)).or_default().push(k);
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{product, select};

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn unfused(r: &Table, s: &Table, a: Symbol, b: Symbol, name: Symbol) -> Table {
        select(&product(r, s, nm("scratch")), a, b, name)
    }

    #[test]
    fn fusable_requires_singleton_columns_on_opposite_operands() {
        let r = Table::relational("R", &["A", "B"], &[&["1", "2"]]);
        let s = Table::relational("S", &["C", "D"], &[&["2", "3"]]);
        assert_eq!(
            fusable_join_cols(&r, &s, nm("B"), nm("C")),
            Some(JoinCols { left: 2, right: 1 })
        );
        // Swapped attribute roles normalize to the same columns.
        assert_eq!(
            fusable_join_cols(&r, &s, nm("C"), nm("B")),
            Some(JoinCols { left: 2, right: 1 })
        );
        // Both attributes on one operand: not a join.
        assert_eq!(fusable_join_cols(&r, &s, nm("A"), nm("B")), None);
        // Absent attribute.
        assert_eq!(fusable_join_cols(&r, &s, nm("B"), nm("Z")), None);
        // A = A is a tautology, not a join.
        assert_eq!(fusable_join_cols(&r, &s, nm("B"), nm("B")), None);
        // Repeated attribute across operands: entry sets span both.
        let s2 = Table::relational("S", &["B", "C"], &[&["2", "3"]]);
        assert_eq!(fusable_join_cols(&r, &s2, nm("B"), nm("C")), None);
    }

    #[test]
    fn join_matches_unfused_pipeline_exactly() {
        let r = Table::relational(
            "R",
            &["A", "B"],
            &[&["1", "2"], &["3", "2"], &["5", "6"], &["7", "8"]],
        );
        let s = Table::relational(
            "S",
            &["C", "D"],
            &[&["2", "x"], &["2", "y"], &["8", "z"], &["9", "w"]],
        );
        let cols = fusable_join_cols(&r, &s, nm("B"), nm("C")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        let reference = unfused(&r, &s, nm("B"), nm("C"), nm("T"));
        assert_eq!(fused, reference);
        assert_eq!(fused.height(), 5); // 2×{x,y} twice + 8×z once
    }

    #[test]
    fn null_keys_join_only_null_keys() {
        // {⊥} ≗ {⊥} holds but {⊥} ≗ {v} does not: ⊥ is its own key.
        let r = Table::from_grid(&[&["R", "A"], &["_", "_"], &["_", "v"]]).unwrap();
        let s = Table::from_grid(&[&["S", "B"], &["_", "_"], &["_", "w"]]).unwrap();
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        assert_eq!(fused, unfused(&r, &s, nm("A"), nm("B"), nm("T")));
        assert_eq!(fused.height(), 1); // only ⊥ ⋈ ⊥
    }

    #[test]
    fn join_append_from_row_matches_tail_of_full_join() {
        let r = Table::relational("R", &["A"], &[&["1"], &["2"], &["1"]]);
        let s = Table::relational("S", &["B"], &[&["1"], &["2"], &["1"]]);
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let full = join(&r, &s, cols, nm("T"));
        // Rebuild incrementally: first two probe rows, then the third.
        let r_prefix = r.retain_rows(|i| i <= 2);
        let mut acc = join(&r_prefix, &s, cols, nm("T"));
        let added = join_append(&mut acc, &r, 3, &s, cols);
        assert_eq!(acc, full);
        assert_eq!(added, 2);
        assert_eq!(count_join_matches(&r, 3, &s, cols), 2);
        assert_eq!(count_join_matches(&r, 1, &s, cols), full.height());
        assert_eq!(count_join_matches(&r, 4, &s, cols), 0);
    }

    #[test]
    fn join_preserves_row_attributes_via_informational_join() {
        let r = Table::from_grid(&[&["R", "A"], &["p", "1"], &["_", "2"]]).unwrap();
        let s = Table::from_grid(&[&["S", "B"], &["q", "1"], &["p", "2"]]).unwrap();
        let cols = fusable_join_cols(&r, &s, nm("A"), nm("B")).unwrap();
        let fused = join(&r, &s, cols, nm("T"));
        assert_eq!(fused, unfused(&r, &s, nm("A"), nm("B"), nm("T")));
        // p ⋈ q has no join: the left row attribute wins (left-biased rule).
        assert_eq!(fused.get(1, 0), nm("p"));
        // ⊥ absorbs: the 2-row pair carries the right side's p.
        assert_eq!(fused.get(2, 0), nm("p"));
    }
}
