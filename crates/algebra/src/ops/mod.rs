//! The tabular algebra operations (paper §3), as pure functions on
//! [`Table`](tabular_core::Table)s.
//!
//! | paper §    | operations                                        | module |
//! |------------|---------------------------------------------------|--------|
//! | §3.1       | union, difference, ∩, ×, rename, project, select  | [`traditional`] |
//! | §3.2       | group, merge, split, collapse                     | [`restructure`] |
//! | §3.3       | transpose, switch                                 | [`transpose`] |
//! | §3.3       | duals of every operation                          | [`dual`] |
//! | §3.4       | clean-up, purge, classical union                  | [`redundancy`] |
//! | §3.5       | tuple-new, set-new                                | [`tagging`] |
//! | §5 (opt.)  | fused hash join (SELECT ∘ PRODUCT)                | [`join`] |
//! | §4.3 (opt.)| fused restructuring (PURGE ∘ CLEAN-UP ∘ GROUP)    | [`restructure_fused`] |
//!
//! The program layer (parameters, assignment statements, `while`) that
//! drives these over whole databases lives in
//! [`crate::program`] / [`crate::eval`].

pub mod dual;
pub mod join;
pub mod redundancy;
pub mod restructure;
pub mod restructure_fused;
pub mod tagging;
pub mod traditional;
pub mod transpose;

pub use dual::{
    col_group, col_merge, col_project, col_select, col_select_const, col_split, dualize,
};
pub use join::{
    count_join_matches, fusable_join_cols, join, join_append, join_append_partitioned,
    join_partitioned, JoinCols, PartitionShard,
};
pub use redundancy::{classical_union, cleanup, purge};
pub use restructure::{collapse, group, merge, split};
pub use restructure_fused::{fused_restructure, grouped_cells, RestructureSpec};
pub use tagging::{set_new, tuple_new};
pub use traditional::{
    copy, difference, intersect, product, product_append, project, rename, select, select_const,
    union,
};
pub use transpose::{switch, transpose};
