//! Redundancy removal (paper §3.4): **clean-up** and its dual **purge**.
//!
//! `CLEAN-UP by 𝒜 on ℬ (R)` merges groups of data rows that agree on their
//! `𝒜`-subtuple (their entries under the columns named in `𝒜`) and whose
//! row attribute lies in `ℬ`, whenever all rows of a group are subsumed by
//! a common tuple; the group is then replaced by the *least* such tuple.
//! Clean-up generalizes duplicate-row elimination; purge is its
//! column-wise dual via transposition.
//!
//! Deterministic refinement (documented in DESIGN.md): the least common
//! subsuming tuple is computed as the componentwise informational join
//! (⊥ ⊔ v = v); if any component has two distinct non-⊥ entries the group
//! has no join and the original rows are retained, exactly as the paper
//! prescribes for groups without a common subsumer. Groups are keyed by
//! (row attribute, 𝒜-subtuple), so rows with different row attributes are
//! never merged.

use tabular_core::{Symbol, SymbolSet, Table};

/// `T ← CLEAN-UP by 𝒜 on ℬ (R)`. `by` names grouping *column* attributes,
/// `on` names participating *row* attributes (⊥ included via
/// `SymbolSet::from_iter([Symbol::Null])`).
#[allow(clippy::needless_range_loop)] // rows are addressed by table index throughout
pub fn cleanup(r: &Table, by: &SymbolSet, on: &SymbolSet, name: Symbol) -> Table {
    let by_cols = r.cols_in(by);

    // Group participating rows by (row attribute, 𝒜-subtuple); remember
    // the position of each group's first member so replacement is stable.
    struct Group {
        first_row: usize,
        rows: Vec<usize>,
    }
    let mut keys: std::collections::HashMap<Vec<Symbol>, usize> = std::collections::HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    let mut group_of_row: Vec<Option<usize>> = vec![None; r.height() + 1];

    for i in 1..=r.height() {
        if !on.contains(r.get(i, 0)) {
            continue;
        }
        let mut key = Vec::with_capacity(by_cols.len() + 1);
        key.push(r.get(i, 0));
        key.extend(by_cols.iter().map(|&j| r.get(i, j)));
        let g = match keys.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let g = *e.get();
                groups[g].rows.push(i);
                g
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                groups.push(Group {
                    first_row: i,
                    rows: vec![i],
                });
                *e.insert(groups.len() - 1)
            }
        };
        group_of_row[i] = Some(g);
    }

    // Componentwise join per group.
    let joined: Vec<Option<Vec<Symbol>>> = groups
        .iter()
        .map(|g| {
            let mut acc = r.storage_row(g.rows[0]).to_vec();
            for &i in &g.rows[1..] {
                for (a, &b) in acc.iter_mut().zip(r.storage_row(i)) {
                    match a.join(b) {
                        Some(j) => *a = j,
                        None => return None,
                    }
                }
            }
            Some(acc)
        })
        .collect();

    let mut t = Table::new(name, 0, r.width());
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    t.append_rows(|rows| {
        for i in 1..=r.height() {
            match group_of_row[i] {
                None => rows.push_row(r.storage_row(i)),
                Some(g) => match &joined[g] {
                    // Merged group: emit the join at the first member's slot.
                    Some(join) => {
                        if groups[g].first_row == i {
                            rows.push_row(join);
                        }
                    }
                    // No common subsumer: retain the original rows.
                    None => rows.push_row(r.storage_row(i)),
                },
            }
        }
    });
    t
}

/// `T ← PURGE on ℬ by 𝒜 (R)` — the dual of clean-up (paper §3.4), merging
/// *columns* instead of rows: columns whose attribute lies in `on` and
/// that agree on their entries in the rows whose row attribute lies in
/// `by` are replaced by their join when it exists.
///
/// Implemented, per the paper's duality principle (§3.3), as
/// `transpose ∘ clean-up ∘ transpose`.
pub fn purge(r: &Table, on: &SymbolSet, by: &SymbolSet, name: Symbol) -> Table {
    let flipped = r.transpose();
    let cleaned = cleanup(&flipped, by, on, name);
    let mut t = cleaned.transpose();
    t.set_name(name);
    t
}

/// Classical (duplicate-free, scheme-respecting) union of two tables
/// representing union-compatible relations: tabular union, then purge to
/// eliminate the redundant column block, then clean-up to eliminate
/// duplicate rows (paper §3.4, last paragraph).
pub fn classical_union(r: &Table, s: &Table, name: Symbol) -> Table {
    let u = super::traditional::union(r, s, name);
    let purged = purge(&u, &u.scheme(), &SymbolSet::new(), name);
    cleanup(&purged, &purged.scheme(), &purged.row_scheme(), name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::restructure::group;
    use tabular_core::fixtures;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn set(xs: &[&str]) -> SymbolSet {
        SymbolSet::from_iter(xs.iter().map(|x| nm(x)))
    }

    fn null_set() -> SymbolSet {
        SymbolSet::from_iter([Symbol::Null])
    }

    /// The paper's §3.4 walk-through: clean-up by Part on ⊥ applied to the
    /// Figure 4 result groups the information per part into one row each;
    /// purge on Sold by Region then recovers the bold SalesInfo2 table.
    #[test]
    fn cleanup_then_purge_recovers_sales_info2() {
        let grouped = fixtures::figure4_grouped();
        let cleaned = cleanup(&grouped, &set(&["Part"]), &null_set(), nm("Sales"));
        // Region header row + one row per part.
        assert_eq!(cleaned.height(), 4);
        let purged = purge(&cleaned, &set(&["Sold"]), &set(&["Region"]), nm("Sales"));
        let info2 = fixtures::sales_info2();
        let expected = info2.table_str("Sales").unwrap();
        assert!(
            purged.equiv(expected),
            "purge mismatch:\n{purged}\nexpected:\n{expected}"
        );
    }

    #[test]
    fn cleanup_is_duplicate_elimination_on_relations() {
        let t = Table::relational("R", &["A", "B"], &[&["1", "2"], &["1", "2"], &["3", "4"]]);
        let c = cleanup(&t, &t.scheme(), &null_set(), nm("R"));
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn cleanup_retains_groups_without_common_subsumer() {
        // Two rows agree on A but conflict on B: no join, keep both.
        let t = Table::from_grid(&[&["R", "A", "B"], &["_", "1", "2"], &["_", "1", "3"]]).unwrap();
        let c = cleanup(&t, &set(&["A"]), &null_set(), nm("R"));
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn cleanup_joins_complementary_rows() {
        let t = Table::from_grid(&[
            &["R", "A", "B", "C"],
            &["_", "1", "2", "_"],
            &["_", "1", "_", "3"],
        ])
        .unwrap();
        let c = cleanup(&t, &set(&["A"]), &null_set(), nm("R"));
        assert_eq!(c.height(), 1);
        assert_eq!(
            c.data_row(1),
            &[Symbol::value("1"), Symbol::value("2"), Symbol::value("3")]
        );
    }

    #[test]
    fn cleanup_leaves_rows_outside_on_untouched() {
        let grouped = fixtures::figure4_grouped();
        let cleaned = cleanup(&grouped, &set(&["Part"]), &null_set(), nm("Sales"));
        // The Region header row (row attribute Region ∉ {⊥}) survives as-is.
        assert_eq!(cleaned.get(1, 0), nm("Region"));
        assert_eq!(cleaned.get(1, 2), Symbol::value("east"));
    }

    #[test]
    fn cleanup_never_merges_across_row_attributes() {
        let t = Table::from_grid(&[&["R", "A", "B"], &["x", "1", "2"], &["y", "1", "_"]]).unwrap();
        let c = cleanup(
            &t,
            &set(&["A"]),
            &SymbolSet::from_iter([nm("x"), nm("y")]),
            nm("R"),
        );
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn cleanup_is_idempotent() {
        let grouped = group(
            &fixtures::sales_relation(),
            &set(&["Region"]),
            &set(&["Sold"]),
            nm("Sales"),
        );
        let once = cleanup(&grouped, &set(&["Part"]), &null_set(), nm("Sales"));
        let twice = cleanup(&once, &set(&["Part"]), &null_set(), nm("Sales"));
        assert_eq!(once, twice);
    }

    #[test]
    fn merged_row_subsumes_every_group_member() {
        let grouped = fixtures::figure4_grouped();
        let cleaned = cleanup(&grouped, &set(&["Part"]), &null_set(), nm("Sales"));
        for i in 1..=grouped.height() {
            if grouped.get(i, 0) != Symbol::Null {
                continue;
            }
            assert!(
                (1..=cleaned.height()).any(|k| grouped.row_subsumed_by(i, &cleaned, k)),
                "row {i} of the input is not subsumed in the output"
            );
        }
    }

    #[test]
    fn purge_merges_duplicate_columns_by_attribute() {
        // The union of two one-column tables has two A columns with
        // complementary ⊥ patterns; purging with empty `by` joins them.
        let a = Table::relational("R", &["A"], &[&["1"]]);
        let b = Table::relational("S", &["A"], &[&["2"]]);
        let u = crate::ops::traditional::union(&a, &b, nm("T"));
        assert_eq!(u.width(), 2);
        let p = purge(&u, &u.scheme(), &SymbolSet::new(), nm("T"));
        assert_eq!(p.width(), 1);
        assert_eq!(p.height(), 2);
    }

    #[test]
    fn classical_union_on_relations() {
        let a = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
        let b = Table::relational("S", &["A", "B"], &[&["1", "2"], &["5", "6"]]);
        let u = classical_union(&a, &b, nm("T"));
        assert_eq!(u.width(), 2);
        assert_eq!(u.height(), 3);
        assert!(u.is_relational());
    }

    #[test]
    fn classical_union_is_commutative_up_to_permutation() {
        let a = Table::relational("R", &["A"], &[&["1"]]);
        let b = Table::relational("S", &["A"], &[&["2"]]);
        let u1 = classical_union(&a, &b, nm("T"));
        let u2 = classical_union(&b, &a, nm("T"));
        assert!(u1.equiv(&u2));
    }
}
