//! Dual operations (paper §3.3): "For each of the operations defined in
//! the tabular algebra, it is now possible to express in the tabular
//! algebra a dual operation obtained by interchanging the roles of rows
//! and columns" — realized uniformly as `transpose ∘ op ∘ transpose`.
//!
//! The duals are genuine additions to the user-facing algebra: column
//! selection, column projection, column-wise grouping, etc., all derived
//! rather than primitive, exactly as the paper prescribes.

use crate::error::Result;
use tabular_core::{Symbol, SymbolSet, Table};

/// Lift a table-to-table operation to its row/column dual.
pub fn dualize(r: &Table, name: Symbol, op: impl FnOnce(&Table) -> Table) -> Table {
    let flipped = r.transpose();
    let mut out = op(&flipped).transpose();
    out.set_name(name);
    out
}

/// Fallible variant of [`dualize`].
pub fn try_dualize(
    r: &Table,
    name: Symbol,
    op: impl FnOnce(&Table) -> Result<Table>,
) -> Result<Table> {
    let flipped = r.transpose();
    let mut out = op(&flipped)?.transpose();
    out.set_name(name);
    Ok(out)
}

/// Column selection: keep the data *columns* `j` with `ρʲ(a) ≗ ρʲ(b)`,
/// where `a`, `b` range over row attributes — the dual of
/// [`select`](super::select).
pub fn col_select(r: &Table, a: Symbol, b: Symbol, name: Symbol) -> Table {
    dualize(r, name, |t| super::select(t, a, b, name))
}

/// Column projection: keep the data rows whose row attribute lies in
/// `attrs` — the dual of [`project`](super::project).
pub fn col_project(r: &Table, attrs: &SymbolSet, name: Symbol) -> Table {
    dualize(r, name, |t| super::project(t, attrs, name))
}

/// Column-wise grouping — the dual of [`group`](super::group): groups
/// *columns* by the values in the rows named `by`, replicating the rows
/// named `on`.
pub fn col_group(r: &Table, by: &SymbolSet, on: &SymbolSet, name: Symbol) -> Table {
    dualize(r, name, |t| super::group(t, by, on, name))
}

/// Column-wise merging — the dual of [`merge`](super::merge).
pub fn col_merge(r: &Table, on: &SymbolSet, by: &SymbolSet, name: Symbol) -> Table {
    dualize(r, name, |t| super::merge(t, on, by, name))
}

/// Column-wise splitting — the dual of [`split`](super::split): one table
/// per distinct combination of entries in the rows named `on`.
pub fn col_split(r: &Table, on: &SymbolSet, name: Symbol) -> Vec<Table> {
    let flipped = r.transpose();
    super::split(&flipped, on, name)
        .into_iter()
        .map(|t| {
            let mut out = t.transpose();
            out.set_name(name);
            out
        })
        .collect()
}

/// Column-wise constant selection — the dual of
/// [`select_const`](super::select_const).
pub fn col_select_const(r: &Table, a: Symbol, v: Symbol, name: Symbol) -> Table {
    dualize(r, name, |t| super::select_const(t, a, v, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use tabular_core::fixtures;

    fn nm(s: &str) -> Symbol {
        Symbol::name(s)
    }

    fn set(xs: &[&str]) -> SymbolSet {
        SymbolSet::from_iter(xs.iter().map(|x| nm(x)))
    }

    #[test]
    fn col_project_keeps_named_rows() {
        let info2 = fixtures::sales_info2();
        let t = info2.table_str("Sales").unwrap();
        // Keep only the Region header row.
        let out = col_project(t, &set(&["Region"]), nm("T"));
        assert_eq!(out.height(), 1);
        assert_eq!(out.width(), t.width());
        assert_eq!(out.get(1, 0), nm("Region"));
        assert_eq!(out.get(1, 2), Symbol::value("east"));
    }

    #[test]
    fn col_select_compares_rows() {
        let t = Table::from_grid(&[
            &["T", "A", "B", "C"],
            &["x", "1", "2", "3"],
            &["y", "1", "5", "3"],
        ])
        .unwrap();
        // Columns where the x-entry weakly equals the y-entry: A and C.
        let out = col_select(&t, nm("x"), nm("y"), nm("T"));
        assert_eq!(out.width(), 2);
        assert_eq!(out.col_attrs(), &[nm("A"), nm("C")]);
        assert_eq!(out.height(), 2);
    }

    #[test]
    fn col_select_const_picks_columns_by_entry() {
        let info2 = fixtures::sales_info2();
        let t = info2.table_str("Sales").unwrap();
        // Columns whose Region-row entry is east: exactly one Sold column.
        let out = col_select_const(t, nm("Region"), Symbol::value("east"), nm("T"));
        assert_eq!(out.width(), 1);
        assert_eq!(out.col_attr(1), nm("Sold"));
        assert_eq!(out.get(1, 1), Symbol::value("east"));
    }

    #[test]
    fn col_group_is_the_transposed_group() {
        let rel = fixtures::sales_relation().transpose();
        let by = set(&["Region"]);
        let on = set(&["Sold"]);
        let direct = col_group(&rel, &by, &on, nm("G"));
        let via = ops::group(&rel.transpose(), &by, &on, nm("G")).transpose();
        let mut via = via;
        via.set_name(nm("G"));
        assert_eq!(direct, via);
        // And it reproduces the transposed Figure 4.
        assert!(direct.equiv(&fixtures::figure4_grouped().transpose()));
    }

    #[test]
    fn col_merge_inverts_col_group_content() {
        let info2t = {
            let db = fixtures::sales_info2();
            db.table_str("Sales").unwrap().transpose()
        };
        let out = col_merge(&info2t, &set(&["Sold"]), &set(&["Region"]), nm("M"));
        assert!(out.equiv(&fixtures::figure5_merged().transpose()));
    }

    #[test]
    fn col_split_partitions_columns() {
        let t = fixtures::sales_relation().transpose();
        // Split on the Part *row*: the transposed analogue of SPLIT.
        let parts = col_split(&t, &set(&["Part"]), nm("S"));
        assert_eq!(parts.len(), 3); // nuts, screws, bolts
        for p in &parts {
            // The Part row is split away; Region and Sold rows remain, and
            // the split's header row arrives as a header *column*.
            assert_eq!(p.height(), 2);
            assert_eq!(p.col_attr(1), nm("Part"));
        }
    }

    #[test]
    fn dualize_composes_with_identity() {
        let t = fixtures::sales_relation();
        let out = dualize(&t, t.name(), |x| x.clone());
        assert_eq!(out, t);
    }
}
