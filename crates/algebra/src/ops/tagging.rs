//! Tagging operations (paper §3.5): **tuple-new** and **set-new**, the
//! value-creating operations needed for completeness, inspired by their
//! counterparts in `FO + new + while`.

use crate::error::Result;
use crate::ops::restructure::check_rows;
use tabular_core::{Symbol, Table};

/// `T ← TUPLENEW_A(R)`: add a column named `a` holding a distinct fresh
/// value for every data row of `ρ`. Fresh values are chosen outside every
/// symbol seen so far (non-deterministically in the paper; here from the
/// interner's reserved namespace, which realizes the same determinacy-up-
/// to-isomorphism semantics, §4.1 condition (iv)).
pub fn tuple_new(r: &Table, a: Symbol, name: Symbol) -> Table {
    let mut t = r.clone();
    t.set_name(name);
    let mut col = Vec::with_capacity(r.height() + 1);
    col.push(a);
    col.extend((0..r.height()).map(|_| Symbol::fresh_value()));
    t.push_col(col);
    t
}

/// `T ← SETNEW_A(R)`: add a column named `a`; the data rows of the result
/// list, consecutively, every non-empty subset of the data rows of `ρ`,
/// each subset's rows tagged with that subset's own fresh value.
///
/// The result has `m · 2^(m−1)` data rows for input height `m` — this
/// exponential blow-up is the powerset construction that buys completeness
/// (Theorem 4.4). `max_rows` guards against runaway materialization; the
/// semantics are unchanged below the guard.
pub fn set_new(r: &Table, a: Symbol, name: Symbol, max_rows: usize) -> Result<Table> {
    let m = r.height();
    let total: usize = if m == 0 {
        0
    } else if m >= usize::BITS as usize - 1 {
        usize::MAX
    } else {
        m * (1usize << (m - 1))
    };
    check_rows("set-new rows", total, max_rows)?;

    let mut t = Table::new(name, 0, r.width() + 1);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    t.set(0, r.width() + 1, a);

    if m == 0 {
        return Ok(t);
    }
    for subset in 1u64..(1u64 << m) {
        let tag = Symbol::fresh_value();
        for i in 1..=m {
            if subset & (1 << (i - 1)) != 0 {
                let mut row = Vec::with_capacity(r.width() + 2);
                row.extend_from_slice(r.storage_row(i));
                row.push(tag);
                t.push_row(row);
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::SymbolSet;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    #[test]
    fn tuple_new_adds_distinct_fresh_values() {
        let r = Table::relational("R", &["A"], &[&["1"], &["2"], &["1"]]);
        let t = tuple_new(&r, nm("Id"), nm("T"));
        assert_eq!(t.width(), 2);
        assert_eq!(t.col_attr(2), nm("Id"));
        let ids: SymbolSet = (1..=3).map(|i| t.get(i, 2)).collect();
        assert_eq!(ids.len(), 3, "ids must be pairwise distinct");
        assert!(ids.iter().all(|s| s.is_value()));
        // Original columns untouched.
        assert_eq!(t.get(3, 1), Symbol::value("1"));
    }

    #[test]
    fn tuple_new_ids_fresh_across_invocations() {
        let r = Table::relational("R", &["A"], &[&["1"]]);
        let t1 = tuple_new(&r, nm("Id"), nm("T"));
        let t2 = tuple_new(&r, nm("Id"), nm("T"));
        assert_ne!(t1.get(1, 2), t2.get(1, 2));
    }

    #[test]
    fn set_new_enumerates_all_nonempty_subsets() {
        let r = Table::relational("R", &["A"], &[&["1"], &["2"], &["3"]]);
        let t = set_new(&r, nm("S"), nm("T"), 1 << 20).unwrap();
        // 3 · 2² = 12 rows.
        assert_eq!(t.height(), 12);
        // 7 distinct subset tags.
        let tags: SymbolSet = (1..=t.height()).map(|i| t.get(i, 2)).collect();
        assert_eq!(tags.len(), 7);
        // Tag multiplicities: three singletons, three pairs, one triple.
        let mut sizes: Vec<usize> = tags
            .iter()
            .map(|tag| (1..=t.height()).filter(|&i| t.get(i, 2) == tag).count())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn set_new_respects_the_row_guard() {
        let r = Table::relational(
            "R",
            &["A"],
            &[&["1"], &["2"], &["3"], &["4"], &["5"], &["6"]],
        );
        // 6·2⁵ = 192 rows > 100.
        assert!(set_new(&r, nm("S"), nm("T"), 100).is_err());
        assert!(set_new(&r, nm("S"), nm("T"), 192).is_ok());
    }

    #[test]
    fn set_new_of_empty_table_is_empty() {
        let r = Table::relational("R", &["A"], &[]);
        let t = set_new(&r, nm("S"), nm("T"), 10).unwrap();
        assert_eq!(t.height(), 0);
        assert_eq!(t.width(), 2);
    }
}
