//! The restructuring operations (paper §3.2): **group** / **merge** and
//! **split** / **collapse**, two pairs of mutual inverses (up to the
//! redundancy-removal operations of §3.4).
//!
//! The extended abstract defines these by worked example (Figures 4 and 5,
//! SalesInfo4) and defers the formal definitions to the unavailable
//! technical report; the generalizations implemented here reproduce every
//! example exactly and are validated by the inverse-pair property tests.

use crate::error::{AlgebraError, Result};
use tabular_core::{Symbol, SymbolSet, Table};

/// `T ← GROUP by 𝒜 on ℬ (R)` (Figure 4).
///
/// * `by` — the grouping attributes (e.g. `Region`);
/// * `on` — the grouped attributes (e.g. `Sold`).
///
/// The attribute row keeps the columns outside `by ∪ on` and gains one copy
/// of the `on`-columns' attributes per data row of `ρ`. For each attribute
/// `a ∈ by` (taking the leftmost column named `a` when repeated) a header
/// row with row attribute `a` is added, carrying `ρᵢ(a)` under the `i`-th
/// copy block. Original data row `i` contributes its `on`-entries under
/// copy block `i`, everything else ⊥.
pub fn group(r: &Table, by: &SymbolSet, on: &SymbolSet, name: Symbol) -> Table {
    let grouped = by.union(on);
    let c_cols = r.cols_not_in(&grouped);
    let b_cols = r.cols_in(on);
    let m = r.height();
    let width = c_cols.len() + m * b_cols.len();

    let mut t = Table::new(name, 0, width);
    // Attribute row: C attributes, then m copies of the on-attributes.
    for (k, &j) in c_cols.iter().enumerate() {
        t.set(0, k + 1, r.col_attr(j));
    }
    for block in 0..m {
        for (k, &j) in b_cols.iter().enumerate() {
            t.set(
                0,
                c_cols.len() + block * b_cols.len() + k + 1,
                r.col_attr(j),
            );
        }
    }
    // One header row per grouping attribute, leftmost occurrence first.
    let mut seen = SymbolSet::new();
    for j in r.cols_in(by) {
        let a = r.col_attr(j);
        if seen.contains(a) {
            continue;
        }
        seen.insert(a);
        let mut row = vec![Symbol::Null; width + 1];
        row[0] = a;
        for (block, i) in (1..=m).enumerate() {
            for k in 0..b_cols.len() {
                row[c_cols.len() + block * b_cols.len() + k + 1] = r.get(i, j);
            }
        }
        t.push_row(row);
    }
    // Data rows: C entries plus the on-entries in this row's own block.
    for (block, i) in (1..=m).enumerate() {
        let mut row = vec![Symbol::Null; width + 1];
        row[0] = r.get(i, 0);
        for (k, &j) in c_cols.iter().enumerate() {
            row[k + 1] = r.get(i, j);
        }
        for (k, &j) in b_cols.iter().enumerate() {
            row[c_cols.len() + block * b_cols.len() + k + 1] = r.get(i, j);
        }
        t.push_row(row);
    }
    t
}

/// `T ← MERGE on ℬ by 𝒜 (R)` (Figure 5) — the inverse of grouping.
///
/// * `on` — the data attributes to merge (e.g. `Sold`);
/// * `by` — the *row* attributes of the header rows naming the copies
///   (e.g. `Region`).
///
/// The `on`-columns are grouped into *blocks* by their header tuples (their
/// entries in the `by`-rows). Each data row of `ρ` outside the header rows
/// produces, per block, rows carrying: its non-`on` entries, the block's
/// header tuple under new columns named by the header rows' row
/// attributes, and the block's `on`-entries under one column per distinct
/// `on`-attribute. Blocks containing several columns with the *same*
/// attribute (as arises when merging a grouped table, Figure 4 → Figure 5
/// discussion) emit one row per repetition, which is what makes the result
/// "even more uneconomical" yet information-preserving.
pub fn merge(r: &Table, on: &SymbolSet, by: &SymbolSet, name: Symbol) -> Table {
    let a_rows = r.rows_in(by);
    let data_rows = r.rows_not_in(by);
    let b_cols = r.cols_in(on);
    let c_cols = r.cols_not_in(on);

    // Distinct on-attributes in order of first occurrence.
    let mut b_attrs: Vec<Symbol> = Vec::new();
    for &j in &b_cols {
        if !b_attrs.contains(&r.col_attr(j)) {
            b_attrs.push(r.col_attr(j));
        }
    }

    // Group the on-columns into blocks by header tuple.
    let header = |j: usize| -> Vec<Symbol> { a_rows.iter().map(|&i| r.get(i, j)).collect() };
    let mut blocks: Vec<(Vec<Symbol>, Vec<usize>)> = Vec::new();
    for &j in &b_cols {
        let h = header(j);
        match blocks.iter_mut().find(|(bh, _)| *bh == h) {
            Some((_, cols)) => cols.push(j),
            None => blocks.push((h, vec![j])),
        }
    }

    let width = c_cols.len() + a_rows.len() + b_attrs.len();
    let mut t = Table::new(name, 0, width);
    for (k, &j) in c_cols.iter().enumerate() {
        t.set(0, k + 1, r.col_attr(j));
    }
    for (k, &i) in a_rows.iter().enumerate() {
        t.set(0, c_cols.len() + k + 1, r.get(i, 0));
    }
    for (k, &b) in b_attrs.iter().enumerate() {
        t.set(0, c_cols.len() + a_rows.len() + k + 1, b);
    }

    for &i in &data_rows {
        for (h, cols) in &blocks {
            // Columns of this block, bucketed per attribute.
            let per_attr: Vec<Vec<usize>> = b_attrs
                .iter()
                .map(|&b| {
                    cols.iter()
                        .copied()
                        .filter(|&j| r.col_attr(j) == b)
                        .collect()
                })
                .collect();
            let reps = per_attr.iter().map(Vec::len).max().unwrap_or(0).max(1);
            for rep in 0..reps {
                let mut row = vec![Symbol::Null; width + 1];
                row[0] = r.get(i, 0);
                for (k, &j) in c_cols.iter().enumerate() {
                    row[k + 1] = r.get(i, j);
                }
                for (k, &hv) in h.iter().enumerate() {
                    row[c_cols.len() + k + 1] = hv;
                }
                for (k, cols_of_attr) in per_attr.iter().enumerate() {
                    if let Some(&j) = cols_of_attr.get(rep) {
                        row[c_cols.len() + a_rows.len() + k + 1] = r.get(i, j);
                    }
                }
                t.push_row(row);
            }
        }
    }
    t
}

/// `T ← SPLIT on 𝒜 (R)`: one table per distinct combination of values
/// under the `on`-columns (SalesInfo4 in Figure 1).
///
/// Each output table drops the `on`-columns, gains one header row per
/// `on`-column — row attribute the column's *attribute name*, every entry
/// the combination's value — and keeps the matching data rows projected
/// onto the remaining columns. All outputs carry the name `name`; their
/// number depends on the instance.
pub fn split(r: &Table, on: &SymbolSet, name: Symbol) -> Vec<Table> {
    let a_cols = r.cols_in(on);
    let rest = r.cols_not_in(on);

    let mut combos: Vec<Vec<Symbol>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for i in 1..=r.height() {
        let key: Vec<Symbol> = a_cols.iter().map(|&j| r.get(i, j)).collect();
        match combos.iter().position(|c| *c == key) {
            Some(p) => members[p].push(i),
            None => {
                combos.push(key);
                members.push(vec![i]);
            }
        }
    }

    combos
        .iter()
        .zip(&members)
        .map(|(combo, rows)| {
            let mut t = Table::new(name, 0, rest.len());
            for (k, &j) in rest.iter().enumerate() {
                t.set(0, k + 1, r.col_attr(j));
            }
            for (k, &j) in a_cols.iter().enumerate() {
                let mut row = vec![combo[k]; rest.len() + 1];
                row[0] = r.col_attr(j);
                t.push_row(row);
            }
            for &i in rows {
                let mut row = Vec::with_capacity(rest.len() + 1);
                row.push(r.get(i, 0));
                row.extend(rest.iter().map(|&j| r.get(i, j)));
                t.push_row(row);
            }
            t
        })
        .collect()
}

/// `T ← COLLAPSE by 𝒜 (R)` — the inverse of splitting (paper §3.2): every
/// table named `R` is merged *on all the attributes of its scheme* by `𝒜`,
/// and the results are combined by tabular union (§3.1). The redundancy
/// left by the union (one column block per input table) is removed by
/// purge + clean-up, per the paper's discussion.
pub fn collapse(tables: &[&Table], by: &SymbolSet, name: Symbol) -> Table {
    let mut acc: Option<Table> = None;
    for t in tables {
        let merged = merge(t, &t.scheme(), by, name);
        acc = Some(match acc {
            None => merged,
            Some(prev) => super::traditional::union(&prev, &merged, name),
        });
    }
    acc.unwrap_or_else(|| Table::new(name, 0, 0))
}

/// Guard used by `set-new` (and reusable by other combinatorial ops): fail
/// with [`AlgebraError::LimitExceeded`] rather than materializing more than
/// `limit` rows.
pub fn check_rows(what: &'static str, attempted: usize, limit: usize) -> Result<()> {
    if attempted > limit {
        Err(AlgebraError::LimitExceeded {
            what,
            limit,
            attempted,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn set(xs: &[&str]) -> SymbolSet {
        SymbolSet::from_iter(xs.iter().map(|x| nm(x)))
    }

    #[test]
    fn group_reproduces_figure_4_exactly() {
        let out = group(
            &fixtures::sales_relation(),
            &set(&["Region"]),
            &set(&["Sold"]),
            nm("Sales"),
        );
        assert_eq!(out, fixtures::figure4_grouped());
    }

    #[test]
    fn merge_reproduces_figure_5_exactly() {
        let info2 = fixtures::sales_info2();
        let out = merge(
            info2.table_str("Sales").unwrap(),
            &set(&["Sold"]),
            &set(&["Region"]),
            nm("Sales"),
        );
        assert_eq!(out, fixtures::figure5_merged());
    }

    #[test]
    fn merge_of_grouped_table_is_uneconomical_but_complete() {
        // Paper: applying the merge to Figure 4 (bottom) "yields a
        // representation of the table top, but which is even more
        // uneconomical".
        let out = merge(
            &fixtures::figure4_grouped(),
            &set(&["Sold"]),
            &set(&["Region"]),
            nm("Sales"),
        );
        // 8 data rows × 4 region blocks × 2 repetitions.
        assert_eq!(out.height(), 64);
        // Every original tuple appears.
        let rel = fixtures::sales_relation();
        for i in 1..=rel.height() {
            let want: Vec<Symbol> = vec![Symbol::Null, rel.get(i, 1), rel.get(i, 2), rel.get(i, 3)];
            assert!(
                (1..=out.height()).any(|k| out.storage_row(k) == want.as_slice()),
                "missing tuple {want:?}"
            );
        }
    }

    #[test]
    fn split_reproduces_sales_info4() {
        let outs = split(&fixtures::sales_relation(), &set(&["Region"]), nm("Sales"));
        let got = tabular_core::Database::from_tables(outs);
        assert!(
            got.equiv(&fixtures::sales_info4()),
            "split mismatch:\n{got}"
        );
    }

    #[test]
    fn split_groups_duplicate_combinations() {
        let t = Table::relational("R", &["A", "B"], &[&["x", "1"], &["y", "2"], &["x", "3"]]);
        let outs = split(&t, &set(&["A"]), nm("R"));
        assert_eq!(outs.len(), 2);
        let x_table = outs
            .iter()
            .find(|o| o.get(1, 1) == Symbol::value("x"))
            .unwrap();
        assert_eq!(x_table.height(), 3); // header + 2 data rows
    }

    #[test]
    fn split_on_multiple_attributes() {
        let t = fixtures::sales_relation();
        let outs = split(&t, &set(&["Part", "Region"]), nm("Sales"));
        assert_eq!(outs.len(), 8); // all (part, region) pairs distinct
        let first = &outs[0];
        assert_eq!(first.height(), 3); // two header rows + one data row
        assert_eq!(first.width(), 1); // only Sold remains
        assert_eq!(first.get(1, 0), nm("Part"));
        assert_eq!(first.get(2, 0), nm("Region"));
    }

    #[test]
    fn collapse_inverts_split_up_to_redundancy() {
        use crate::ops::redundancy::{cleanup, purge};
        let rel = fixtures::sales_relation();
        let parts = split(&rel, &set(&["Region"]), nm("Sales"));
        let refs: Vec<&Table> = parts.iter().collect();
        let collapsed = collapse(&refs, &SymbolSet::from_iter([nm("Region")]), nm("Sales"));
        // Remove the union redundancy: purge the per-table column blocks
        // (grouping columns by attribute alone: empty `by`), then clean up
        // duplicate rows.
        let all_attrs = collapsed.scheme();
        let purged = purge(&collapsed, &all_attrs, &SymbolSet::new(), nm("Sales"));
        let cleaned = cleanup(&purged, &purged.scheme(), &purged.row_scheme(), nm("Sales"));
        // Same tuples as the original relation (column order may differ:
        // Region lands after Part/Sold blocks are merged).
        assert_eq!(cleaned.height(), rel.height());
        for i in 1..=rel.height() {
            let tuple: Vec<Symbol> = (1..=3).map(|j| rel.get(i, j)).collect();
            assert!(
                (1..=cleaned.height()).any(|k| {
                    let row: SymbolSet = cleaned.data_row(k).iter().copied().collect();
                    tuple.iter().all(|s| row.contains(*s))
                }),
                "tuple {tuple:?} missing from collapsed result\n{cleaned}"
            );
        }
    }

    #[test]
    fn group_with_empty_by_set_still_replicates() {
        let rel = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
        let g = group(&rel, &SymbolSet::new(), &set(&["B"]), nm("T"));
        // No header rows, A column + 2 copies of B.
        assert_eq!(g.width(), 3);
        assert_eq!(g.height(), 2);
    }

    #[test]
    fn group_on_missing_attribute_degenerates_gracefully() {
        let rel = Table::relational("R", &["A"], &[&["1"]]);
        let g = group(&rel, &set(&["Z"]), &set(&["Y"]), nm("T"));
        assert_eq!(g.width(), 1); // just A
        assert_eq!(g.height(), 1); // the single data row, no header rows
    }

    #[test]
    fn merge_with_no_header_rows_keeps_single_block() {
        let rel = Table::relational("R", &["A", "B"], &[&["1", "2"]]);
        let m = merge(&rel, &set(&["B"]), &set(&["Region"]), nm("T"));
        // No header rows → all B columns share the empty header tuple.
        assert_eq!(m.width(), 2); // A + B
        assert_eq!(m.height(), 1);
        assert_eq!(m.get(1, 2), Symbol::value("2"));
    }

    #[test]
    fn check_rows_guard() {
        assert!(check_rows("x", 5, 10).is_ok());
        assert!(check_rows("x", 11, 10).is_err());
    }
}
