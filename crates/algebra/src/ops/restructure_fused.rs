//! The fused restructuring kernel behind
//! [`OpKind::FusedRestructure`](crate::program::OpKind::FusedRestructure):
//! `PURGE ∘ CLEAN-UP ∘ GROUP` (the paper's §4.3 pivot chain) in one
//! traversal of the input, never materializing the grouped intermediate.
//!
//! `GROUP by 𝒜 on ℬ` blows an `m`-row table up to `|𝒞| + m·|ℬ|` columns
//! (one copy block per data row); the staged pipeline then rescans that
//! quadratic intermediate twice — once to merge rows (clean-up), once to
//! merge columns (purge). But under the applicability conditions checked
//! here, both merges are fully determined by the *original* rows:
//!
//! * the clean-up groups data rows by `(row attribute, 𝒞-subtuple)` — the
//!   same key is readable off the input, and because each input row owns a
//!   disjoint copy block, the group join can never conflict;
//! * the purge merges block columns by `(attribute, header tuple)` — the
//!   header tuple of row `i`'s block is just `ρᵢ(𝒜)`, also readable off
//!   the input, so each merged output cell is the informational join of
//!   the matching input entries.
//!
//! The kernel therefore emits the final cross-tab directly:
//! `O(|input| + |output|)` cells touched, versus the staged pipeline's
//! `O(m²·|ℬ|)` peak. Whenever any condition fails — or a merged cell's
//! join conflicts, in which case the staged purge would *retain* the
//! unmerged columns — the kernel abstains by returning `None` and the
//! caller replays the exact staged semantics, so fused and unfused runs
//! are byte-identical (the unit tests compare with `assert_eq!`, not
//! `equiv`).

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use tabular_core::{Symbol, SymbolSet, Table};

/// The denoted parameter sets of a `GROUP → CLEAN-UP (→ PURGE)` chain, as
/// recognized by `optimize::fuse_restructure` and evaluated by the fused
/// kernel.
#[derive(Clone, Debug)]
pub struct RestructureSpec {
    /// `GROUP by` — the grouping attributes (header rows of the grouped
    /// intermediate).
    pub group_by: SymbolSet,
    /// `GROUP on` — the grouped attributes (the per-row copy blocks).
    pub group_on: SymbolSet,
    /// `CLEAN-UP by` — grouping *column* attributes over the intermediate.
    pub cleanup_by: SymbolSet,
    /// `CLEAN-UP on` — participating *row* attributes over the
    /// intermediate.
    pub cleanup_on: SymbolSet,
    /// `PURGE (on, by)` closing a 3-op chain; `None` for the 2-op prefix
    /// `CLEAN-UP ∘ GROUP`.
    pub purge: Option<(SymbolSet, SymbolSet)>,
}

/// Clean-up groups over the *original* data rows: rows whose row attribute
/// participates are keyed by `(row attribute, 𝒞-subtuple)`; everything
/// else is its own singleton (clean-up passes it through unchanged).
/// Groups come out ordered by their first member, which is exactly the
/// staged emission order.
struct Group {
    first_row: usize,
    rows: Vec<usize>,
}

fn cleanup_groups(r: &Table, c_cols: &[usize], cleanup_on: &SymbolSet) -> Vec<Group> {
    let mut keys: HashMap<Vec<Symbol>, usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for i in 1..=r.height() {
        let attr = r.get(i, 0);
        if !cleanup_on.contains(attr) {
            groups.push(Group {
                first_row: i,
                rows: vec![i],
            });
            continue;
        }
        let mut key = Vec::with_capacity(c_cols.len() + 1);
        key.push(attr);
        key.extend(c_cols.iter().map(|&j| r.get(i, j)));
        match keys.entry(key) {
            Entry::Occupied(e) => groups[*e.get()].rows.push(i),
            Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(Group {
                    first_row: i,
                    rows: vec![i],
                });
            }
        }
    }
    groups
}

/// Evaluate the chain described by `spec` over `r` in a single pass, or
/// return `None` when the single-pass model does not apply (the caller
/// must then run the staged pipeline, whose result is the operation's
/// definition).
///
/// Applicability — each condition rules out a way the staged pipeline
/// could deviate from the model above:
///
/// 1. no header attribute lies in `cleanup_on` (header rows must pass
///    through the clean-up untouched);
/// 2. every carried (𝒞) column attribute lies in `cleanup_by` and no
///    block (ℬ) column attribute does — so the clean-up key over the
///    intermediate is exactly `(row attribute, 𝒞-subtuple)` and group
///    joins cannot conflict (copy blocks are disjoint);
/// 3. with a purge: every header attribute lies in `purge by` and no data
///    row attribute does (header rows, and only they, key the column
///    merge), no 𝒞 attribute lies in `purge on` and every ℬ attribute
///    does (carried columns pass through, every block column merges);
/// 4. no merged output cell receives two distinct non-⊥ contributions —
///    a conflict means the staged purge would retain the unmerged
///    columns, a shape this kernel cannot produce.
pub fn fused_restructure(r: &Table, spec: &RestructureSpec, name: Symbol) -> Option<Table> {
    let grouped_attrs = spec.group_by.union(&spec.group_on);
    let c_cols = r.cols_not_in(&grouped_attrs);
    let b_cols = r.cols_in(&spec.group_on);
    let m = r.height();

    // Header attributes, leftmost occurrence first — one grouped header
    // row each, sourced from the leftmost column so named (as in `group`).
    let mut header: Vec<(Symbol, usize)> = Vec::new();
    let mut seen = SymbolSet::new();
    for j in r.cols_in(&spec.group_by) {
        let a = r.col_attr(j);
        if !seen.contains(a) {
            seen.insert(a);
            header.push((a, j));
        }
    }

    if header.iter().any(|&(a, _)| spec.cleanup_on.contains(a)) {
        return None; // header rows would participate in the clean-up
    }
    if c_cols
        .iter()
        .any(|&j| !spec.cleanup_by.contains(r.col_attr(j)))
    {
        return None; // the clean-up key must pin every carried column
    }
    if b_cols
        .iter()
        .any(|&j| spec.cleanup_by.contains(r.col_attr(j)))
    {
        return None; // the clean-up key must exclude the copy blocks
    }
    if let Some((p_on, p_by)) = &spec.purge {
        if header.iter().any(|&(a, _)| !p_by.contains(a)) {
            return None; // every header row must key the column merge
        }
        if c_cols.iter().any(|&j| p_on.contains(r.col_attr(j))) {
            return None; // carried columns must pass through the purge
        }
        if b_cols.iter().any(|&j| !p_on.contains(r.col_attr(j))) {
            return None; // every block column must participate
        }
        if (1..=m).any(|i| p_by.contains(r.get(i, 0))) {
            return None; // data rows must not key the column merge
        }
    }

    let groups = cleanup_groups(r, &c_cols, &spec.cleanup_on);

    if spec.purge.is_none() {
        // 2-op chain: the grouped layout (𝒞 columns then m copy blocks),
        // one row per clean-up group instead of one per input row.
        let width = c_cols.len() + m * b_cols.len();
        let mut t = Table::new(name, 0, width);
        for (k, &j) in c_cols.iter().enumerate() {
            t.set(0, k + 1, r.col_attr(j));
        }
        for block in 0..m {
            for (k, &j) in b_cols.iter().enumerate() {
                t.set(
                    0,
                    c_cols.len() + block * b_cols.len() + k + 1,
                    r.col_attr(j),
                );
            }
        }
        for &(a, j) in &header {
            let mut row = vec![Symbol::Null; width + 1];
            row[0] = a;
            for (block, i) in (1..=m).enumerate() {
                for k in 0..b_cols.len() {
                    row[c_cols.len() + block * b_cols.len() + k + 1] = r.get(i, j);
                }
            }
            t.push_row(row);
        }
        for g in &groups {
            let mut row = vec![Symbol::Null; width + 1];
            row[0] = r.get(g.first_row, 0);
            for (k, &j) in c_cols.iter().enumerate() {
                row[k + 1] = r.get(g.first_row, j);
            }
            for &i in &g.rows {
                let block = i - 1;
                for (k, &j) in b_cols.iter().enumerate() {
                    row[c_cols.len() + block * b_cols.len() + k + 1] = r.get(i, j);
                }
            }
            t.push_row(row);
        }
        return Some(t);
    }

    // 3-op chain: one output column per distinct (block attribute, header
    // tuple), in first-occurrence order — exactly where the staged purge
    // emits each merged column (the position of its leftmost member).
    let mut htups: Vec<Vec<Symbol>> = Vec::new();
    let mut hids: HashMap<Vec<Symbol>, usize> = HashMap::new();
    let mut out_cols: Vec<(Symbol, usize)> = Vec::new();
    let mut col_of: HashMap<(Symbol, usize), usize> = HashMap::new();
    // Per data row, per block column: which output column it lands in.
    let mut col_ix: Vec<Vec<usize>> = Vec::with_capacity(m);
    for i in 1..=m {
        let h: Vec<Symbol> = header.iter().map(|&(_, j)| r.get(i, j)).collect();
        let hid = match hids.entry(h) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let hid = htups.len();
                htups.push(e.key().clone());
                e.insert(hid);
                hid
            }
        };
        let mut ix = Vec::with_capacity(b_cols.len());
        for &j in &b_cols {
            let key = (r.col_attr(j), hid);
            let c = match col_of.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let c = out_cols.len();
                    out_cols.push(key);
                    e.insert(c);
                    c
                }
            };
            ix.push(c);
        }
        col_ix.push(ix);
    }

    let width = c_cols.len() + out_cols.len();
    let mut t = Table::new(name, 0, width);
    for (k, &j) in c_cols.iter().enumerate() {
        t.set(0, k + 1, r.col_attr(j));
    }
    for (k, &(b, _)) in out_cols.iter().enumerate() {
        t.set(0, c_cols.len() + k + 1, b);
    }
    for (a_idx, &(a, _)) in header.iter().enumerate() {
        let mut row = vec![Symbol::Null; width + 1];
        row[0] = a;
        for (k, &(_, hid)) in out_cols.iter().enumerate() {
            row[c_cols.len() + k + 1] = htups[hid][a_idx];
        }
        t.push_row(row);
    }
    for g in &groups {
        let mut row = vec![Symbol::Null; width + 1];
        row[0] = r.get(g.first_row, 0);
        for (k, &j) in c_cols.iter().enumerate() {
            row[k + 1] = r.get(g.first_row, j);
        }
        for &i in &g.rows {
            for (k, &j) in b_cols.iter().enumerate() {
                let slot = c_cols.len() + col_ix[i - 1][k] + 1;
                match row[slot].join(r.get(i, j)) {
                    Some(joined) => row[slot] = joined,
                    None => return None, // condition 4: the staged purge would retain columns
                }
            }
        }
        t.push_row(row);
    }
    Some(t)
}

/// Cells the grouped intermediate `GROUP by 𝒜 on ℬ (R)` would
/// materialize — `(m + |headers| + 1) × (|𝒞| + m·|ℬ| + 1)`, counting the
/// attribute row and the row-attribute column. Used to pre-size the
/// staged fallback against the cell limit before anything is built, and
/// by the benchmark harness to report avoided work.
pub fn grouped_cells(r: &Table, group_by: &SymbolSet, group_on: &SymbolSet) -> usize {
    let grouped = group_by.union(group_on);
    let c = r.cols_not_in(&grouped).len();
    let b = r.cols_in(group_on).len();
    let m = r.height();
    let mut seen = SymbolSet::new();
    let mut headers = 0usize;
    for j in r.cols_in(group_by) {
        let a = r.col_attr(j);
        if !seen.contains(a) {
            seen.insert(a);
            headers += 1;
        }
    }
    (m + headers + 1).saturating_mul(c + m.saturating_mul(b) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::redundancy::{cleanup, purge};
    use crate::ops::restructure::group;
    use tabular_core::fixtures;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn set(xs: &[&str]) -> SymbolSet {
        SymbolSet::from_iter(xs.iter().map(|x| nm(x)))
    }

    fn null_set() -> SymbolSet {
        SymbolSet::from_iter([Symbol::Null])
    }

    /// The definition the kernel must reproduce byte-for-byte.
    fn staged(r: &Table, spec: &RestructureSpec, name: Symbol) -> Table {
        let g = group(r, &spec.group_by, &spec.group_on, name);
        let c = cleanup(&g, &spec.cleanup_by, &spec.cleanup_on, name);
        match &spec.purge {
            Some((on, by)) => purge(&c, on, by, name),
            None => c,
        }
    }

    fn pivot_spec(keys: &[&str], col: &str, val: &str) -> RestructureSpec {
        RestructureSpec {
            group_by: set(&[col]),
            group_on: set(&[val]),
            cleanup_by: set(keys),
            cleanup_on: null_set(),
            purge: Some((set(&[val]), set(&[col]))),
        }
    }

    #[test]
    fn fused_pivot_matches_staged_byte_for_byte() {
        let rel = fixtures::sales_relation();
        let spec = pivot_spec(&["Part"], "Region", "Sold");
        let fused = fused_restructure(&rel, &spec, nm("Sales")).expect("pivot chain is fusable");
        assert_eq!(fused, staged(&rel, &spec, nm("Sales")));
        let info2 = fixtures::sales_info2();
        assert!(fused.equiv(info2.table_str("Sales").unwrap()));
    }

    #[test]
    fn fused_pivot_matches_staged_across_sizes() {
        for (parts, regions) in [(1, 1), (3, 4), (10, 7), (16, 8)] {
            let rel = fixtures::make_sales_relation(parts, regions);
            let spec = pivot_spec(&["Part"], "Region", "Sold");
            let fused = fused_restructure(&rel, &spec, nm("Sales")).expect("fusable");
            assert_eq!(fused, staged(&rel, &spec, nm("Sales")), "{parts}×{regions}");
        }
    }

    #[test]
    fn fused_two_op_prefix_matches_staged() {
        let rel = fixtures::sales_relation();
        let spec = RestructureSpec {
            purge: None,
            ..pivot_spec(&["Part"], "Region", "Sold")
        };
        let fused = fused_restructure(&rel, &spec, nm("Sales")).expect("fusable");
        assert_eq!(fused, staged(&rel, &spec, nm("Sales")));
    }

    #[test]
    fn fused_handles_duplicate_block_attributes() {
        // Two Sold columns in one copy block merge under the same
        // (attribute, header tuple) output column.
        let rel = Table::from_grid(&[
            &["R", "Part", "Region", "Sold", "Sold"],
            &["_", "p1", "east", "10", "_"],
            &["_", "p2", "west", "_", "20"],
        ])
        .unwrap();
        let spec = pivot_spec(&["Part"], "Region", "Sold");
        let fused = fused_restructure(&rel, &spec, nm("T")).expect("fusable");
        assert_eq!(fused, staged(&rel, &spec, nm("T")));
    }

    #[test]
    fn fused_handles_degenerate_tables() {
        let spec = pivot_spec(&["Part"], "Region", "Sold");
        // Empty table: header rows only.
        let empty = Table::relational("R", &["Part", "Region", "Sold"], &[]);
        let fused = fused_restructure(&empty, &spec, nm("T")).expect("fusable");
        assert_eq!(fused, staged(&empty, &spec, nm("T")));
        // A table missing the pivot attributes entirely: no blocks, no
        // headers, every column carried — fusable when the carried
        // columns are pinned by the clean-up key...
        let only_keys = Table::relational("R", &["Part"], &[&["p1"], &["p2"]]);
        let fused = fused_restructure(&only_keys, &spec, nm("T")).expect("fusable");
        assert_eq!(fused, staged(&only_keys, &spec, nm("T")));
        // ...and abstained from when they are not (the staged clean-up
        // could then merge rows this kernel keeps apart).
        let off = Table::relational("R", &["A"], &[&["1"]]);
        assert!(fused_restructure(&off, &spec, nm("T")).is_none());
        // Empty group-by: no header rows, a single merged block.
        let rel = fixtures::sales_relation();
        let spec = RestructureSpec {
            group_by: SymbolSet::new(),
            group_on: set(&["Sold"]),
            cleanup_by: set(&["Part", "Region"]),
            cleanup_on: null_set(),
            purge: Some((set(&["Sold"]), SymbolSet::new())),
        };
        let fused = fused_restructure(&rel, &spec, nm("T")).expect("fusable");
        assert_eq!(fused, staged(&rel, &spec, nm("T")));
    }

    #[test]
    fn kernel_abstains_when_the_cleanup_key_misses_a_carried_column() {
        // Part is carried (outside by ∪ on) but absent from the clean-up
        // key: the staged clean-up could merge rows with different parts.
        let rel = fixtures::sales_relation();
        let spec = RestructureSpec {
            cleanup_by: SymbolSet::new(),
            ..pivot_spec(&["Part"], "Region", "Sold")
        };
        assert!(fused_restructure(&rel, &spec, nm("T")).is_none());
    }

    #[test]
    fn kernel_abstains_when_header_rows_would_clean_up() {
        let rel = fixtures::sales_relation();
        let spec = RestructureSpec {
            cleanup_on: SymbolSet::from_iter([Symbol::Null, nm("Region")]),
            ..pivot_spec(&["Part"], "Region", "Sold")
        };
        assert!(fused_restructure(&rel, &spec, nm("T")).is_none());
    }

    #[test]
    fn kernel_abstains_on_a_conflicting_column_merge() {
        // Two rows with the same part and region but different Sold: the
        // purge join conflicts and the staged pipeline retains both
        // columns — the kernel must abstain rather than guess.
        let rel = Table::relational(
            "R",
            &["Part", "Region", "Sold"],
            &[&["p1", "east", "10"], &["p1", "east", "20"]],
        );
        let spec = pivot_spec(&["Part"], "Region", "Sold");
        assert!(fused_restructure(&rel, &spec, nm("T")).is_none());
        // And the staged result indeed keeps the unmerged columns: Part
        // plus both Sold columns.
        assert_eq!(staged(&rel, &spec, nm("T")).width(), 3);
    }

    #[test]
    fn grouped_cells_matches_the_real_intermediate() {
        let rel = fixtures::sales_relation();
        let (by, on) = (set(&["Region"]), set(&["Sold"]));
        let g = group(&rel, &by, &on, nm("T"));
        assert_eq!(
            grouped_cells(&rel, &by, &on),
            (g.height() + 1) * (g.width() + 1)
        );
    }
}
