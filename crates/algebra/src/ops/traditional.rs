//! The traditional operations (paper §3.1, Figure 3): union, difference,
//! Cartesian product, renaming, projection, and selection — the relational
//! algebra operations adapted to tables.
//!
//! Union and difference are defined so that they *always exist*, whatever
//! the schemes of the operands; the classical versions are recovered by
//! composing with the redundancy-removal operations (§3.4), see
//! [`classical_union`](crate::ops::classical_union).

use tabular_core::{Symbol, SymbolSet, Table};

/// Tabular union `T ← R ∪ S` (Figure 3, left).
///
/// The result's columns are the columns of `ρ` followed by the columns of
/// `σ`; every data row of `ρ` is padded with ⊥ under `σ`'s columns and vice
/// versa, so the operation is defined for arbitrary (even
/// scheme-incompatible) operands. Composing with purge and clean-up yields
/// classical union on union-compatible relations.
pub fn union(r: &Table, s: &Table, name: Symbol) -> Table {
    let width = r.width() + s.width();
    let mut t = Table::new(name, 0, width);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    for j in 1..=s.width() {
        t.set(0, r.width() + j, s.col_attr(j));
    }
    t.append_rows(|rows| {
        rows.reserve_rows(r.height() + s.height());
        for i in 1..=r.height() {
            rows.push_row_iter(
                r.storage_row(i)
                    .iter()
                    .copied()
                    .chain(std::iter::repeat_n(Symbol::Null, s.width())),
            );
        }
        for k in 1..=s.height() {
            rows.push_row_iter(
                std::iter::once(s.get(k, 0))
                    .chain(std::iter::repeat_n(Symbol::Null, r.width()))
                    .chain(s.data_row(k).iter().copied()),
            );
        }
    });
    t
}

/// Tabular difference `T ← R \ S` (Figure 3, middle).
///
/// Keeps the data rows of `ρ` that are not *matched* by any data row of
/// `σ`, where `ρᵢ` matches `σₖ` iff the row attributes are equal and the
/// rows mutually subsume each other (`ρᵢ ≋ σₖ`). On relational tables this
/// is exactly classical difference; on general tables it is always defined.
///
/// When the operands have identical column-attribute sequences with
/// pairwise-distinct attributes, the per-attribute entry sets are
/// singletons and mutual subsumption degenerates to plain storage-row
/// equality (⊥ included: `{⊥} ≗ {v}` fails in one direction exactly when
/// `⊥ ≠ v`), so matching runs through a hash set in `O(|ρ| + |σ|)` instead
/// of the pairwise `O(|ρ|·|σ|)` subsumption scan. This is the shape every
/// compiled relational program produces, and the hot path of `while`
/// fixpoints such as transitive closure.
pub fn difference(r: &Table, s: &Table, name: Symbol) -> Table {
    let mut t = if aligned_distinct_schemes(r, s) {
        let matched: std::collections::HashSet<&[Symbol]> =
            (1..=s.height()).map(|k| s.storage_row(k)).collect();
        r.retain_rows(|i| !matched.contains(r.storage_row(i)))
    } else {
        r.retain_rows(|i| {
            !(1..=s.height())
                .any(|k| r.get(i, 0) == s.get(k, 0) && r.rows_subsume_each_other(i, s, k))
        })
    };
    t.set_name(name);
    t
}

/// True when both tables carry the same column-attribute sequence and the
/// attributes are pairwise distinct — the precondition for reducing row
/// matching (mutual subsumption + row-attribute equality) to storage-row
/// equality.
fn aligned_distinct_schemes(r: &Table, s: &Table) -> bool {
    r.width() == s.width() && r.col_attrs() == s.col_attrs() && r.scheme().len() == r.width()
}

/// Intersection, defined from difference in the usual way:
/// `R ∩ S = R \ (R \ S)`.
///
/// Evaluated from a single match bitmap instead of two [`difference`]
/// calls: the first difference's whole contribution is *which* rows of
/// `ρ` are matched by `σ`, so that `O(|ρ|·|σ|)` subsumption scan (hash
/// lookup under [`aligned_distinct_schemes`]) runs once, and the second
/// pass — removing rows matched by some row of `ρ \ σ` — checks only
/// against the unmatched subset the bitmap already names. Results are
/// identical to the two-difference derivation.
pub fn intersect(r: &Table, s: &Table, name: Symbol) -> Table {
    // Pass 1: matched[i-1] ⇔ some row of σ matches ρᵢ (the bitmap the
    // first difference would have complemented).
    let matched: Vec<bool> = if aligned_distinct_schemes(r, s) {
        let rows: std::collections::HashSet<&[Symbol]> =
            (1..=s.height()).map(|k| s.storage_row(k)).collect();
        (1..=r.height())
            .map(|i| rows.contains(r.storage_row(i)))
            .collect()
    } else {
        (1..=r.height())
            .map(|i| {
                (1..=s.height())
                    .any(|k| r.get(i, 0) == s.get(k, 0) && r.rows_subsume_each_other(i, s, k))
            })
            .collect()
    };
    // Pass 2: ρᵢ survives unless some *unmatched* row of ρ (a row of
    // ρ \ σ) matches it — which removes the unmatched rows themselves
    // (every row matches itself) and any matched row that mutually
    // subsumes an unmatched one. Within ρ the operand schemes trivially
    // align, so pairwise-distinct attributes alone enable the hash path.
    let mut t = if r.scheme().len() == r.width() {
        let removed: std::collections::HashSet<&[Symbol]> = (1..=r.height())
            .filter(|&j| !matched[j - 1])
            .map(|j| r.storage_row(j))
            .collect();
        r.retain_rows(|i| !removed.contains(r.storage_row(i)))
    } else {
        r.retain_rows(|i| {
            !(1..=r.height()).any(|j| {
                !matched[j - 1] && r.get(i, 0) == r.get(j, 0) && r.rows_subsume_each_other(i, r, j)
            })
        })
    };
    t.set_name(name);
    t
}

/// Cartesian product `T ← R × S` (Figure 3, right).
///
/// One data row per pair of data rows; columns of `ρ` followed by columns
/// of `σ`. The combined row attribute is the informational join of the two
/// row attributes when it exists (⊥ absorbs), and `ρ`'s row attribute
/// otherwise — the left-biased resolution is documented in DESIGN.md since
/// the extended abstract's diagram does not pin it down.
pub fn product(r: &Table, s: &Table, name: Symbol) -> Table {
    let width = r.width() + s.width();
    let mut t = Table::new(name, 0, width);
    for j in 1..=r.width() {
        t.set(0, j, r.col_attr(j));
    }
    for j in 1..=s.width() {
        t.set(0, r.width() + j, s.col_attr(j));
    }
    product_append(&mut t, r, 1, s);
    t
}

/// Append to `acc` the product rows `ρᵢ × σₖ` for every `i ≥ from_row` (in
/// the same left-major order [`product`] uses). This is the incremental
/// step of the delta `while` strategy: when `ρ` has only grown by appended
/// rows since the product was last computed and `σ` is unchanged, the new
/// product is the cached output plus exactly these rows.
pub fn product_append(acc: &mut Table, r: &Table, from_row: usize, s: &Table) {
    debug_assert_eq!(
        acc.width(),
        r.width() + s.width(),
        "product_append width mismatch"
    );
    if from_row > r.height() {
        return;
    }
    acc.append_rows(|rows| {
        rows.reserve_rows((r.height() + 1 - from_row) * s.height());
        for i in from_row..=r.height() {
            for k in 1..=s.height() {
                let attr = r.get(i, 0).join(s.get(k, 0)).unwrap_or_else(|| r.get(i, 0));
                rows.push_row_parts(attr, r.data_row(i), s.data_row(k));
            }
        }
    });
}

/// Renaming `T ← RENAME_{B←A}(R)`: every column attribute equal to `a`
/// becomes `b`.
pub fn rename(r: &Table, a: Symbol, b: Symbol, name: Symbol) -> Table {
    // When no attribute-row cell changes (attribute absent, or `a = b`)
    // and the name already matches, the result *is* the input: return the
    // handle clone without touching the shared cell buffer — any write
    // (including `set_name` with the same symbol) would materialize a
    // copy-on-write duplicate of the whole buffer. Pinned by an
    // alloc-regression guard. Self-renames of this shape are common in
    // double-buffered fixpoint bodies (`RTC ← RENAME[B←B](RTC)`).
    let rewrites = a != b && r.col_attrs().contains(&a);
    if !rewrites && r.name() == name {
        return r.clone();
    }
    let mut t = r.clone();
    t.set_name(name);
    if rewrites {
        for j in 1..=t.width() {
            if t.col_attr(j) == a {
                t.set(0, j, b);
            }
        }
    }
    t
}

/// Copy a table under a new name (derived: `RENAME_{A←A}`).
pub fn copy(r: &Table, name: Symbol) -> Table {
    let mut t = r.clone();
    t.set_name(name);
    t
}

/// Projection `T ← PROJECT_𝒜(R)`: keep the data columns whose attribute
/// lies in `attrs` (in original order; repeated attributes keep all their
/// columns).
pub fn project(r: &Table, attrs: &SymbolSet, name: Symbol) -> Table {
    let cols = r.cols_in(attrs);
    let mut t = r.select_cols(&cols);
    t.set_name(name);
    t
}

/// Selection `T ← SELECT_{A=B}(R)`: keep the data rows `i` for which
/// `ρᵢ(a) ≗ ρᵢ(b)` — *weak* equality of the entry sets under the two
/// attributes (paper §3.1: "weak equality is used instead of classical
/// equality in the definition of selection").
pub fn select(r: &Table, a: Symbol, b: Symbol, name: Symbol) -> Table {
    let mut t = r.retain_rows(|i| {
        r.row_entries_named(i, a)
            .weakly_equal(&r.row_entries_named(i, b))
    });
    t.set_name(name);
    t
}

/// Constant selection `T ← σ_{A=v}(R)`: keep the data rows having `v`
/// among their entries under attribute `a`. The paper derives this from
/// switching (§3.3); it is provided directly for convenience — see
/// [`select_const_via_switch`] for the derived construction used in the
/// equivalence tests.
pub fn select_const(r: &Table, a: Symbol, v: Symbol, name: Symbol) -> Table {
    let mut t = r.retain_rows(|i| r.row_entries_named(i, a).contains(v));
    t.set_name(name);
    t
}

/// The paper's derivation of constant selection using switch (§3.3): if
/// `v` occurs uniquely in the table, switching on `v` brings its row to
/// the attribute row, after which rows with `v` under `a` can be
/// recognized. Exposed so the tests can check it against
/// [`select_const`] on inputs where the derivation applies.
///
/// This is deliberately **not** a replay of the derivation: `switch`
/// only performs the row/column swap when `v` occurs *uniquely* in the
/// whole table (`crate::ops::switch` degenerates to a mere rename
/// otherwise), so the derivation's applicability precondition — pinned
/// by `select_const_via_switch_requires_a_unique_occurrence` below and
/// documented in DESIGN.md ("Constant selection via switch") — is
/// narrower than constant selection itself. The shortcut computes the
/// same data dependency directly and therefore also covers the inputs
/// the derivation cannot reach; `switch_brings_data_to_attribute_row`
/// (in `transpose`) demonstrates the §3.3 mechanism itself.
pub fn select_const_via_switch(r: &Table, a: Symbol, v: Symbol, name: Symbol) -> Table {
    select_const(r, a, v, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Table {
        Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]])
    }

    fn s() -> Table {
        Table::relational("S", &["A", "B"], &[&["1", "2"], &["5", "6"]])
    }

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    #[test]
    fn union_concatenates_columns_and_pads() {
        let t = union(&r(), &s(), nm("T"));
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 4);
        assert_eq!(t.name(), nm("T"));
        // Row from R: data under first block, ⊥ under second.
        assert_eq!(t.get(1, 1), Symbol::value("1"));
        assert!(t.get(1, 3).is_null());
        // Row from S: ⊥ under first block.
        assert!(t.get(3, 1).is_null());
        assert_eq!(t.get(3, 3), Symbol::value("1"));
    }

    #[test]
    fn union_works_on_incompatible_schemes() {
        let a = Table::relational("R", &["A"], &[&["1"]]);
        let b = Table::relational("S", &["X", "Y"], &[&["2", "3"]]);
        let t = union(&a, &b, nm("T"));
        assert_eq!(t.width(), 3);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn difference_is_classical_on_relations() {
        let t = difference(&r(), &s(), nm("T"));
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(1, 1), Symbol::value("3"));
        // R \ R = empty.
        assert_eq!(difference(&r(), &r(), nm("T")).height(), 0);
    }

    #[test]
    fn difference_matches_up_to_subsumption_equivalence() {
        // Rows that mutually subsume (same entry sets under same-named
        // columns) are removed even when column order differs.
        let a = Table::from_grid(&[&["R", "X", "X"], &["_", "1", "_"]]).unwrap();
        let b = Table::from_grid(&[&["S", "X", "X"], &["_", "_", "1"]]).unwrap();
        assert_eq!(difference(&a, &b, nm("T")).height(), 0);
    }

    #[test]
    fn difference_respects_row_attributes() {
        let a = Table::from_grid(&[&["R", "X"], &["east", "1"]]).unwrap();
        let b = Table::from_grid(&[&["S", "X"], &["west", "1"]]).unwrap();
        assert_eq!(difference(&a, &b, nm("T")).height(), 1);
    }

    #[test]
    fn intersect_from_difference() {
        let t = intersect(&r(), &s(), nm("T"));
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(1, 1), Symbol::value("1"));
        assert_eq!(t.name(), nm("T"));
    }

    #[test]
    fn product_pairs_all_rows() {
        let t = product(&r(), &s(), nm("T"));
        assert_eq!(t.height(), 4);
        assert_eq!(t.width(), 4);
        assert_eq!(t.get(1, 1), Symbol::value("1"));
        assert_eq!(t.get(1, 3), Symbol::value("1"));
        assert_eq!(t.get(2, 3), Symbol::value("5"));
    }

    #[test]
    fn product_joins_row_attributes() {
        let a = Table::from_grid(&[&["R", "X"], &["east", "1"]]).unwrap();
        let b = Table::from_grid(&[&["S", "Y"], &["_", "2"]]).unwrap();
        let t = product(&a, &b, nm("T"));
        assert_eq!(t.get(1, 0), Symbol::name("east"));
        // Conflicting attributes resolve left.
        let c = Table::from_grid(&[&["S", "Y"], &["west", "2"]]).unwrap();
        let t2 = product(&a, &c, nm("T"));
        assert_eq!(t2.get(1, 0), Symbol::name("east"));
    }

    #[test]
    fn product_with_empty_operand_is_empty() {
        let empty = Table::relational("S", &["Y"], &[]);
        assert_eq!(product(&r(), &empty, nm("T")).height(), 0);
    }

    #[test]
    fn rename_renames_all_occurrences() {
        let dup = Table::from_grid(&[&["R", "A", "A", "B"], &["_", "1", "2", "3"]]).unwrap();
        let t = rename(&dup, nm("A"), nm("C"), nm("T"));
        assert_eq!(t.col_attrs(), &[nm("C"), nm("C"), nm("B")]);
    }

    #[test]
    fn project_keeps_selected_columns_in_order() {
        let t = project(&r(), &SymbolSet::from_iter([nm("B")]), nm("T"));
        assert_eq!(t.width(), 1);
        assert_eq!(t.col_attrs(), &[nm("B")]);
        assert_eq!(t.get(1, 1), Symbol::value("2"));
    }

    #[test]
    fn project_keeps_repeated_attributes() {
        let dup = Table::from_grid(&[&["R", "A", "B", "A"], &["_", "1", "2", "3"]]).unwrap();
        let t = project(&dup, &SymbolSet::from_iter([nm("A")]), nm("T"));
        assert_eq!(t.width(), 2);
        assert_eq!(t.get(1, 2), Symbol::value("3"));
    }

    #[test]
    fn select_uses_weak_equality() {
        let tab = Table::from_grid(&[
            &["R", "A", "B"],
            &["_", "1", "1"],
            &["_", "1", "2"],
            &["_", "1", "_"], // ⊥ under B: {1} ≗ {⊥}? no — {1}\⊥ ⊄ ∅
        ])
        .unwrap();
        let t = select(&tab, nm("A"), nm("B"), nm("T"));
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(1, 1), Symbol::value("1"));
    }

    #[test]
    fn select_on_all_null_entries_is_weakly_equal() {
        let tab = Table::from_grid(&[&["R", "A", "B"], &["_", "_", "_"]]).unwrap();
        let t = select(&tab, nm("A"), nm("B"), nm("T"));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn select_const_exact_membership() {
        let tab = Table::from_grid(&[&["R", "A"], &["_", "1"], &["_", "2"], &["_", "_"]]).unwrap();
        let t = select_const(&tab, nm("A"), Symbol::value("1"), nm("T"));
        assert_eq!(t.height(), 1);
        // Selecting ⊥ finds the all-null row.
        let t2 = select_const(&tab, nm("A"), Symbol::Null, nm("T"));
        assert_eq!(t2.height(), 1);
        assert!(t2.get(1, 1).is_null());
        assert_eq!(
            select_const_via_switch(&tab, nm("A"), Symbol::value("1"), nm("T")),
            t
        );
    }

    #[test]
    fn select_const_via_switch_requires_a_unique_occurrence() {
        use crate::ops::switch;
        // The §3.3 derivation's engine: with a unique occurrence, switch
        // moves v's row into the attribute row, where it can anchor the
        // selection…
        let unique = Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]);
        let sw = switch(&unique, Symbol::value("3"), nm("S"));
        assert_eq!(sw.get(0, 2), Symbol::value("4"), "v's row became row 0");
        // …but with a repeated occurrence, switch degenerates to a mere
        // rename (the derivation cannot proceed), while the direct
        // shortcut still selects every matching row.
        let dup = Table::relational("R", &["A", "B"], &[&["1", "2"], &["1", "4"]]);
        let sw = switch(&dup, Symbol::value("1"), nm("S"));
        let mut renamed = dup.clone();
        renamed.set_name(nm("S"));
        assert_eq!(sw, renamed, "no unique occurrence: switch only renames");
        let direct = select_const_via_switch(&dup, nm("A"), Symbol::value("1"), nm("T"));
        assert_eq!(direct.height(), 2);
        assert_eq!(
            direct,
            select_const(&dup, nm("A"), Symbol::value("1"), nm("T"))
        );
    }

    #[test]
    fn intersect_matches_the_two_difference_derivation() {
        // On messy operands (mismatched schemes, repeated attributes, ⊥)
        // the single-bitmap evaluation must reproduce R \ (R \ S) through
        // the subsumption path…
        let a = Table::from_grid(&[
            &["R", "A", "A", "B"],
            &["_", "1", "1", "2"],
            &["x", "1", "_", "2"],
            &["_", "3", "3", "_"],
        ])
        .unwrap();
        let b = Table::from_grid(&[
            &["S", "A", "B"],
            &["_", "1", "2"],
            &["x", "1", "2"],
            &["_", "9", "9"],
        ])
        .unwrap();
        let derived = difference(&a, &difference(&a, &b, nm("T")), nm("T"));
        assert_eq!(intersect(&a, &b, nm("T")), derived);
        // …and through the hash path on aligned distinct schemes.
        let derived = difference(&r(), &difference(&r(), &s(), nm("T")), nm("T"));
        assert_eq!(intersect(&r(), &s(), nm("T")), derived);
        assert_eq!(intersect(&r(), &s(), nm("T")).height(), 1);
    }

    #[test]
    fn rename_of_absent_attribute_in_place_is_a_handle_clone() {
        let t = r();
        let out = rename(&t, nm("Z"), nm("Z2"), t.name());
        assert_eq!(out, t);
        assert!(out.shares_cells_with(&t), "no write, no CoW");
        // a == b writes nothing either.
        let out = rename(&t, nm("A"), nm("A"), t.name());
        assert!(out.shares_cells_with(&t));
        // A different target name still forces the name write…
        let named = rename(&t, nm("Z"), nm("Z2"), nm("T"));
        assert_eq!(named.name(), nm("T"));
        assert!(!named.shares_cells_with(&t));
        // …and a present attribute still rewrites the attribute row.
        let renamed = rename(&t, nm("A"), nm("C"), t.name());
        assert_eq!(renamed.col_attrs(), &[nm("C"), nm("B")]);
    }
}
