//! Transposition (paper §3.3): **transpose** and **switch**.
//!
//! Transposition makes every operation's *dual* (rows ↔ columns)
//! expressible; switching moves a data entry into the attribute position,
//! which is what lets constant selection and data-dependent restructuring
//! be derived.

use tabular_core::{Symbol, Table};

/// `T ← TRANSPOSE(R)`: transpose the table as a matrix. Column attributes
/// become row attributes and vice versa; the table name stays at (0,0).
pub fn transpose(r: &Table, name: Symbol) -> Table {
    let mut t = r.transpose();
    t.set_name(name);
    t
}

/// `T ← SWITCH_V(R)`: if `v` occurs at exactly one position `(i, j)` of
/// `ρ`, swap rows `0` and `i` and columns `0` and `j` (bringing `v` to the
/// table-name position and the former name into the table body); otherwise
/// the table is merely renamed.
pub fn switch(r: &Table, v: Symbol, name: Symbol) -> Table {
    let mut occurrences = (0..=r.height())
        .flat_map(|i| (0..=r.width()).map(move |j| (i, j)))
        .filter(|&(i, j)| r.get(i, j) == v);
    let first = occurrences.next();
    let second = occurrences.next();

    let mut t = r.clone();
    if let (Some((i, j)), None) = (first, second) {
        t.swap_rows(0, i);
        t.swap_cols(0, j);
    }
    t.set_name(name);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular_core::fixtures;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    #[test]
    fn transpose_swaps_attribute_roles() {
        let info3 = fixtures::sales_info3();
        let t = info3.table_str("Sales").unwrap();
        let tt = transpose(t, nm("SalesT"));
        assert_eq!(tt.name(), nm("SalesT"));
        assert_eq!(tt.col_attrs().to_vec(), t.row_attrs());
        assert_eq!(tt.get(1, 2), t.get(2, 1));
    }

    #[test]
    fn transpose_twice_restores_modulo_name() {
        let rel = fixtures::sales_relation();
        let back = transpose(&transpose(&rel, nm("X")), nm("Sales"));
        assert_eq!(back, rel);
    }

    #[test]
    fn switch_on_unique_occurrence_swaps_row_and_column() {
        let t = Table::from_grid(&[&["T", "A", "B"], &["r", "x", "y"], &["s", "z", "w"]]).unwrap();
        let sw = switch(&t, Symbol::value("w"), nm("U"));
        // w sat at (2,2): it becomes the table name position's occupant
        // after the double swap... the name parameter overwrites (0,0), so
        // check the structural swap via the other cells.
        assert_eq!(sw.name(), nm("U"));
        // Former row 0 is now row 2, former column 0 now column 2.
        assert_eq!(sw.get(2, 0), nm("B")); // old (0,2)
        assert_eq!(sw.get(0, 2), nm("s")); // old (2,0)
        assert_eq!(sw.get(2, 2), nm("T")); // old (0,0)
                                           // Untouched quadrant cell.
        assert_eq!(sw.get(1, 1), Symbol::value("x"));
    }

    #[test]
    fn switch_without_unique_occurrence_only_renames() {
        let t = Table::from_grid(&[&["T", "A"], &["_", "x"], &["_", "x"]]).unwrap();
        let sw = switch(&t, Symbol::value("x"), nm("U"));
        let mut expected = t.clone();
        expected.set_name(nm("U"));
        assert_eq!(sw, expected);
        // Absent symbol: same.
        let sw2 = switch(&t, Symbol::value("nope"), nm("U"));
        assert_eq!(sw2, expected);
    }

    #[test]
    fn switch_brings_data_to_attribute_row() {
        // The constant-selection derivation (§3.3): switching on a value
        // moves its row into the attribute row.
        let rel = fixtures::sales_relation();
        // "70" occurs once (bolts east 70).
        let sw = switch(&rel, Symbol::value("70"), nm("S"));
        // The former row 7 (bolts east 70) is now the attribute row.
        assert_eq!(sw.get(0, 1), Symbol::value("bolts"));
        assert_eq!(sw.get(0, 2), Symbol::value("east"));
        // The column-0 swap moved the Sold header to the row-attribute
        // column and the old table name into the body.
        assert_eq!(sw.get(7, 0), nm("Sold"));
        assert_eq!(sw.get(7, 3), nm("Sales"));
    }

    #[test]
    fn switch_preserves_cells_up_to_the_name_overwrite() {
        let t = Table::from_grid(&[&["T", "A", "B"], &["r", "x", "y"]]).unwrap();
        let sw = switch(&t, Symbol::value("y"), nm("T"));
        // The switched value lands at (0,0) and is overwritten by the new
        // name; every other symbol of the table is preserved.
        let mut before: Vec<Symbol> = t.symbols().filter(|s| *s != Symbol::value("y")).collect();
        let mut after: Vec<Symbol> = sw.symbols().collect();
        before.push(nm("T"));
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }
}
