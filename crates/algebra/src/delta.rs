//! Delta-driven `while` evaluation (DESIGN.md, "Delta-driven `while`
//! evaluation").
//!
//! A `while` body that passes [`crate::optimize::body_is_delta_safe`] is a
//! straight line of *ground* assignments over *pure, deterministic*
//! operations: each statement's read set (its argument names) and write
//! set (its target name) are known statically, and re-running it against
//! unchanged inputs reproduces its previous output exactly. That licenses
//! two refinements over naive re-evaluation, neither of which changes the
//! result:
//!
//! * **statement skipping** — every table name's *version* is the
//!   fingerprint of its current table group, folded from the per-table
//!   content fingerprints the storage layer caches (so versions are read
//!   in O(group size) without re-hashing any cells). A statement whose
//!   argument versions are unchanged since its last execution, and whose
//!   own output is still in place (its target's version is the one it
//!   produced), is skipped outright. This is exact, not merely
//!   fixpoint-safe: by purity, re-execution would replace the target with
//!   an identical group. (Fingerprints are 64-bit, so exactness is modulo
//!   a vanishing collision probability; the differential oracle referees.)
//! * **append-incremental recomputation** — fixpoint loops grow their
//!   accumulator by appending rows (classical union keeps old rows as a
//!   prefix and appends the genuinely new ones). When a name's group is a
//!   single table that extends its previous version by appended rows, a
//!   product with an unchanged right operand, a selection, or a projection
//!   reading it need only process the new rows — and since the target's
//!   cached output is a uniquely owned table in the store, the new rows
//!   are pushed into it *in place* ([`Database::update_named`]), turning
//!   the per-iteration cost of the hot product/select chain from
//!   `O(|R|·|S|)` into `O(|ΔR|·|S|)` with no per-iteration copy of the
//!   accumulated output.
//!
//! Append lineage and per-statement memos live only for the duration of
//! one `while` loop execution; re-entering a loop starts fresh.

use crate::error::{AlgebraError, Result};
use crate::eval::{
    check_results, check_table_count, check_virtual_result, compute_results, replace_results,
    table_cells, Exec,
};
use crate::obs::metrics::Metrics;
use crate::obs::trace::{DeltaDecision, SpanKind};
use crate::ops;

use crate::pool::LazyPool;
use crate::program::{Assignment, OpKind, Statement};
use std::collections::{HashMap, HashSet};
use tabular_core::{Database, Symbol, Table};

/// How a committed assignment changed its target's table group.
enum Change {
    /// The produced group equals the existing one; the database is left
    /// untouched (replacing with an identical group is a no-op under set
    /// semantics).
    Unchanged,
    /// Single table extended by appended rows: identical header, old
    /// storage rows a prefix of the new ones.
    Append {
        /// Height of the previous table (new rows start at `base + 1`).
        base_height: usize,
    },
    /// Any other change.
    Replaced,
}

/// Append lineage for one name: group version (fingerprint) `from` became
/// `to` by appending rows after `base_height`.
struct AppendInfo {
    from: u64,
    to: u64,
    base_height: usize,
}

/// What a statement saw and produced the last time it executed. The
/// produced-shape fields let a skip charge the statement's (identical)
/// logical production to `EvalStats`, keeping `tables_produced` and
/// `max_table_cells` in agreement with naive re-execution, which counts
/// the same results afresh every iteration.
struct StmtMemo {
    read_versions: Vec<u64>,
    target_version: u64,
    /// Handle on the statement's own previous output when it was a single
    /// table — an O(1) clone under the shared storage engine, which is
    /// what lets append-incremental recomputation survive *double
    /// buffering* (a later statement overwriting the same target, as in
    /// `RTC ← RENAME(TC); RTC ← RENAME(RTC)` chains): the plan extends
    /// this cached table, not whatever currently sits under the name.
    cached_output: Option<Table>,
    /// Tables the statement produced last time it ran.
    produced_tables: usize,
    /// Total cells of those tables (the `max_cells` convention).
    produced_cells: usize,
    /// Largest single table, in cells.
    produced_max_cells: usize,
}

struct DeltaState {
    appends: HashMap<Symbol, AppendInfo>,
    memos: Vec<Option<StmtMemo>>,
}

impl DeltaState {
    fn new(body_len: usize) -> DeltaState {
        DeltaState {
            appends: HashMap::new(),
            memos: (0..body_len).map(|_| None).collect(),
        }
    }

    /// The previous height of `name` if its group went from the version
    /// this statement last read to the current one purely by appending
    /// rows.
    fn append_base(&self, name: Symbol, last_seen: u64, current: u64) -> Option<usize> {
        let info = self.appends.get(&name)?;
        (info.from == last_seen && info.to == current).then_some(info.base_height)
    }
}

/// The version of a name: an order-dependent fold of the cached
/// per-table fingerprints of its current group (plus the group size).
/// Reading a version never hashes cells — [`Table::fingerprint`] is
/// cached on each handle — and equal group contents always give equal
/// versions, so a name that flips back to an earlier state re-enables
/// skipping, which monotone counters could not.
fn group_version(db: &Database, name: Symbol) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut count: u64 = 0;
    for t in db.tables_named_iter(name) {
        h ^= t.fingerprint();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        count += 1;
    }
    h ^ count
}

/// Evaluate `while name ≠ ∅ do body` with delta-driven statement skipping
/// and append-incremental recomputation. The caller has verified
/// `body_is_delta_safe(body)`.
pub(crate) fn run_delta_while(
    name: Symbol,
    body: &[Statement],
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    let mut st = DeltaState::new(body.len());
    let mut iters = 0usize;
    while db.tables_named_iter(name).any(|t| t.height() > 0) {
        iters += 1;
        metrics.stats.while_iterations += 1;
        if iters > cx.limits.max_while_iters {
            return Err(AlgebraError::LimitExceeded {
                what: "while iterations",
                limit: cx.limits.max_while_iters,
                attempted: iters,
            });
        }
        metrics.begin(SpanKind::WhileIter, "while", Some(iters));
        // Poll with the iteration span open, so a trip here is drained
        // as an aborted `while #N` span.
        cx.gov.poll()?;
        let iter_start = metrics.timer();
        let outcome = run_delta_iteration(&mut st, body, db, cx, metrics, pool);
        if matches!(outcome, Err(AlgebraError::BudgetExceeded { .. })) {
            // Leave the iteration span open for the abort drain, exactly
            // like the naive loop in `eval::run_statements`.
            return outcome;
        }
        metrics.end(
            Metrics::elapsed(iter_start).unwrap_or(0),
            DeltaDecision::Executed,
        );
        outcome?;
    }
    Ok(())
}

/// One pass over the body of a delta `while` loop.
fn run_delta_iteration(
    st: &mut DeltaState,
    body: &[Statement],
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    let mut dirty: HashSet<Symbol> = HashSet::new();
    for (idx, stmt) in body.iter().enumerate() {
        // Poll before the skip check so even all-skip iterations stop at
        // statement granularity.
        cx.gov.poll()?;
        // `plan_delta` admits only ground assignments into delta bodies;
        // these checks are reachable mid-run (including while a governed
        // run is winding down from a trip with partial state), so a
        // violated invariant fails the run instead of panicking the
        // process.
        let Statement::Assign(a) = stmt else {
            return Err(AlgebraError::Internal {
                what: "delta-safe body contained a non-assignment",
            });
        };
        let kw = a.op.keyword();
        let Some(target) = a.target.as_ground() else {
            return Err(AlgebraError::Internal {
                what: "delta-safe body target is not ground",
            });
        };
        let reads: Vec<Symbol> = a
            .args
            .iter()
            .map(|p| {
                p.as_ground().ok_or(AlgebraError::Internal {
                    what: "delta-safe body argument is not ground",
                })
            })
            .collect::<Result<_>>()?;
        let read_versions: Vec<u64> = reads.iter().map(|&n| group_version(db, n)).collect();
        if let Some(memo) = &st.memos[idx] {
            if memo.read_versions == read_versions
                && group_version(db, target) == memo.target_version
            {
                // Skipped, but the statement's logical production still
                // counts: naive re-execution would have reproduced the
                // memoized results and counted them again. The same goes
                // for the run cell budget — charging the memoized size
                // keeps the trip point identical to naive evaluation.
                metrics.stats.while_delta_skipped += 1;
                metrics.stats.tables_produced += memo.produced_tables;
                metrics.stats.max_table_cells =
                    metrics.stats.max_table_cells.max(memo.produced_max_cells);
                cx.gov.charge_cells(memo.produced_cells)?;
                metrics.skip_span(kw, memo.produced_tables, memo.produced_cells);
                continue;
            }
        }
        metrics.begin(SpanKind::Assign, kw, None);
        let start = metrics.timer();
        let outcome = run_body_statement(
            st,
            idx,
            a,
            target,
            reads,
            read_versions,
            db,
            cx,
            metrics,
            pool,
        );
        let changed = match outcome {
            Err(e) => {
                // A failed statement must leave no bookkeeping claiming
                // its output is current: a retry with larger limits
                // would otherwise delta-skip against a stale memo (or
                // extend stale append lineage) and disagree with naive
                // re-evaluation.
                st.memos[idx] = None;
                st.appends.remove(&target);
                if matches!(e, AlgebraError::BudgetExceeded { .. }) {
                    // Leave the span open for the abort drain; an
                    // interrupted statement is not an execution.
                    return Err(e);
                }
                let micros = Metrics::elapsed(start);
                metrics.record_op(kw, micros);
                metrics.end(micros.unwrap_or(0), DeltaDecision::Executed);
                return Err(e);
            }
            Ok(changed) => {
                let micros = Metrics::elapsed(start);
                metrics.record_op(kw, micros);
                metrics.end(micros.unwrap_or(0), DeltaDecision::Executed);
                changed
            }
        };
        if changed {
            dirty.insert(target);
        }
    }
    metrics.stats.delta_dirty_sizes.push(dirty.len());
    Ok(())
}

/// Execute one body statement (incrementally when possible), commit its
/// results only if they differ from the current group, and update
/// lineage and the statement's memo. Returns whether the target's group
/// changed.
#[allow(clippy::too_many_arguments)] // internal plumbing of the delta loop
fn run_body_statement(
    st: &mut DeltaState,
    idx: usize,
    a: &Assignment,
    target: Symbol,
    reads: Vec<Symbol>,
    read_versions: Vec<u64>,
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<bool> {
    let old_version = group_version(db, target);

    // Append-incremental fast path: extend the statement's cached output
    // by exactly the delta rows. When the cached table is still in place
    // under the target name, the commit happens *in place* with zero
    // buffer copies; when a later statement double-buffered over it, the
    // cached handle (sole owner by then) is extended and swapped back in.
    if let Some(inc) = plan_incremental(st, idx, a, &reads, &read_versions, db) {
        if matches!(inc.plan, IncPlan::Join { .. }) {
            // The incremental plan is the hash-join kernel probing only
            // the delta rows: record the fusion decision exactly as the
            // naive path does.
            metrics.stats.join_fused += 1;
            metrics.note_fusion("fused-join");
        }
        check_virtual_result(inc.out_cells_after, cx, metrics)?;
        // `plan_incremental` only returns a plan when the memo and its
        // cached output exist; a budget trip in `check_virtual_result`
        // above returns before these are touched, but if the invariant
        // ever breaks on this partial-state path it must fail the run,
        // not the process.
        let Some(memo) = st.memos[idx].as_mut() else {
            return Err(AlgebraError::Internal {
                what: "incremental plan without a statement memo",
            });
        };
        let from_version = memo.target_version;
        let Some(cached) = memo.cached_output.take() else {
            return Err(AlgebraError::Internal {
                what: "incremental plan without a cached output",
            });
        };
        let in_place = old_version == from_version;
        let base_height = inc.base_height;
        let (changed, new_output) = if inc.new_rows == 0 {
            if in_place {
                (false, cached)
            } else {
                // The correct output equals the cached table, but a later
                // writer replaced the target since: put the cached handle
                // back (an O(1) insert, no cells move).
                replace_results(vec![cached.clone()], db);
                (true, cached)
            }
        } else if in_place {
            // The cached output is the target's sole table. Drop our
            // handle first so the store's copy is uniquely owned and the
            // append materializes no copy. `update_named`'s closure
            // returns `()`, so the fallible (possibly partitioned) apply
            // reports through a captured slot.
            drop(cached);
            let mut applied = Ok(Vec::new());
            let committed = db.update_named(target, |out| applied = inc.plan.apply(out, cx, pool));
            debug_assert!(committed, "in-place target is a unique table");
            metrics.note_partitioned(&applied?);
            // `update_named` committed above (debug-asserted); if the
            // target vanished anyway, fail the run rather than panic —
            // this path runs under the governor with partial state.
            let Some(out) = db.tables_named_iter(target).next() else {
                return Err(AlgebraError::Internal {
                    what: "in-place append target vanished from the store",
                });
            };
            let out = out.clone();
            (true, out)
        } else {
            let mut out = cached;
            let report = inc.plan.apply(&mut out, cx, pool)?;
            metrics.note_partitioned(&report);
            replace_results(vec![out.clone()], db);
            (true, out)
        };
        let final_version = if changed {
            let v = group_version(db, target);
            st.appends.insert(
                target,
                AppendInfo {
                    from: from_version,
                    to: v,
                    base_height,
                },
            );
            v
        } else {
            old_version
        };
        st.memos[idx] = Some(StmtMemo {
            read_versions,
            target_version: final_version,
            cached_output: Some(new_output),
            produced_tables: 1,
            produced_cells: inc.out_cells_after,
            produced_max_cells: inc.out_cells_after,
        });
        return Ok(changed);
    }

    let results = compute_results(a, db, cx, metrics, pool)?;
    check_results(&results, cx, metrics)?;
    let produced_tables = results.len();
    let produced_cells = results.iter().map(table_cells).sum();
    let produced_max_cells = results.iter().map(table_cells).max().unwrap_or(0);

    // An empty result set (no argument combination matched) leaves the
    // database untouched, exactly as the naive replace does.
    let change = if results.is_empty() {
        Change::Unchanged
    } else {
        classify_change(&db.tables_named(target), &results)
    };
    // Keep a handle on a single-table output for future incremental
    // plans; cloning shares the cell buffer, so this is O(1).
    let cached_output = (results.len() == 1).then(|| results[0].clone());

    let changed = !matches!(change, Change::Unchanged);
    if changed {
        replace_results(results, db);
        check_table_count(db, cx.limits)?;
        let new_version = group_version(db, target);
        match change {
            Change::Append { base_height } => {
                st.appends.insert(
                    target,
                    AppendInfo {
                        from: old_version,
                        to: new_version,
                        base_height,
                    },
                );
            }
            Change::Replaced => {
                st.appends.remove(&target);
            }
            Change::Unchanged => unreachable!("changed implies a real change"),
        }
    }
    st.memos[idx] = Some(StmtMemo {
        read_versions,
        target_version: group_version(db, target),
        cached_output,
        produced_tables,
        produced_cells,
        produced_max_cells,
    });
    Ok(changed)
}

/// Compare the produced tables against the target's current group. The
/// produced list is deduplicated first, mirroring the database's set
/// semantics on insert. Comparisons filter through the cached content
/// fingerprints before confirming exactly, so the (common) changed case
/// is decided without re-reading cells.
fn classify_change(old: &[&Table], new: &[Table]) -> Change {
    let same = |a: &Table, b: &Table| a.fingerprint() == b.fingerprint() && a == b;
    let mut new_set: Vec<&Table> = Vec::new();
    for t in new {
        if !new_set.iter().any(|u| same(u, t)) {
            new_set.push(t);
        }
    }
    if old.len() == new_set.len() && new_set.iter().all(|t| old.iter().any(|o| same(o, t))) {
        return Change::Unchanged;
    }
    if let ([o], [n]) = (old, new_set.as_slice()) {
        if n.width() == o.width()
            && n.height() >= o.height()
            && (0..=o.height()).all(|i| n.storage_row(i) == o.storage_row(i))
        {
            return Change::Append {
                base_height: o.height(),
            };
        }
    }
    Change::Replaced
}

/// True when `t` is in the shape where classical union degenerates to
/// exact row-set union: pairwise-distinct column attributes, ⊥ row
/// attributes, and no ⊥ data entries. Under these conditions the join
/// performed by purge/clean-up succeeds only between *identical* rows
/// ([`Symbol::join`] is equality away from ⊥), so deduplicating storage
/// rows reproduces the full union → purge → clean-up pipeline.
fn plain_relational(t: &Table) -> bool {
    t.scheme().len() == t.width()
        && (1..=t.height()).all(|i| {
            let row = t.storage_row(i);
            row[0].is_null() && row[1..].iter().all(|c| !c.is_null())
        })
}

/// How to extend the cached output (see [`plan_incremental`]). Operand
/// handles held by a plan are O(1) clones sharing the store's buffers —
/// and because they are taken *before* the commit mutates the database,
/// a statement reading its own target still sees the pre-statement rows.
enum IncPlan {
    /// Append `r`'s rows after `base` crossed with all of `s`.
    Product { r: Table, s: Table, base: usize },
    /// Probe `r`'s rows after `base` against the hash index of `s`'s key
    /// column — the fused-join mirror of [`IncPlan::Product`], appending
    /// only the matching pairs.
    Join {
        r: Table,
        s: Table,
        base: usize,
        cols: ops::JoinCols,
    },
    /// Append `r`'s raw storage rows after `base` (rename and copy leave
    /// data rows untouched — only the attribute row differs, and that is
    /// already in the cached output).
    TailRows { r: Table, base: usize },
    /// Append these already-computed rows.
    Rows(Vec<Vec<Symbol>>),
}

impl IncPlan {
    /// Commit the plan into the cached output. A `Join` whose delta
    /// reaches [`crate::EvalLimits::partition_threshold`] probe rows runs
    /// the partition-parallel append on the run's pool — byte-identical
    /// to the serial append — and returns its per-partition report (empty
    /// for every other path). The partitioned path polls the governor
    /// between partition chunks but charges nothing: the delta commit is
    /// fully pre-charged by `check_virtual_result` before `apply` runs.
    fn apply(
        self,
        out: &mut Table,
        cx: Exec<'_>,
        pool: &mut LazyPool,
    ) -> Result<Vec<ops::PartitionShard>> {
        match self {
            IncPlan::Product { r, s, base } => ops::product_append(out, &r, base + 1, &s),
            IncPlan::Join { r, s, base, cols } => {
                let delta_rows = r.height().saturating_sub(base);
                if delta_rows >= cx.limits.partition_threshold.max(1) {
                    let pool = pool.get();
                    let gov = cx.gov;
                    return ops::join_append_partitioned(
                        out,
                        &r,
                        base + 1,
                        &s,
                        cols,
                        pool,
                        pool.threads(),
                        &|| gov.poll(),
                        &mut |_| Ok(()),
                    );
                }
                ops::join_append(out, &r, base + 1, &s, cols);
            }
            IncPlan::TailRows { r, base } => out.append_rows(|rows| {
                rows.reserve_rows(r.height() - base);
                for i in base + 1..=r.height() {
                    rows.push_row(r.storage_row(i));
                }
            }),
            IncPlan::Rows(new_rows) => out.append_rows(|rows| {
                rows.reserve_rows(new_rows.len());
                for row in &new_rows {
                    rows.push_row(row);
                }
            }),
        }
        Ok(Vec::new())
    }
}

/// An append-incremental step, planned but not yet committed.
struct Incremental {
    plan: IncPlan,
    /// Rows the plan will append (0 means the output is unchanged).
    new_rows: usize,
    /// Height of the cached output before the step.
    base_height: usize,
    /// Cells of the full output table after the step (the `max_cells`
    /// convention) — what naive re-execution would have produced and what
    /// the statement's stats must charge.
    out_cells_after: usize,
}

/// Attempt to plan append-incremental recomputation: when the statement
/// has its previous single-table output cached and its input grew only by
/// appended rows (left operand only, for products — appended right rows
/// would interleave), the new output is the cached one plus the rows
/// contributed by the input's delta. Planning only reads; the caller
/// commits. Width guards are defensive: under valid append lineage the
/// input's attribute row — hence every derived shape — is unchanged.
fn plan_incremental(
    st: &DeltaState,
    idx: usize,
    a: &Assignment,
    reads: &[Symbol],
    read_versions: &[u64],
    db: &Database,
) -> Option<Incremental> {
    let memo = st.memos[idx].as_ref()?;
    let out_old = memo.cached_output.as_ref()?;
    let base_height = out_old.height();
    let out_width = out_old.width();
    let single = |name: Symbol| -> Option<&Table> {
        let mut it = db.tables_named_iter(name);
        let t = it.next()?;
        it.next().is_none().then_some(t)
    };
    // The argument's previous height when it grew purely by appends (its
    // full current height means "unchanged": no delta rows to process).
    let base_of = |slot: usize, t: &Table| -> Option<usize> {
        if read_versions[slot] == memo.read_versions[slot] {
            Some(t.height())
        } else {
            st.append_base(reads[slot], memo.read_versions[slot], read_versions[slot])
        }
    };

    let (plan, new_rows) = match &a.op {
        OpKind::Product => {
            if read_versions[1] != memo.read_versions[1] {
                return None;
            }
            let r = single(reads[0])?;
            let s = single(reads[1])?;
            if out_width != r.width() + s.width() {
                return None;
            }
            let base = base_of(0, r)?;
            let new_rows = (r.height() - base) * s.height();
            (
                IncPlan::Product {
                    r: r.clone(),
                    s: s.clone(),
                    base,
                },
                new_rows,
            )
        }
        OpKind::FusedJoin { a: pa, b: pb } if pa.is_rigid() && pb.is_rigid() => {
            // Mirror of the Product arm: grown left operand, unchanged
            // right operand (appended right rows would interleave with the
            // left-major output order). The fusion columns are re-resolved
            // against the current operands; a pair the kernel cannot fuse
            // plans nothing and falls through to `compute_results`, whose
            // fallback runs the unfused pipeline.
            if read_versions[1] != memo.read_versions[1] {
                return None;
            }
            let sa = pa.as_ground()?;
            let sb = pb.as_ground()?;
            let r = single(reads[0])?;
            let s = single(reads[1])?;
            if out_width != r.width() + s.width() {
                return None;
            }
            let cols = ops::fusable_join_cols(r, s, sa, sb)?;
            let base = base_of(0, r)?;
            // Count the matches now so the governor charge
            // (`out_cells_after`) reflects the actual join output before
            // any row materializes.
            let new_rows = ops::count_join_matches(r, base + 1, s, cols);
            (
                IncPlan::Join {
                    r: r.clone(),
                    s: s.clone(),
                    base,
                    cols,
                },
                new_rows,
            )
        }
        OpKind::Rename { from, to } if from.is_rigid() && to.is_rigid() => {
            from.as_ground()?;
            to.as_ground()?;
            let r = single(reads[0])?;
            if out_width != r.width() {
                return None;
            }
            let base = base_of(0, r)?;
            (IncPlan::TailRows { r: r.clone(), base }, r.height() - base)
        }
        OpKind::Copy => {
            let r = single(reads[0])?;
            if out_width != r.width() {
                return None;
            }
            let base = base_of(0, r)?;
            (IncPlan::TailRows { r: r.clone(), base }, r.height() - base)
        }
        OpKind::ClassicalUnion => {
            // The self-accumulation pattern `TC ← TC ∪ Δ`: the left
            // operand must be exactly this statement's previous output
            // (by version), and both operands must be in the shape where
            // classical union is exact row-set union. The right operand
            // is absorbed in full — no lineage needed on it — so the step
            // costs O(|TC| + |Δ|) hashing instead of the full
            // union → purge → clean-up pipeline.
            if read_versions[0] != memo.target_version {
                return None;
            }
            let s = single(reads[1])?;
            if out_width != s.width()
                || out_old.col_attrs() != s.col_attrs()
                || !plain_relational(out_old)
                || !plain_relational(s)
            {
                return None;
            }
            let mut seen: std::collections::HashSet<&[Symbol]> =
                std::collections::HashSet::with_capacity(out_old.height() + s.height());
            for i in 1..=out_old.height() {
                if !seen.insert(out_old.storage_row(i)) {
                    // The accumulator holds duplicate rows; union would
                    // merge them, so the append model does not apply.
                    return None;
                }
            }
            let mut rows = Vec::new();
            for k in 1..=s.height() {
                let row = s.storage_row(k);
                if seen.insert(row) {
                    rows.push(row.to_vec());
                }
            }
            let new_rows = rows.len();
            (IncPlan::Rows(rows), new_rows)
        }
        OpKind::Select { a: pa, b: pb } if pa.is_rigid() && pb.is_rigid() => {
            let sa = pa.as_ground()?;
            let sb = pb.as_ground()?;
            let r = single(reads[0])?;
            if out_width != r.width() {
                return None;
            }
            let base = base_of(0, r)?;
            let mut rows = Vec::new();
            for i in base + 1..=r.height() {
                if r.row_entries_named(i, sa)
                    .weakly_equal(&r.row_entries_named(i, sb))
                {
                    rows.push(r.storage_row(i).to_vec());
                }
            }
            let new_rows = rows.len();
            (IncPlan::Rows(rows), new_rows)
        }
        OpKind::SelectConst { a: pa, v: pv } if pa.is_rigid() && pv.is_rigid() => {
            let sa = pa.as_ground()?;
            let sv = pv.as_ground()?;
            let r = single(reads[0])?;
            if out_width != r.width() {
                return None;
            }
            let base = base_of(0, r)?;
            let mut rows = Vec::new();
            for i in base + 1..=r.height() {
                if r.row_entries_named(i, sa).contains(sv) {
                    rows.push(r.storage_row(i).to_vec());
                }
            }
            let new_rows = rows.len();
            (IncPlan::Rows(rows), new_rows)
        }
        OpKind::Project { attrs } if attrs.is_rigid() => {
            let r = single(reads[0])?;
            let cols = r.cols_in(&attrs.rigid_set());
            if out_width != cols.len() {
                return None;
            }
            let base = base_of(0, r)?;
            let mut rows = Vec::with_capacity(r.height() - base);
            for i in base + 1..=r.height() {
                let mut row = Vec::with_capacity(cols.len() + 1);
                row.push(r.get(i, 0));
                row.extend(cols.iter().map(|&j| r.get(i, j)));
                rows.push(row);
            }
            let new_rows = rows.len();
            (IncPlan::Rows(rows), new_rows)
        }
        _ => return None,
    };
    Some(Incremental {
        plan,
        new_rows,
        base_height,
        out_cells_after: (base_height + new_rows + 1) * (out_width + 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run_with_stats, EvalLimits, WhileStrategy};
    use crate::parser::parse;

    fn limits(strategy: WhileStrategy) -> EvalLimits {
        EvalLimits {
            while_strategy: strategy,
            ..EvalLimits::default()
        }
    }

    /// Transitive closure over a chain graph, written the way the Theorem
    /// 4.1 compiler writes fixpoints: full recompute of the step relation
    /// each iteration. `EStep` is loop-invariant, so it should execute
    /// once and be skipped thereafter.
    fn tc_program() -> crate::program::Program {
        parse(
            "TC <- COPY(E)
             Delta <- COPY(E)
             while Delta do
               EStep <- COPY(E)
               RTC <- RENAME[A -> A0](TC)
               RTC <- RENAME[B -> B0](RTC)
               Joined <- PRODUCT(RTC, EStep)
               Matched <- SELECT[B0 = A](Joined)
               Step <- PROJECT[{A0, B}](Matched)
               Step <- RENAME[A0 -> A](Step)
               Delta <- DIFFERENCE(Step, TC)
               TC <- CLASSICALUNION(TC, Delta)
             end",
        )
        .unwrap()
    }

    fn chain(n: usize) -> Database {
        let rows: Vec<[String; 2]> = (0..n)
            .map(|i| [format!("n{i}"), format!("n{}", i + 1)])
            .collect();
        let rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        Database::from_tables([Table::relational("E", &["A", "B"], &rows)])
    }

    /// [`tc_program`] with the product/select chain written as the fused
    /// join the optimizer would produce.
    fn fused_tc_program() -> crate::program::Program {
        parse(
            "TC <- COPY(E)
             Delta <- COPY(E)
             while Delta do
               EStep <- COPY(E)
               RTC <- RENAME[A -> A0](TC)
               RTC <- RENAME[B -> B0](RTC)
               Matched <- FUSEDJOIN[B0 = A](RTC, EStep)
               Step <- PROJECT[{A0, B}](Matched)
               Step <- RENAME[A0 -> A](Step)
               Delta <- DIFFERENCE(Step, TC)
               TC <- CLASSICALUNION(TC, Delta)
             end",
        )
        .unwrap()
    }

    #[test]
    fn fused_join_closure_agrees_with_unfused_on_both_strategies() {
        let db = chain(8);
        let (reference, _) =
            run_with_stats(&tc_program(), &db, &limits(WhileStrategy::Naive)).unwrap();
        for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
            let (out, stats) = run_with_stats(&fused_tc_program(), &db, &limits(strategy)).unwrap();
            assert_eq!(
                reference.table_str("TC").unwrap(),
                out.table_str("TC").unwrap(),
                "{strategy:?} fused closure differs from the unfused pipeline"
            );
            assert!(stats.join_fused > 0, "{strategy:?} never fused: {stats:?}");
            assert_eq!(stats.join_unfused, 0, "{strategy:?} fell back: {stats:?}");
        }
        // The delta strategy must take the incremental join path, not
        // re-probe from scratch: the fused statement re-executes each
        // iteration (its left operand grows), yet the join stays fused.
        let (_, stats) =
            run_with_stats(&fused_tc_program(), &db, &limits(WhileStrategy::Delta)).unwrap();
        assert!(stats.while_delta_skipped > 0);
        assert_eq!(
            stats.join_fused as u64,
            stats.op_counts.get("FUSEDJOIN").map_or(0, |&c| c as u64),
            "every executed FUSEDJOIN pair fused"
        );
    }

    #[test]
    fn partitioned_incremental_joins_agree_with_serial_delta() {
        // With `partition_threshold: 1` every fused join partitions: the
        // first (naive) execution through `eval_fused_join` and every
        // later `IncPlan::Join` append through the partitioned delta
        // path. The closure must stay byte-identical and the stats must
        // agree with the serial delta run except for the partition
        // counters themselves.
        let db = chain(8);
        let serial = limits(WhileStrategy::Delta);
        let part = EvalLimits {
            partition_threshold: 1,
            threads: 2,
            ..serial
        };
        let (reference, ref_stats) = run_with_stats(&fused_tc_program(), &db, &serial).unwrap();
        let (out, stats) = run_with_stats(&fused_tc_program(), &db, &part).unwrap();
        assert_eq!(
            reference.table_str("TC").unwrap(),
            out.table_str("TC").unwrap()
        );
        assert_eq!(ref_stats.partitioned_joins, 0);
        assert!(
            stats.partitioned_joins >= 2,
            "first naive join plus incremental appends partition: {stats:?}"
        );
        assert!(stats.partition_shards >= stats.partitioned_joins);
        assert_eq!(stats.join_fused, ref_stats.join_fused);
        assert_eq!(stats.tables_produced, ref_stats.tables_produced);
        assert_eq!(stats.while_delta_skipped, ref_stats.while_delta_skipped);
    }

    #[test]
    fn delta_and_naive_agree_on_transitive_closure() {
        let p = tc_program();
        let db = chain(8);
        let (naive, _) = run_with_stats(&p, &db, &limits(WhileStrategy::Naive)).unwrap();
        let (delta, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(
            naive.table_str("TC").unwrap(),
            delta.table_str("TC").unwrap()
        );
        // The chain of 8 edges closes to 9·8/2 = 36 pairs.
        assert_eq!(delta.table_str("TC").unwrap().height(), 36);
        assert_eq!(stats.while_fallback_naive, 0);
        assert!(
            stats.while_delta_skipped > 0,
            "the loop-invariant EStep copy skips after its first run"
        );
        assert!(!stats.delta_dirty_sizes.is_empty());
        // Until the loop exits, every iteration changes at least `Delta`.
        assert!(stats.delta_dirty_sizes.iter().all(|&d| d >= 1));
    }

    #[test]
    fn stats_agree_between_naive_and_delta_on_delta_safe_programs() {
        // The delta strategy skips statements and recomputes others
        // incrementally, but its *logical* production accounting must
        // match naive re-execution: skipped statements charge their
        // memoized output shape.
        let p = tc_program();
        let db = chain(8);
        let (_, naive) = run_with_stats(&p, &db, &limits(WhileStrategy::Naive)).unwrap();
        let (_, delta) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert!(delta.while_delta_skipped > 0, "skips actually exercised");
        assert_eq!(naive.while_iterations, delta.while_iterations);
        assert_eq!(
            naive.tables_produced, delta.tables_produced,
            "skipped statements must charge their memoized production"
        );
        assert_eq!(naive.max_table_cells, delta.max_table_cells);
        // Executions differ (that is the point of skipping), but every
        // operation naive ran is present in the delta counts.
        for op in naive.op_counts.keys() {
            assert!(delta.op_counts.contains_key(op), "{op} missing from delta");
        }
    }

    #[test]
    fn traced_delta_run_labels_skips_and_iterations() {
        use crate::eval::run_traced;
        use crate::obs::trace::{DeltaDecision, SpanKind, TraceLevel};

        let p = tc_program();
        let db = chain(8);
        let l = EvalLimits {
            while_strategy: WhileStrategy::Delta,
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (_, stats, trace) = run_traced(&p, &db, &l).unwrap();
        assert_eq!(trace.dropped(), 0);
        // Spans reconcile with stats: same per-op wall time (skips are 0),
        // and one delta-skipped span per counted skip.
        assert_eq!(trace.per_op_micros(), stats.op_micros);
        let skipped = trace
            .spans()
            .filter(|s| s.decision == DeltaDecision::DeltaSkipped)
            .count();
        assert_eq!(skipped, stats.while_delta_skipped);
        let iters = trace
            .spans()
            .filter(|s| s.kind == SpanKind::WhileIter)
            .count();
        assert_eq!(iters, stats.while_iterations);
        // Every body-statement span sits under an iteration span.
        let iter_ids: std::collections::HashSet<u64> = trace
            .spans()
            .filter(|s| s.kind == SpanKind::WhileIter)
            .map(|s| s.id)
            .collect();
        for s in trace.spans().filter(|s| s.kind == SpanKind::Assign) {
            if let Some(p) = s.parent {
                assert!(iter_ids.contains(&p), "assign span parents an iteration");
            }
        }
    }

    #[test]
    fn fresh_tagging_bodies_fall_back_to_naive() {
        let p = parse(
            "while W do
               T <- TUPLENEW[Tag](W)
               W <- DIFFERENCE(W, W)
             end",
        )
        .unwrap();
        let db = Database::from_tables([Table::relational("W", &["A"], &[&["1"]])]);
        let (_, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(stats.while_fallback_naive, 1);
        assert_eq!(stats.while_delta_skipped, 0);
    }

    #[test]
    fn convergence_loop_stops_after_stabilizing() {
        let p = parse(
            "while W do
               S <- CLASSICALUNION(S, W)
               W <- DIFFERENCE(S, S)
             end",
        )
        .unwrap();
        let db = Database::from_tables([
            Table::relational("W", &["A"], &[&["1"]]),
            Table::relational("S", &["A"], &[&["0"]]),
        ]);
        let (out, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(out.table_str("S").unwrap().height(), 2);
        assert_eq!(out.table_str("W").unwrap().height(), 0);
        assert_eq!(stats.while_fallback_naive, 0);
    }

    #[test]
    fn incremental_product_matches_full_recompute() {
        // R grows by an appended row in iteration 1, so iteration 2 takes
        // the append-incremental path for P, Q, and V; by iteration 3 those
        // statements are skipped outright. The W → W2 → W3 countdown keeps
        // the loop alive for exactly three iterations.
        let p = parse(
            "while W do
               P <- PRODUCT(R, S)
               Q <- SELECT[A = C](P)
               V <- PROJECT[{B}](Q)
               G <- PRODUCT(W, W)
               N <- DIFFERENCE(G, G)
               R <- CLASSICALUNION(R, Extra)
               W <- COPY(W2)
               W2 <- COPY(W3)
               W3 <- DIFFERENCE(W3, W3)
             end",
        )
        .unwrap();
        let mk = || {
            Database::from_tables([
                Table::relational("R", &["A", "B"], &[&["1", "x"]]),
                Table::relational("S", &["C", "D"], &[&["1", "u"], &["2", "v"]]),
                Table::relational("Extra", &["A", "B"], &[&["2", "y"]]),
                Table::relational("W", &["K"], &[&["go"]]),
                Table::relational("W2", &["K"], &[&["go2"]]),
                Table::relational("W3", &["K"], &[&["go3"]]),
            ])
        };
        let (naive, _) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Naive)).unwrap();
        let (delta, stats) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(stats.delta_dirty_sizes.len(), 3, "three iterations");
        assert!(stats.while_delta_skipped > 0);
        for name in ["P", "Q", "V", "R", "W", "W2", "W3", "G", "N"] {
            assert_eq!(
                naive.table_str(name).unwrap(),
                delta.table_str(name).unwrap(),
                "{name} differs between strategies"
            );
        }
    }

    #[test]
    fn incremental_union_dedups_against_the_accumulator() {
        // `S ← S ∪ Mix` with Mix holding one row already in S and one
        // fresh row: the incremental union must drop the duplicate, both
        // on the first absorption and on the later no-op iterations.
        let p = parse(
            "while W do
               S <- CLASSICALUNION(S, Mix)
               W <- COPY(W2)
               W2 <- COPY(W3)
               W3 <- DIFFERENCE(W3, W3)
             end",
        )
        .unwrap();
        let mk = || {
            Database::from_tables([
                Table::relational("S", &["A"], &[&["1"]]),
                Table::relational("Mix", &["A"], &[&["1"], &["2"]]),
                Table::relational("W", &["K"], &[&["go"]]),
                Table::relational("W2", &["K"], &[&["go2"]]),
                Table::relational("W3", &["K"], &[&["go3"]]),
            ])
        };
        let (naive, _) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Naive)).unwrap();
        let (delta, stats) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(stats.while_fallback_naive, 0);
        assert_eq!(naive.table_str("S").unwrap(), delta.table_str("S").unwrap());
        assert_eq!(delta.table_str("S").unwrap().height(), 2);
    }

    #[test]
    fn fingerprint_versions_re_skip_after_a_flip_flop() {
        // S is overwritten with the same content every iteration (COPY of
        // an invariant source). Content-keyed versions recognize the
        // no-op; the reader of S skips from iteration 2 on.
        let p = parse(
            "while W do
               S <- COPY(Src)
               P <- PRODUCT(S, S)
               W <- COPY(W2)
               W2 <- COPY(W3)
               W3 <- DIFFERENCE(W3, W3)
             end",
        )
        .unwrap();
        let db = Database::from_tables([
            Table::relational("Src", &["A"], &[&["1"]]),
            Table::relational("W", &["K"], &[&["go"]]),
            Table::relational("W2", &["K"], &[&["go2"]]),
            Table::relational("W3", &["K"], &[&["go3"]]),
        ]);
        let (out, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(out.table_str("P").unwrap().height(), 1);
        // Three iterations; S and P both skip in iterations 2 and 3.
        assert!(stats.while_delta_skipped >= 4, "{stats:?}");
    }

    #[test]
    fn incremental_append_commits_in_place_without_copying() {
        // A pure accumulation loop: TC's product chain grows by appended
        // rows each iteration. The in-place commit must not clone the
        // cached outputs, so the per-iteration CoW copies stay bounded by
        // the handful of replace-committed tables, not the product size.
        let p = tc_program();
        let db = chain(8);
        let (_, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        // The run snapshots once up front; every other snapshot/CoW event
        // would indicate an accidental deep copy on the hot path. We
        // assert the loose process-wide bound only (parallel tests share
        // the counters): the incremental path exercised above must not
        // scale CoW copies with iterations × product cells.
        assert!(stats.snapshots >= 1);
    }
}
