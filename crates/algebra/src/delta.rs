//! Delta-driven `while` evaluation (DESIGN.md, "Delta-driven `while`
//! evaluation").
//!
//! A `while` body that passes [`crate::optimize::body_is_delta_safe`] is a
//! straight line of *ground* assignments over *pure, deterministic*
//! operations: each statement's read set (its argument names) and write
//! set (its target name) are known statically, and re-running it against
//! unchanged inputs reproduces its previous output exactly. That licenses
//! two refinements over naive re-evaluation, neither of which changes the
//! result:
//!
//! * **statement skipping** — every table name carries a version counter,
//!   bumped only when an assignment actually changes the name's table
//!   group. A statement whose argument versions are unchanged since its
//!   last execution, and whose own output is still in place (its target's
//!   version is the one it produced), is skipped outright. This is exact,
//!   not merely fixpoint-safe: by purity, re-execution would replace the
//!   target with an identical group.
//! * **append-incremental recomputation** — fixpoint loops grow their
//!   accumulator by appending rows (classical union keeps old rows as a
//!   prefix and appends the genuinely new ones). When a name's group is a
//!   single table that extends its previous version by appended rows, a
//!   product with an unchanged right operand, a selection, or a projection
//!   reading it need only process the new rows and append to its cached
//!   output, turning the per-iteration cost of the hot product/select
//!   chain from `O(|R|·|S|)` into `O(|ΔR|·|S|)`.
//!
//! Versions, append lineage, and per-statement memos live only for the
//! duration of one `while` loop execution; re-entering a loop starts
//! fresh.

use crate::error::{AlgebraError, Result};
use crate::eval::{
    check_results, check_table_count, compute_results, replace_results, table_cells, EvalLimits,
};
use crate::obs::metrics::Metrics;
use crate::obs::trace::{DeltaDecision, SpanKind};
use crate::ops;
use crate::param::{Item, Param};
use crate::pool::LazyPool;
use crate::program::{Assignment, OpKind, Statement};
use std::collections::{HashMap, HashSet};
use tabular_core::{Database, Symbol, SymbolSet, Table};

/// How a committed assignment changed its target's table group.
enum Change {
    /// The produced group equals the existing one; the database is left
    /// untouched (replacing with an identical group is a no-op under set
    /// semantics).
    Unchanged,
    /// Single table extended by appended rows: identical header, old
    /// storage rows a prefix of the new ones.
    Append {
        /// Height of the previous table (new rows start at `base + 1`).
        base_height: usize,
    },
    /// Any other change.
    Replaced,
}

/// Append lineage for one name: version `from` became version `to` by
/// appending rows after `base_height`.
struct AppendInfo {
    from: u64,
    to: u64,
    base_height: usize,
}

/// What a statement saw and produced the last time it executed. The
/// produced-shape fields let a skip charge the statement's (identical)
/// logical production to `EvalStats`, keeping `tables_produced` and
/// `max_table_cells` in agreement with naive re-execution, which counts
/// the same results afresh every iteration.
struct StmtMemo {
    read_versions: Vec<u64>,
    target_version: u64,
    /// Tables the statement produced last time it ran.
    produced_tables: usize,
    /// Total cells of those tables (the `max_cells` convention).
    produced_cells: usize,
    /// Largest single table, in cells.
    produced_max_cells: usize,
}

struct DeltaState {
    versions: HashMap<Symbol, u64>,
    appends: HashMap<Symbol, AppendInfo>,
    next_version: u64,
    memos: Vec<Option<StmtMemo>>,
}

impl DeltaState {
    fn new(body_len: usize) -> DeltaState {
        DeltaState {
            versions: HashMap::new(),
            appends: HashMap::new(),
            next_version: 1,
            memos: (0..body_len).map(|_| None).collect(),
        }
    }

    fn version(&self, name: Symbol) -> u64 {
        self.versions.get(&name).copied().unwrap_or(0)
    }

    fn bump(&mut self, name: Symbol) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        self.versions.insert(name, v);
        v
    }

    /// The previous height of `name` if its group went from the version
    /// this statement last read to the current one purely by appending
    /// rows.
    fn append_base(&self, name: Symbol, last_seen: u64, current: u64) -> Option<usize> {
        let info = self.appends.get(&name)?;
        (info.from == last_seen && info.to == current).then_some(info.base_height)
    }
}

/// Evaluate `while name ≠ ∅ do body` with delta-driven statement skipping
/// and append-incremental recomputation. The caller has verified
/// `body_is_delta_safe(body)`.
pub(crate) fn run_delta_while(
    name: Symbol,
    body: &[Statement],
    db: &mut Database,
    limits: &EvalLimits,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    let mut st = DeltaState::new(body.len());
    let mut iters = 0usize;
    while db.tables_named(name).iter().any(|t| t.height() > 0) {
        iters += 1;
        metrics.stats.while_iterations += 1;
        if iters > limits.max_while_iters {
            return Err(AlgebraError::LimitExceeded {
                what: "while iterations",
                limit: limits.max_while_iters,
                attempted: iters,
            });
        }
        metrics.begin(SpanKind::WhileIter, "while", Some(iters));
        let iter_start = metrics.timer();
        let outcome = run_delta_iteration(&mut st, body, db, limits, metrics, pool);
        metrics.end(
            Metrics::elapsed(iter_start).unwrap_or(0),
            DeltaDecision::Executed,
        );
        outcome?;
    }
    Ok(())
}

/// One pass over the body of a delta `while` loop.
fn run_delta_iteration(
    st: &mut DeltaState,
    body: &[Statement],
    db: &mut Database,
    limits: &EvalLimits,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    let mut dirty: HashSet<Symbol> = HashSet::new();
    for (idx, stmt) in body.iter().enumerate() {
        let Statement::Assign(a) = stmt else {
            unreachable!("delta-safe bodies contain only assignments");
        };
        let kw = a.op.keyword();
        let target = a.target.as_ground().expect("delta-safe target");
        let reads: Vec<Symbol> = a
            .args
            .iter()
            .map(|p| p.as_ground().expect("delta-safe argument"))
            .collect();
        let read_versions: Vec<u64> = reads.iter().map(|&n| st.version(n)).collect();
        if let Some(memo) = &st.memos[idx] {
            if memo.read_versions == read_versions && st.version(target) == memo.target_version {
                // Skipped, but the statement's logical production still
                // counts: naive re-execution would have reproduced the
                // memoized results and counted them again.
                metrics.stats.while_delta_skipped += 1;
                metrics.stats.tables_produced += memo.produced_tables;
                metrics.stats.max_table_cells =
                    metrics.stats.max_table_cells.max(memo.produced_max_cells);
                metrics.skip_span(kw, memo.produced_tables, memo.produced_cells);
                continue;
            }
        }
        metrics.begin(SpanKind::Assign, kw, None);
        let start = metrics.timer();
        let outcome = run_body_statement(
            st,
            idx,
            a,
            target,
            reads,
            read_versions,
            db,
            limits,
            metrics,
            pool,
        );
        let micros = Metrics::elapsed(start);
        metrics.record_op(kw, micros);
        metrics.end(micros.unwrap_or(0), DeltaDecision::Executed);
        if outcome? {
            dirty.insert(target);
        }
    }
    metrics.stats.delta_dirty_sizes.push(dirty.len());
    Ok(())
}

/// Execute one body statement (incrementally when possible), commit its
/// results only if they differ from the current group, and update
/// versions, lineage, and the statement's memo. Returns whether the
/// target's group changed.
#[allow(clippy::too_many_arguments)] // internal plumbing of the delta loop
fn run_body_statement(
    st: &mut DeltaState,
    idx: usize,
    a: &Assignment,
    target: Symbol,
    reads: Vec<Symbol>,
    read_versions: Vec<u64>,
    db: &mut Database,
    limits: &EvalLimits,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<bool> {
    let (results, known_change) =
        match try_incremental(st, idx, a, target, &reads, &read_versions, db) {
            Some((out, out_base)) => {
                let change = if out.height() == out_base {
                    Change::Unchanged
                } else {
                    Change::Append {
                        base_height: out_base,
                    }
                };
                (vec![out], Some(change))
            }
            None => (compute_results(a, db, limits, metrics, pool)?, None),
        };
    check_results(&results, limits, metrics)?;
    let produced_tables = results.len();
    let produced_cells = results.iter().map(table_cells).sum();
    let produced_max_cells = results.iter().map(table_cells).max().unwrap_or(0);

    let change = match known_change {
        Some(c) => c,
        // An empty result set (no argument combination matched) leaves the
        // database untouched, exactly as the naive replace does.
        None if results.is_empty() => Change::Unchanged,
        None => classify_change(&db.tables_named(target), &results),
    };

    let old_version = st.version(target);
    let changed = !matches!(change, Change::Unchanged);
    if changed {
        replace_results(results, db);
        check_table_count(db, limits)?;
        let new_version = st.bump(target);
        match change {
            Change::Append { base_height } => {
                st.appends.insert(
                    target,
                    AppendInfo {
                        from: old_version,
                        to: new_version,
                        base_height,
                    },
                );
            }
            Change::Replaced => {
                st.appends.remove(&target);
            }
            Change::Unchanged => unreachable!("changed implies a real change"),
        }
    }
    st.memos[idx] = Some(StmtMemo {
        read_versions,
        target_version: st.version(target),
        produced_tables,
        produced_cells,
        produced_max_cells,
    });
    Ok(changed)
}

/// Compare the produced tables against the target's current group. The
/// produced list is deduplicated first, mirroring the database's set
/// semantics on insert.
fn classify_change(old: &[&Table], new: &[Table]) -> Change {
    let mut new_set: Vec<&Table> = Vec::new();
    for t in new {
        if !new_set.contains(&t) {
            new_set.push(t);
        }
    }
    if old.len() == new_set.len() && new_set.iter().all(|t| old.contains(t)) {
        return Change::Unchanged;
    }
    if let ([o], [n]) = (old, new_set.as_slice()) {
        if n.width() == o.width()
            && n.height() >= o.height()
            && (0..=o.height()).all(|i| n.storage_row(i) == o.storage_row(i))
        {
            return Change::Append {
                base_height: o.height(),
            };
        }
    }
    Change::Replaced
}

/// True when every item of the parameter denotes independently of the
/// table under consideration: literal symbols and ⊥ only (no wildcards
/// expanding to "all column attributes", no entry-addressing pairs).
fn rigid(p: &Param) -> bool {
    let literal = |i: &Item| matches!(i, Item::Sym(_) | Item::Null);
    p.positive.iter().all(literal) && p.negative.iter().all(literal)
}

/// Denote a rigid set parameter without table context.
fn rigid_set(p: &Param) -> SymbolSet {
    let expand = |items: &[Item]| -> SymbolSet {
        items
            .iter()
            .map(|i| match i {
                Item::Sym(s) => *s,
                Item::Null => Symbol::Null,
                _ => unreachable!("rigid parameters hold literals only"),
            })
            .collect()
    };
    expand(&p.positive).minus(&expand(&p.negative))
}

/// Attempt append-incremental recomputation: when the statement's own
/// previous output is still in place and its input grew only by appended
/// rows (left operand only, for products — appended right rows would
/// interleave), produce the new output by extending a clone of the cached
/// one with the rows contributed by the input's delta. Returns the new
/// output together with the cached output's height.
fn try_incremental(
    st: &DeltaState,
    idx: usize,
    a: &Assignment,
    target: Symbol,
    reads: &[Symbol],
    read_versions: &[u64],
    db: &Database,
) -> Option<(Table, usize)> {
    let memo = st.memos[idx].as_ref()?;
    if st.version(target) != memo.target_version {
        return None;
    }
    let [out_old] = db.tables_named(target)[..] else {
        return None;
    };

    // Single-table group for an argument, or bail.
    let single = |name: Symbol| -> Option<&Table> {
        match db.tables_named(name)[..] {
            [t] => Some(t),
            _ => None,
        }
    };
    // The argument's previous height when it grew purely by appends (its
    // full current height means "unchanged": no delta rows to process).
    let base_of = |slot: usize, t: &Table| -> Option<usize> {
        if read_versions[slot] == memo.read_versions[slot] {
            Some(t.height())
        } else {
            st.append_base(reads[slot], memo.read_versions[slot], read_versions[slot])
        }
    };

    match &a.op {
        OpKind::Product => {
            if read_versions[1] != memo.read_versions[1] {
                return None;
            }
            let r = single(reads[0])?;
            let s = single(reads[1])?;
            let base = base_of(0, r)?;
            let mut out = out_old.clone();
            ops::product_append(&mut out, r, base + 1, s);
            Some((out, out_old.height()))
        }
        OpKind::Select { a: pa, b: pb } if rigid(pa) && rigid(pb) => {
            let sa = pa.as_ground()?;
            let sb = pb.as_ground()?;
            let r = single(reads[0])?;
            let base = base_of(0, r)?;
            let mut out = out_old.clone();
            for i in base + 1..=r.height() {
                if r.row_entries_named(i, sa)
                    .weakly_equal(&r.row_entries_named(i, sb))
                {
                    out.push_row(r.storage_row(i).to_vec());
                }
            }
            Some((out, out_old.height()))
        }
        OpKind::SelectConst { a: pa, v: pv } if rigid(pa) && rigid(pv) => {
            let sa = pa.as_ground()?;
            let sv = pv.as_ground()?;
            let r = single(reads[0])?;
            let base = base_of(0, r)?;
            let mut out = out_old.clone();
            for i in base + 1..=r.height() {
                if r.row_entries_named(i, sa).contains(sv) {
                    out.push_row(r.storage_row(i).to_vec());
                }
            }
            Some((out, out_old.height()))
        }
        OpKind::Project { attrs } if rigid(attrs) => {
            let r = single(reads[0])?;
            let base = base_of(0, r)?;
            let cols = r.cols_in(&rigid_set(attrs));
            let mut out = out_old.clone();
            for i in base + 1..=r.height() {
                let mut row = Vec::with_capacity(cols.len() + 1);
                row.push(r.get(i, 0));
                row.extend(cols.iter().map(|&j| r.get(i, j)));
                out.push_row(row);
            }
            Some((out, out_old.height()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run_with_stats, EvalLimits, WhileStrategy};
    use crate::parser::parse;

    fn limits(strategy: WhileStrategy) -> EvalLimits {
        EvalLimits {
            while_strategy: strategy,
            ..EvalLimits::default()
        }
    }

    /// Transitive closure over a chain graph, written the way the Theorem
    /// 4.1 compiler writes fixpoints: full recompute of the step relation
    /// each iteration. `EStep` is loop-invariant, so it should execute
    /// once and be skipped thereafter.
    fn tc_program() -> crate::program::Program {
        parse(
            "TC <- COPY(E)
             Delta <- COPY(E)
             while Delta do
               EStep <- COPY(E)
               RTC <- RENAME[A -> A0](TC)
               RTC <- RENAME[B -> B0](RTC)
               Joined <- PRODUCT(RTC, EStep)
               Matched <- SELECT[B0 = A](Joined)
               Step <- PROJECT[{A0, B}](Matched)
               Step <- RENAME[A0 -> A](Step)
               Delta <- DIFFERENCE(Step, TC)
               TC <- CLASSICALUNION(TC, Delta)
             end",
        )
        .unwrap()
    }

    fn chain(n: usize) -> Database {
        let rows: Vec<[String; 2]> = (0..n)
            .map(|i| [format!("n{i}"), format!("n{}", i + 1)])
            .collect();
        let rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        Database::from_tables([Table::relational("E", &["A", "B"], &rows)])
    }

    #[test]
    fn delta_and_naive_agree_on_transitive_closure() {
        let p = tc_program();
        let db = chain(8);
        let (naive, _) = run_with_stats(&p, &db, &limits(WhileStrategy::Naive)).unwrap();
        let (delta, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(
            naive.table_str("TC").unwrap(),
            delta.table_str("TC").unwrap()
        );
        // The chain of 8 edges closes to 9·8/2 = 36 pairs.
        assert_eq!(delta.table_str("TC").unwrap().height(), 36);
        assert_eq!(stats.while_fallback_naive, 0);
        assert!(
            stats.while_delta_skipped > 0,
            "the loop-invariant EStep copy skips after its first run"
        );
        assert!(!stats.delta_dirty_sizes.is_empty());
        // Until the loop exits, every iteration changes at least `Delta`.
        assert!(stats.delta_dirty_sizes.iter().all(|&d| d >= 1));
    }

    #[test]
    fn stats_agree_between_naive_and_delta_on_delta_safe_programs() {
        // The delta strategy skips statements and recomputes others
        // incrementally, but its *logical* production accounting must
        // match naive re-execution: skipped statements charge their
        // memoized output shape.
        let p = tc_program();
        let db = chain(8);
        let (_, naive) = run_with_stats(&p, &db, &limits(WhileStrategy::Naive)).unwrap();
        let (_, delta) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert!(delta.while_delta_skipped > 0, "skips actually exercised");
        assert_eq!(naive.while_iterations, delta.while_iterations);
        assert_eq!(
            naive.tables_produced, delta.tables_produced,
            "skipped statements must charge their memoized production"
        );
        assert_eq!(naive.max_table_cells, delta.max_table_cells);
        // Executions differ (that is the point of skipping), but every
        // operation naive ran is present in the delta counts.
        for op in naive.op_counts.keys() {
            assert!(delta.op_counts.contains_key(op), "{op} missing from delta");
        }
    }

    #[test]
    fn traced_delta_run_labels_skips_and_iterations() {
        use crate::eval::run_traced;
        use crate::obs::trace::{DeltaDecision, SpanKind, TraceLevel};

        let p = tc_program();
        let db = chain(8);
        let l = EvalLimits {
            while_strategy: WhileStrategy::Delta,
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (_, stats, trace) = run_traced(&p, &db, &l).unwrap();
        assert_eq!(trace.dropped(), 0);
        // Spans reconcile with stats: same per-op wall time (skips are 0),
        // and one delta-skipped span per counted skip.
        assert_eq!(trace.per_op_micros(), stats.op_micros);
        let skipped = trace
            .spans()
            .filter(|s| s.decision == DeltaDecision::DeltaSkipped)
            .count();
        assert_eq!(skipped, stats.while_delta_skipped);
        let iters = trace
            .spans()
            .filter(|s| s.kind == SpanKind::WhileIter)
            .count();
        assert_eq!(iters, stats.while_iterations);
        // Every body-statement span sits under an iteration span.
        let iter_ids: std::collections::HashSet<u64> = trace
            .spans()
            .filter(|s| s.kind == SpanKind::WhileIter)
            .map(|s| s.id)
            .collect();
        for s in trace.spans().filter(|s| s.kind == SpanKind::Assign) {
            if let Some(p) = s.parent {
                assert!(iter_ids.contains(&p), "assign span parents an iteration");
            }
        }
    }

    #[test]
    fn fresh_tagging_bodies_fall_back_to_naive() {
        let p = parse(
            "while W do
               T <- TUPLENEW[Tag](W)
               W <- DIFFERENCE(W, W)
             end",
        )
        .unwrap();
        let db = Database::from_tables([Table::relational("W", &["A"], &[&["1"]])]);
        let (_, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(stats.while_fallback_naive, 1);
        assert_eq!(stats.while_delta_skipped, 0);
    }

    #[test]
    fn convergence_loop_stops_after_stabilizing() {
        let p = parse(
            "while W do
               S <- CLASSICALUNION(S, W)
               W <- DIFFERENCE(S, S)
             end",
        )
        .unwrap();
        let db = Database::from_tables([
            Table::relational("W", &["A"], &[&["1"]]),
            Table::relational("S", &["A"], &[&["0"]]),
        ]);
        let (out, stats) = run_with_stats(&p, &db, &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(out.table_str("S").unwrap().height(), 2);
        assert_eq!(out.table_str("W").unwrap().height(), 0);
        assert_eq!(stats.while_fallback_naive, 0);
    }

    #[test]
    fn incremental_product_matches_full_recompute() {
        // R grows by an appended row in iteration 1, so iteration 2 takes
        // the append-incremental path for P, Q, and V; by iteration 3 those
        // statements are skipped outright. The W → W2 → W3 countdown keeps
        // the loop alive for exactly three iterations.
        let p = parse(
            "while W do
               P <- PRODUCT(R, S)
               Q <- SELECT[A = C](P)
               V <- PROJECT[{B}](Q)
               G <- PRODUCT(W, W)
               N <- DIFFERENCE(G, G)
               R <- CLASSICALUNION(R, Extra)
               W <- COPY(W2)
               W2 <- COPY(W3)
               W3 <- DIFFERENCE(W3, W3)
             end",
        )
        .unwrap();
        let mk = || {
            Database::from_tables([
                Table::relational("R", &["A", "B"], &[&["1", "x"]]),
                Table::relational("S", &["C", "D"], &[&["1", "u"], &["2", "v"]]),
                Table::relational("Extra", &["A", "B"], &[&["2", "y"]]),
                Table::relational("W", &["K"], &[&["go"]]),
                Table::relational("W2", &["K"], &[&["go2"]]),
                Table::relational("W3", &["K"], &[&["go3"]]),
            ])
        };
        let (naive, _) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Naive)).unwrap();
        let (delta, stats) = run_with_stats(&p, &mk(), &limits(WhileStrategy::Delta)).unwrap();
        assert_eq!(stats.delta_dirty_sizes.len(), 3, "three iterations");
        assert!(stats.while_delta_skipped > 0);
        for name in ["P", "Q", "V", "R", "W", "W2", "W3", "G", "N"] {
            assert_eq!(
                naive.table_str(name).unwrap(),
                delta.table_str(name).unwrap(),
                "{name} differs between strategies"
            );
        }
    }
}
