//! The tabular algebra interpreter (paper §3.6).
//!
//! Statements execute consecutively against the database. An assignment
//! statement runs its operation once for every combination of tables whose
//! names match its argument parameters (all tables for unary operations,
//! all ordered pairs for binary ones, the whole name-group at once for
//! `COLLAPSE`); the results, named by the target parameter, then *replace*
//! the tables previously carrying those names. The replace semantics is
//! the standard assignment reading and is what makes `while R ≠ ∅` able to
//! terminate; the paper's remark that the database "is augmented during
//! the computation" refers to the set of *names* growing as scratch tables
//! are produced.
//!
//! [`EvalLimits`] bounds `while` iterations and `set-new` materialization,
//! so programs fail cleanly instead of diverging; the limits are
//! engineering guards, not semantics (DESIGN.md §4).

use crate::error::{AlgebraError, Result};
use crate::governor::{Budget, Governor, PartialRun};
use crate::obs::metrics::Metrics;
use crate::obs::trace::{DeltaDecision, SpanKind, Trace, TraceLevel};
use crate::ops;
use crate::param::{denote_set, denote_single, denote_target, match_name, Bindings};
use crate::pool::LazyPool;
use crate::program::{Assignment, OpKind, Program, Statement};
use std::collections::BTreeMap;
use std::time::Instant;
use tabular_core::{Database, Symbol, SymbolSet, Table};

/// How `while` loops are evaluated (DESIGN.md, "Delta-driven `while`
/// evaluation").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WhileStrategy {
    /// Re-run every body statement on every iteration — the paper's
    /// operational reading, taken literally.
    Naive,
    /// Track which table names changed between iterations and skip body
    /// statements whose inputs (and own output) are untouched since their
    /// last execution; recompute append-grown products, selections, and
    /// projections incrementally. Falls back to [`WhileStrategy::Naive`]
    /// per loop when the body is not provably delta-safe (see
    /// `optimize::body_is_delta_safe`). Results are identical to naive
    /// evaluation: skipping is exact, not merely fixpoint-safe.
    #[default]
    Delta,
}

/// Resource bounds for program evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EvalLimits {
    /// Maximum iterations of any single `while` loop.
    pub max_while_iters: usize,
    /// Maximum rows `set-new` may materialize.
    pub max_setnew_rows: usize,
    /// Maximum number of tables in the database.
    pub max_tables: usize,
    /// Maximum cells in any produced table.
    pub max_cells: usize,
    /// Evaluate a statement's per-table applications on multiple threads
    /// once at least this many tables match (`matches >= threshold`,
    /// inclusive — pinned by a boundary test; thresholds below 2 are
    /// clamped to 2, since a single matching table leaves nothing to fan
    /// out). `usize::MAX` disables parallelism. Operations are pure, so
    /// the only visible difference is the choice of fresh tag values —
    /// determinacy up to isomorphism, as in §4.1 condition (iv).
    pub parallel_threshold: usize,
    /// Partition a `FUSEDJOIN` (or its delta-incremental append) across
    /// the shard pool once the probe side has at least this many rows
    /// (`probe rows >= threshold`, inclusive; a threshold of 0 behaves
    /// as 1, since an empty probe has nothing to partition). The
    /// partitioned kernel is byte-identical to the serial one — pinned
    /// by the `partitioning_on_and_off_agree` oracle — so the gate is
    /// purely a cost choice. `usize::MAX` disables partitioning.
    pub partition_threshold: usize,
    /// Worker threads in the run's shard pool: both the per-statement
    /// table fan-out and partitioned joins draw from this one pool. `0`
    /// (the default) detects `available_parallelism` at first use. Set
    /// it explicitly when multiplexing many governed runs in one
    /// process, so N concurrent runs don't spawn N × core-count
    /// threads.
    pub threads: usize,
    /// `while` loop evaluation strategy.
    pub while_strategy: WhileStrategy,
    /// Observability level: `Off` (no timing), `Counters` (per-op stats,
    /// the default), or `Spans` (stats plus the structured trace
    /// returned by [`run_traced`]).
    pub trace: TraceLevel,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_while_iters: 10_000,
            max_setnew_rows: 1 << 20,
            max_tables: 100_000,
            max_cells: 1 << 28,
            parallel_threshold: 64,
            partition_threshold: 1 << 16,
            threads: 0,
            while_strategy: WhileStrategy::default(),
            trace: TraceLevel::default(),
        }
    }
}

/// Execution statistics collected by [`run_with_stats`]: how often each
/// operation ran, the wall time it took, and the shape of what it
/// produced — the observability hook behind the benchmark analyses in
/// EXPERIMENTS.md.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Assignment executions per operation keyword (delta-skipped
    /// statements are not executions and are not counted here).
    pub op_counts: BTreeMap<&'static str, usize>,
    /// Wall time per operation keyword, in microseconds. Each statement
    /// is timed exactly once — body statements of a `while` are timed by
    /// the body pass only, never additionally by the enclosing loop — so
    /// the values sum to at most [`EvalStats::total_micros`] (pinned by
    /// a regression test on a 3-deep nested program). Empty at
    /// [`TraceLevel::Off`].
    pub op_micros: BTreeMap<&'static str, u128>,
    /// Wall time of the whole run, in microseconds.
    pub total_micros: u128,
    /// Total `while` loop iterations.
    pub while_iterations: usize,
    /// Tables produced across all statements (before set-dedup). The
    /// delta `while` strategy accounts skipped statements by the shape
    /// of their memoized output — what naive re-execution would have
    /// reproduced — so this figure agrees between
    /// [`WhileStrategy::Naive`] and [`WhileStrategy::Delta`].
    pub tables_produced: usize,
    /// Largest table produced, in cells.
    pub max_table_cells: usize,
    /// Jobs dispatched to the shard pool (statements whose matches
    /// reached [`EvalLimits::parallel_threshold`]).
    pub shard_jobs: usize,
    /// `FUSEDJOIN` evaluations (naive or delta-incremental) that ran the
    /// partition-parallel kernel because the probe side reached
    /// [`EvalLimits::partition_threshold`].
    pub partitioned_joins: usize,
    /// Partitions fanned out across all partitioned joins (each join
    /// contributes its shard count, clamped to its probe rows).
    pub partition_shards: usize,
    /// Body statements skipped by the delta `while` strategy because
    /// neither their inputs nor their own output changed since their last
    /// execution.
    pub while_delta_skipped: usize,
    /// `while` loop executions that requested the delta strategy but fell
    /// back to naive re-evaluation (body not provably delta-safe).
    pub while_fallback_naive: usize,
    /// `FUSEDJOIN` argument pairs evaluated by the hash-join kernel
    /// (naive and delta-incremental executions both count; delta skips do
    /// not, mirroring `op_counts`).
    pub join_fused: usize,
    /// `FUSEDJOIN` argument pairs that failed the fusion applicability
    /// check and ran the unfused product-then-select pipeline.
    pub join_unfused: usize,
    /// `FUSEDRESTRUCTURE` argument tables evaluated by the single-pass
    /// restructuring kernel (naive and delta executions both count; delta
    /// skips do not, mirroring `op_counts`).
    pub restructure_fused: usize,
    /// `FUSEDRESTRUCTURE` argument tables that failed the fusion
    /// applicability check and ran the staged
    /// `GROUP → CLEAN-UP (→ PURGE)` pipeline.
    pub restructure_unfused: usize,
    /// Per-iteration dirty-set sizes (number of names whose contents
    /// changed during the iteration) across all delta-evaluated loops, in
    /// execution order.
    pub delta_dirty_sizes: Vec<usize>,
    /// Database snapshots (O(1) handle clones) taken during the run,
    /// including the run's own initial snapshot of the input. Measured by
    /// differencing the process-wide [`tabular_core::stats`] counters, so
    /// concurrent evaluations in one process may bleed into each other's
    /// figures; exact when the process runs one evaluation at a time.
    pub snapshots: u64,
    /// Table cell buffers materialized by copy-on-write during the run —
    /// mutations of tables whose buffers were shared with a snapshot.
    /// Same measurement caveat as [`EvalStats::snapshots`].
    pub cow_copies: u64,
    /// Statements of the submitted program removed, replaced, or moved by
    /// the cost-based planner before execution (`run_planned*` entry
    /// points only; 0 on unplanned runs). Deterministic in the program
    /// and catalog, so Naive and Delta agree.
    pub plans_rewritten: usize,
    /// Planner rule applications recorded while planning the submitted
    /// program ([`crate::plan::PlanReport::rules_applied`]; 0 on
    /// unplanned runs). Deterministic like [`EvalStats::plans_rewritten`].
    pub plan_rules_applied: usize,
}

impl EvalStats {
    /// Operations sorted by descending total time.
    pub fn hottest(&self) -> Vec<(&'static str, u128, usize)> {
        let mut rows: Vec<(&'static str, u128, usize)> = self
            .op_micros
            .iter()
            .map(|(&k, &us)| (k, us, self.op_counts.get(k).copied().unwrap_or(0)))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

/// Evaluate a program against a database, returning the final database
/// (input tables plus every table produced, with overwritten names
/// replaced).
pub fn run(program: &Program, db: &Database, limits: &EvalLimits) -> Result<Database> {
    Ok(run_with_stats(program, db, limits)?.0)
}

/// Like [`run`], additionally returning per-operation execution
/// statistics.
pub fn run_with_stats(
    program: &Program,
    db: &Database,
    limits: &EvalLimits,
) -> Result<(Database, EvalStats)> {
    let (state, stats, _) = run_traced(program, db, limits)?;
    Ok((state, stats))
}

/// Like [`run_with_stats`], additionally returning the structured
/// evaluation trace. The trace is empty unless `limits.trace` is
/// [`TraceLevel::Spans`]; see [`crate::obs`] for the span schema and
/// [`crate::pretty::render_trace`] for the `EXPLAIN ANALYZE`-style view.
pub fn run_traced(
    program: &Program,
    db: &Database,
    limits: &EvalLimits,
) -> Result<(Database, EvalStats, Trace)> {
    run_governed_traced(program, db, &Budget::from_limits(limits))
}

/// Evaluate a program under a [`Budget`]: the static limits plus a
/// wall-clock deadline, a cumulative cell budget, and cooperative
/// cancellation. On a budget trip the returned
/// [`AlgebraError::BudgetExceeded`] carries the partial stats and trace
/// (see [`crate::governor`]).
pub fn run_governed(program: &Program, db: &Database, budget: &Budget) -> Result<Database> {
    Ok(run_governed_traced(program, db, budget)?.0)
}

/// Like [`run_governed`], additionally returning the statistics and the
/// structured trace of the successful run. This is the single underlying
/// entry point: the plain `run*` functions delegate here with
/// [`Budget::from_limits`], so governed and ungoverned evaluation share
/// one code path.
pub fn run_governed_traced(
    program: &Program,
    db: &Database,
    budget: &Budget,
) -> Result<(Database, EvalStats, Trace)> {
    let limits = &budget.limits;
    let gov = Governor::new(budget);
    let snapshots_base = tabular_core::stats::snapshots();
    let cow_base = tabular_core::stats::cow_copies();
    let mut state = db.snapshot();
    let mut metrics = Metrics::new(limits.trace);
    let mut pool = LazyPool::new(limits.threads);
    let start = Instant::now();
    let cx = Exec { limits, gov: &gov };
    let outcome = run_statements(&program.statements, &mut state, cx, &mut metrics, &mut pool);
    metrics.stats.total_micros = start.elapsed().as_micros();
    metrics.stats.snapshots = tabular_core::stats::snapshots().saturating_sub(snapshots_base);
    metrics.stats.cow_copies = tabular_core::stats::cow_copies().saturating_sub(cow_base);
    match outcome {
        Ok(()) => {
            let (stats, trace) = metrics.into_parts();
            Ok((state, stats, trace))
        }
        Err(AlgebraError::BudgetExceeded {
            resource,
            spent,
            limit,
            ..
        }) => {
            // Degrade gracefully: drain the spans the trip left open as
            // `aborted` (innermost first — the tripped span leads) and
            // hand the partial stats and trace back on the error.
            metrics.abort_open();
            let (stats, trace) = metrics.into_parts();
            Err(AlgebraError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial: Box::new(PartialRun { stats, trace }),
            })
        }
        Err(err) => Err(err),
    }
}

/// Plan a program against the database with the cost-based planner
/// ([`crate::plan::plan`]) and evaluate the planned form. Semantically
/// identical to [`run`] up to fresh-tag renumbering (oracle-checked by
/// `planner_on_and_off_agree`).
pub fn run_planned(program: &Program, db: &Database, limits: &EvalLimits) -> Result<Database> {
    Ok(run_planned_traced(program, db, limits)?.0)
}

/// Like [`run_planned`], additionally returning statistics (with the
/// `plans_rewritten` / `plan_rules_applied` counters filled in) and the
/// structured trace.
pub fn run_planned_traced(
    program: &Program,
    db: &Database,
    limits: &EvalLimits,
) -> Result<(Database, EvalStats, Trace)> {
    let (state, stats, trace, _) =
        run_planned_governed_traced(program, db, &Budget::from_limits(limits))?;
    Ok((state, stats, trace))
}

/// Like [`run_governed`], but planning first.
pub fn run_planned_governed(program: &Program, db: &Database, budget: &Budget) -> Result<Database> {
    Ok(run_planned_governed_traced(program, db, budget)?.0)
}

/// The full planned entry point: plan, evaluate under the budget, and
/// return the result with statistics, trace, and the planner's decision
/// report (for EXPLAIN rendering — see `crate::pretty::render_plan`).
/// The planner counters are stamped into the statistics on success *and*
/// into the partial statistics carried by a budget trip.
pub fn run_planned_governed_traced(
    program: &Program,
    db: &Database,
    budget: &Budget,
) -> Result<(Database, EvalStats, Trace, crate::plan::PlanReport)> {
    let (planned, report) = crate::plan::plan(program, db);
    let stamp = |stats: &mut EvalStats| {
        stats.plans_rewritten = report.statements_rewritten;
        stats.plan_rules_applied = report.rules_applied();
    };
    let spans = budget.limits.trace == crate::obs::TraceLevel::Spans;
    match run_governed_traced(&planned, db, budget) {
        Ok((state, mut stats, mut trace)) => {
            stamp(&mut stats);
            if spans {
                prepend_plan_spans(&mut trace, &report);
            }
            Ok((state, stats, trace, report))
        }
        Err(AlgebraError::BudgetExceeded {
            resource,
            spent,
            limit,
            mut partial,
        }) => {
            stamp(&mut partial.stats);
            if spans {
                prepend_plan_spans(&mut partial.trace, &report);
            }
            Err(AlgebraError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            })
        }
        Err(err) => Err(err),
    }
}

/// Place one [`crate::obs::SpanKind::Plan`] span per planner decision at
/// the front of the trace, so EXPLAIN trees lead with what the planner
/// rewrote. Ids continue past the evaluation spans' (uniqueness is what
/// the tree builder needs, not ordering).
fn prepend_plan_spans(trace: &mut Trace, report: &crate::plan::PlanReport) {
    use crate::obs::trace::{DeltaDecision, Span, SpanKind};
    let base = trace.spans().map(|s| s.id).max().unwrap_or(0);
    let est = |v: Option<u128>| v.map_or(0, |c| usize::try_from(c).unwrap_or(usize::MAX));
    for (k, d) in report.decisions.iter().enumerate().rev() {
        trace.prepend(Span {
            id: base + 1 + k as u64,
            parent: None,
            kind: SpanKind::Plan,
            op: d.rule.name(),
            matched: 0,
            input_cells: est(d.before_cells),
            output_cells: est(d.after_cells),
            micros: 0,
            cow_copies: 0,
            decision: DeltaDecision::Executed,
            fusion: None,
            shard: None,
            iteration: None,
        });
    }
}

/// Evaluate a program and project the result onto the given output names
/// (paper §3.6: "the names of output tables should be specified as part of
/// the program, when simulating transformations").
pub fn run_outputs(
    program: &Program,
    db: &Database,
    outputs: &[Symbol],
    limits: &EvalLimits,
) -> Result<Database> {
    let full = run(program, db, limits)?;
    let keep: SymbolSet = outputs.iter().copied().collect();
    let mut out = full;
    out.retain(|t| keep.contains(t.name()));
    Ok(out)
}

/// The evaluation context threaded through the interpreter: the static
/// limits plus the run's governor. `Copy` so it passes by value through
/// the recursion, and `Send + Sync` (shared references to `Sync` state)
/// so shard-pool jobs can poll the governor mid-fan-out.
#[derive(Clone, Copy)]
pub(crate) struct Exec<'a> {
    pub(crate) limits: &'a EvalLimits,
    pub(crate) gov: &'a Governor,
}

pub(crate) fn run_statements(
    stmts: &[Statement],
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    for stmt in stmts {
        // Statement boundaries are the governor's polling granularity:
        // aborting here leaves a state a statement prefix explains.
        cx.gov.poll()?;
        match stmt {
            Statement::Assign(a) => run_timed_assignment(a, db, cx, metrics, pool)?,
            Statement::While { cond, body } => {
                let name = denote_target(cond, &Bindings::new())
                    .map_err(|_| AlgebraError::BadWhileCondition)?;
                let delta = cx.limits.while_strategy == WhileStrategy::Delta;
                if delta && crate::optimize::body_is_delta_safe(body) {
                    crate::delta::run_delta_while(name, body, db, cx, metrics, pool)?;
                    continue;
                }
                let decision = if delta {
                    metrics.stats.while_fallback_naive += 1;
                    DeltaDecision::FallbackNaive
                } else {
                    DeltaDecision::Executed
                };
                let mut iters = 0usize;
                while db.tables_named_iter(name).any(|t| t.height() > 0) {
                    iters += 1;
                    metrics.stats.while_iterations += 1;
                    if iters > cx.limits.max_while_iters {
                        return Err(AlgebraError::LimitExceeded {
                            what: "while iterations",
                            limit: cx.limits.max_while_iters,
                            attempted: iters,
                        });
                    }
                    metrics.begin(SpanKind::WhileIter, "while", Some(iters));
                    // Poll with the iteration span open, so a trip here
                    // is drained as an aborted `while #N` span.
                    cx.gov.poll()?;
                    let start = metrics.timer();
                    let outcome = run_statements(body, db, cx, metrics, pool);
                    if matches!(outcome, Err(AlgebraError::BudgetExceeded { .. })) {
                        // Leave the iteration span open: the abort drain
                        // (`Metrics::abort_open`) marks it `aborted`.
                        return outcome;
                    }
                    metrics.end(Metrics::elapsed(start).unwrap_or(0), decision);
                    outcome?;
                }
            }
        }
    }
    Ok(())
}

/// Execute one assignment with its span and per-op accounting. The
/// single `elapsed` reading here is the *only* place a statement is
/// timed — it feeds both `EvalStats::op_micros` and the statement's
/// span, so the two sinks reconcile exactly and nothing is counted
/// twice.
pub(crate) fn run_timed_assignment(
    a: &Assignment,
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    metrics.begin(SpanKind::Assign, a.op.keyword(), None);
    let start = metrics.timer();
    let outcome = run_assignment(a, db, cx, metrics, pool);
    if matches!(outcome, Err(AlgebraError::BudgetExceeded { .. })) {
        // An interrupted statement is not an execution: leave its span
        // open for the abort drain and record no op count or timing, so
        // partial stats agree across strategies at the trip point.
        return outcome;
    }
    let micros = Metrics::elapsed(start);
    metrics.record_op(a.op.keyword(), micros);
    metrics.end(micros.unwrap_or(0), DeltaDecision::Executed);
    outcome
}

fn run_assignment(
    a: &Assignment,
    db: &mut Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<()> {
    let results = compute_results(a, db, cx, metrics, pool)?;
    check_results(&results, cx, metrics)?;
    replace_results(results, db);
    check_table_count(db, cx.limits)
}

/// Cells of a table under the limit convention of `max_cells`: the data
/// matrix plus its attribute row and column.
pub(crate) fn table_cells(t: &Table) -> usize {
    (t.height() + 1) * (t.width() + 1)
}

/// Restructure-fusion outcomes tallied away from the metrics registry:
/// `apply_unary` runs inside shard-pool jobs without `Metrics` access, so
/// each job accumulates locally and the evaluating thread merges the
/// counts (and notes the span's fusion decision) after the scoped join.
#[derive(Clone, Copy, Default)]
pub(crate) struct FusionCounts {
    pub(crate) restructure_fused: usize,
    pub(crate) restructure_unfused: usize,
}

impl FusionCounts {
    fn absorb(&mut self, other: FusionCounts) {
        self.restructure_fused += other.restructure_fused;
        self.restructure_unfused += other.restructure_unfused;
    }
}

/// Evaluate an assignment against the (pre-statement) database, returning
/// the produced tables without committing them. Annotates the open span
/// (if any) with the matched-combination count and input cells, and
/// records one child span per shard-pool job.
pub(crate) fn compute_results(
    a: &Assignment,
    db: &Database,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<Vec<Table>> {
    let limits = cx.limits;
    let arity = a.op.arity();
    if a.args.len() != arity {
        return Err(AlgebraError::Arity {
            op: a.op.keyword(),
            expected: arity,
            got: a.args.len(),
        });
    }

    // Collect results over all matching argument combinations, reading the
    // pre-statement state throughout.
    let mut results: Vec<Table> = Vec::new();
    let mut combos = 0usize;
    let mut input_cells = 0usize;
    let mut fusion = FusionCounts::default();

    match &a.op {
        // COLLAPSE consumes every matching table of one name collectively.
        OpKind::Collapse { by } => {
            let mut names_done: SymbolSet = SymbolSet::new();
            for t in db.tables() {
                let Some(bindings) = match_name(&a.args[0], t.name(), &Bindings::new()) else {
                    continue;
                };
                if names_done.contains(t.name()) {
                    continue;
                }
                names_done.insert(t.name());
                let group: Vec<&Table> = db.tables_named_iter(t.name()).collect();
                combos += 1;
                input_cells += group.iter().map(|g| table_cells(g)).sum::<usize>();
                let target = denote_target(&a.target, &bindings)?;
                let by_set = denote_set(by, t, &bindings);
                results.push(ops::collapse(&group, &by_set, target));
            }
        }
        _ if arity == 1 => {
            // Gather the matching tables first so the work can fan out.
            let mut work: Vec<(&Table, Bindings, Symbol)> = Vec::new();
            for t in db.tables() {
                let Some(bindings) = match_name(&a.args[0], t.name(), &Bindings::new()) else {
                    continue;
                };
                let target = denote_target(&a.target, &bindings)?;
                work.push((t, bindings, target));
            }
            combos = work.len();
            input_cells = work.iter().map(|(t, _, _)| table_cells(t)).sum();
            if work.len() >= limits.parallel_threshold.max(2) {
                // Purely functional per-table applications: shard across
                // the run's persistent worker pool, then splice results
                // back in input order. Each job clocks its own wall time
                // into its slot so the evaluating thread can record shard
                // spans without cross-thread metrics.
                let shards = pool.get().threads().min(work.len());
                let chunk = work.len().div_ceil(shards);
                let chunks: Vec<&[(&Table, Bindings, Symbol)]> = work.chunks(chunk).collect();
                // Per-shard result slot: (tables, fusion counters, the
                // job's wall time in microseconds — the unit
                // `Metrics::shard_span` records into the trace).
                type ShardWallMicros = u128;
                type ShardSlot = Option<(Result<Vec<Table>>, FusionCounts, ShardWallMicros)>;
                let mut slots: Vec<ShardSlot> = vec![None; chunks.len()];
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                    .iter()
                    .zip(slots.iter_mut())
                    .map(|(slice, slot)| {
                        let slice = *slice;
                        let op = &a.op;
                        Box::new(move || {
                            let start = Instant::now();
                            let mut local = Vec::new();
                            let mut counts = FusionCounts::default();
                            let out = slice
                                .iter()
                                .try_for_each(|(t, bindings, target)| {
                                    // Poll between tables so a sharded
                                    // statement stops mid-fan-out.
                                    cx.gov.poll()?;
                                    apply_unary(
                                        op,
                                        t,
                                        *target,
                                        bindings,
                                        limits,
                                        &mut local,
                                        &mut counts,
                                    )
                                })
                                .map(|()| local);
                            *slot = Some((out, counts, start.elapsed().as_micros()));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.get().scoped(jobs);
                metrics.stats.shard_jobs += chunks.len();
                for (shard, (slot, slice)) in slots.into_iter().zip(&chunks).enumerate() {
                    // Every job writes its slot before the scoped join
                    // returns; if one didn't (a pool bug — e.g. a job
                    // lost to a governor trip racing the join), fail the
                    // run, not the process.
                    let Some((out, counts, micros)) = slot else {
                        return Err(AlgebraError::Internal {
                            what: "a shard job finished without reporting a result",
                        });
                    };
                    fusion.absorb(counts);
                    metrics.shard_span(shard, slice.len(), micros);
                    results.extend(out?);
                }
            } else {
                for (t, bindings, target) in &work {
                    cx.gov.poll()?;
                    apply_unary(
                        &a.op,
                        t,
                        *target,
                        bindings,
                        limits,
                        &mut results,
                        &mut fusion,
                    )?;
                }
            }
        }
        _ => {
            for t1 in db.tables() {
                let Some(b1) = match_name(&a.args[0], t1.name(), &Bindings::new()) else {
                    continue;
                };
                for t2 in db.tables() {
                    let Some(b2) = match_name(&a.args[1], t2.name(), &b1) else {
                        continue;
                    };
                    combos += 1;
                    input_cells += table_cells(t1) + table_cells(t2);
                    let target = denote_target(&a.target, &b2)?;
                    if matches!(a.op, OpKind::Product) {
                        presize_product(t1, t2, limits)?;
                    }
                    let out = match &a.op {
                        OpKind::Union => ops::union(t1, t2, target),
                        OpKind::Difference => ops::difference(t1, t2, target),
                        OpKind::Intersect => ops::intersect(t1, t2, target),
                        OpKind::Product => ops::product(t1, t2, target),
                        OpKind::FusedJoin { a: pa, b: pb } => {
                            eval_fused_join(t1, t2, pa, pb, target, &b2, cx, metrics, pool)?
                        }
                        OpKind::ClassicalUnion => ops::classical_union(t1, t2, target),
                        _ => unreachable!("binary dispatch"),
                    };
                    results.push(out);
                }
            }
        }
    }

    if fusion.restructure_fused > 0 {
        metrics.stats.restructure_fused += fusion.restructure_fused;
        metrics.note_fusion("fused-restructure");
    }
    if fusion.restructure_unfused > 0 {
        metrics.stats.restructure_unfused += fusion.restructure_unfused;
        metrics.note_fusion("fallback-unfused");
    }
    metrics.note_matched(combos, input_cells);
    Ok(results)
}

/// Pre-size the only super-linear materializations (`PRODUCT`, and the
/// unfused fallback of `FUSEDJOIN`): a product is exactly one output row
/// per row pair, so its cell count is known before any allocation.
/// Failing here (with the same values the post-materialization check in
/// [`check_results`] would report) keeps a blown `max_cells` from ever
/// reaching the allocator.
fn presize_product(t1: &Table, t2: &Table, limits: &EvalLimits) -> Result<()> {
    let cells = t1
        .height()
        .saturating_mul(t2.height())
        .saturating_add(1)
        .saturating_mul(t1.width() + t2.width() + 1);
    if cells > limits.max_cells {
        return Err(AlgebraError::LimitExceeded {
            what: "cells per table",
            limit: limits.max_cells,
            attempted: cells,
        });
    }
    Ok(())
}

/// Evaluate one `FUSEDJOIN[A=B](R, S)` argument pair. The operation is
/// *defined* as `SELECT[A=B](PRODUCT(R, S))`; when both attributes are
/// rigid symbols resolving to exactly one column on opposite operands
/// ([`ops::fusable_join_cols`]), the hash-join kernel produces the
/// identical table without materializing the product — so the governor's
/// cell charge (in [`check_results`]) reflects the actual join output,
/// not the product pre-size, and only the fallback path needs the
/// [`presize_product`] guard.
#[allow(clippy::too_many_arguments)]
fn eval_fused_join(
    t1: &Table,
    t2: &Table,
    pa: &crate::param::Param,
    pb: &crate::param::Param,
    target: Symbol,
    bindings: &Bindings,
    cx: Exec<'_>,
    metrics: &mut Metrics,
    pool: &mut LazyPool,
) -> Result<Table> {
    let limits = cx.limits;
    if let (Some(a), Some(b)) = (pa.as_ground(), pb.as_ground()) {
        if let Some(cols) = ops::fusable_join_cols(t1, t2, a, b) {
            metrics.stats.join_fused += 1;
            metrics.note_fusion("fused-join");
            if t1.height() >= limits.partition_threshold.max(1) {
                // Partition-parallel kernel: byte-identical output, but
                // the governor is charged per-partition *during* the
                // join (admission before the buffer grows), so record
                // what was already charged and let `check_results`
                // charge only the remainder — cumulative charges stay
                // identical to the serial path.
                let pool = pool.get();
                let gov = cx.gov;
                let mut precharged = 0usize;
                let (out, report) = ops::join_partitioned(
                    t1,
                    t2,
                    cols,
                    target,
                    pool,
                    pool.threads(),
                    &|| gov.poll(),
                    &mut |cells| {
                        gov.charge_cells(cells)?;
                        precharged += cells;
                        Ok(())
                    },
                )?;
                metrics.note_partitioned(&report);
                metrics.precharge(precharged);
                return Ok(out);
            }
            return Ok(ops::join(t1, t2, cols, target));
        }
    }
    metrics.stats.join_unfused += 1;
    metrics.note_fusion("fallback-unfused");
    presize_product(t1, t2, limits)?;
    let prod = ops::product(t1, t2, target);
    let a = denote_single(pa, &prod, bindings, "FUSEDJOIN left")?;
    let b = denote_single(pb, &prod, bindings, "FUSEDJOIN right")?;
    Ok(ops::select(&prod, a, b, target))
}

/// Pre-size the grouped intermediate a `FUSEDRESTRUCTURE` fallback is
/// about to materialize — `GROUP` output is `(m + headers + 1) ×
/// (|𝒞| + m·|ℬ| + 1)` cells, known before any allocation — so a blown
/// `max_cells` fails exactly as the staged `GROUP` statement would,
/// without the buffer ever reaching the allocator.
fn presize_group(
    t: &Table,
    group_by: &SymbolSet,
    group_on: &SymbolSet,
    limits: &EvalLimits,
) -> Result<()> {
    let cells = ops::grouped_cells(t, group_by, group_on);
    if cells > limits.max_cells {
        return Err(AlgebraError::LimitExceeded {
            what: "cells per table",
            limit: limits.max_cells,
            attempted: cells,
        });
    }
    Ok(())
}

/// Evaluate one `FUSEDRESTRUCTURE` argument table. The operation is
/// *defined* as the staged `GROUP → CLEAN-UP (→ PURGE)` pipeline; when
/// the clean-up and purge parameters are rigid (table-independent — the
/// intermediate they would denote against is never built) the single-pass
/// kernel is attempted, and whenever it applies it produces the identical
/// table without the grouped intermediate — so the governor's cell charge
/// (in [`check_results`]) reflects the actual fused output, and only the
/// fallback needs the [`presize_group`] guard.
fn eval_fused_restructure(
    op: &OpKind,
    t: &Table,
    target: Symbol,
    bindings: &Bindings,
    limits: &EvalLimits,
    fusion: &mut FusionCounts,
) -> Result<Table> {
    let OpKind::FusedRestructure(chain) = op else {
        unreachable!("fused-restructure dispatch");
    };
    let crate::program::RestructureChain {
        group_by,
        group_on,
        cleanup_by,
        cleanup_on,
        purge,
    } = chain.as_ref();
    // The GROUP parameters denote against the input either way; rigidity
    // is only required of the stages whose table is never materialized.
    let g_by = denote_set(group_by, t, bindings);
    let g_on = denote_set(group_on, t, bindings);
    let rigid = cleanup_by.is_rigid()
        && cleanup_on.is_rigid()
        && purge
            .as_ref()
            .is_none_or(|(on, by)| on.is_rigid() && by.is_rigid());
    if rigid {
        let spec = ops::RestructureSpec {
            group_by: g_by.clone(),
            group_on: g_on.clone(),
            cleanup_by: cleanup_by.rigid_set(),
            cleanup_on: cleanup_on.rigid_set(),
            purge: purge
                .as_ref()
                .map(|(on, by)| (on.rigid_set(), by.rigid_set())),
        };
        if let Some(out) = ops::fused_restructure(t, &spec, target) {
            fusion.restructure_fused += 1;
            return Ok(out);
        }
    }
    fusion.restructure_unfused += 1;
    presize_group(t, &g_by, &g_on, limits)?;
    let grouped = ops::group(t, &g_by, &g_on, target);
    let c_by = denote_set(cleanup_by, &grouped, bindings);
    let c_on = denote_set(cleanup_on, &grouped, bindings);
    let cleaned = ops::cleanup(&grouped, &c_by, &c_on, target);
    match purge {
        Some((on, by)) => {
            let p_on = denote_set(on, &cleaned, bindings);
            let p_by = denote_set(by, &cleaned, bindings);
            Ok(ops::purge(&cleaned, &p_on, &p_by, target))
        }
        None => Ok(cleaned),
    }
}

/// Record shape statistics for produced tables, enforce the per-table
/// cell limit, and charge the statement's total production against the
/// run cell budget. Charging happens once per statement on the
/// evaluating thread, after the per-table checks, so the cumulative
/// total — and therefore the budget trip point — is deterministic
/// across strategies and shard configurations. Cells a partitioned join
/// already charged mid-statement (its per-partition admission control)
/// are subtracted here, so the statement's cumulative charge is
/// identical with partitioning on or off.
pub(crate) fn check_results(results: &[Table], cx: Exec<'_>, metrics: &mut Metrics) -> Result<()> {
    metrics.stats.tables_produced += results.len();
    let mut total = 0usize;
    for t in results {
        let cells = table_cells(t);
        total += cells;
        metrics.stats.max_table_cells = metrics.stats.max_table_cells.max(cells);
        if cells > cx.limits.max_cells {
            return Err(AlgebraError::LimitExceeded {
                what: "cells per table",
                limit: cx.limits.max_cells,
                attempted: cells,
            });
        }
    }
    let precharged = metrics.take_precharged();
    cx.gov.charge_cells(total.saturating_sub(precharged))?;
    metrics.note_output(total);
    Ok(())
}

/// The [`check_results`] accounting for a result the delta strategy
/// commits in place instead of materializing: one table of `cells` total
/// cells. Charging the full (not delta) size keeps `tables_produced`,
/// `max_table_cells`, and the run cell budget in agreement with naive
/// re-execution.
pub(crate) fn check_virtual_result(
    cells: usize,
    cx: Exec<'_>,
    metrics: &mut Metrics,
) -> Result<()> {
    metrics.stats.tables_produced += 1;
    metrics.stats.max_table_cells = metrics.stats.max_table_cells.max(cells);
    if cells > cx.limits.max_cells {
        return Err(AlgebraError::LimitExceeded {
            what: "cells per table",
            limit: cx.limits.max_cells,
            attempted: cells,
        });
    }
    cx.gov.charge_cells(cells)?;
    metrics.note_output(cells);
    Ok(())
}

/// Replace: drop existing tables carrying any produced name, then insert
/// the results (set semantics collapses exact duplicates).
pub(crate) fn replace_results(results: Vec<Table>, db: &mut Database) {
    let produced: SymbolSet = results.iter().map(|t| t.name()).collect();
    db.retain(|t| !produced.contains(t.name()));
    for t in results {
        db.insert(t);
    }
}

/// Enforce the database-size limit after a replacement.
pub(crate) fn check_table_count(db: &Database, limits: &EvalLimits) -> Result<()> {
    if db.len() > limits.max_tables {
        return Err(AlgebraError::LimitExceeded {
            what: "tables in database",
            limit: limits.max_tables,
            attempted: db.len(),
        });
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_unary(
    op: &OpKind,
    t: &Table,
    target: Symbol,
    bindings: &Bindings,
    limits: &EvalLimits,
    results: &mut Vec<Table>,
    fusion: &mut FusionCounts,
) -> Result<()> {
    match op {
        OpKind::Rename { from, to } => {
            let from = denote_single(from, t, bindings, "RENAME from")?;
            let to = denote_single(to, t, bindings, "RENAME to")?;
            results.push(ops::rename(t, from, to, target));
        }
        OpKind::Project { attrs } => {
            let set = denote_set(attrs, t, bindings);
            results.push(ops::project(t, &set, target));
        }
        OpKind::Select { a, b } => {
            let a = denote_single(a, t, bindings, "SELECT left")?;
            let b = denote_single(b, t, bindings, "SELECT right")?;
            results.push(ops::select(t, a, b, target));
        }
        OpKind::SelectConst { a, v } => {
            let a = denote_single(a, t, bindings, "SELECTCONST attribute")?;
            let v = denote_single(v, t, bindings, "SELECTCONST constant")?;
            results.push(ops::select_const(t, a, v, target));
        }
        OpKind::Group { by, on } => {
            let by = denote_set(by, t, bindings);
            let on = denote_set(on, t, bindings);
            results.push(ops::group(t, &by, &on, target));
        }
        OpKind::Merge { on, by } => {
            let on = denote_set(on, t, bindings);
            let by = denote_set(by, t, bindings);
            results.push(ops::merge(t, &on, &by, target));
        }
        OpKind::Split { on } => {
            let on = denote_set(on, t, bindings);
            results.extend(ops::split(t, &on, target));
        }
        OpKind::Transpose => results.push(ops::transpose(t, target)),
        OpKind::Switch { entry } => {
            let v = denote_single(entry, t, bindings, "SWITCH entry")?;
            results.push(ops::switch(t, v, target));
        }
        OpKind::CleanUp { by, on } => {
            let by = denote_set(by, t, bindings);
            let on = denote_set(on, t, bindings);
            results.push(ops::cleanup(t, &by, &on, target));
        }
        OpKind::Purge { on, by } => {
            let on = denote_set(on, t, bindings);
            let by = denote_set(by, t, bindings);
            results.push(ops::purge(t, &on, &by, target));
        }
        OpKind::TupleNew { attr } => {
            let attr = denote_single(attr, t, bindings, "TUPLENEW attribute")?;
            results.push(ops::tuple_new(t, attr, target));
        }
        OpKind::SetNew { attr } => {
            let attr = denote_single(attr, t, bindings, "SETNEW attribute")?;
            results.push(ops::set_new(t, attr, target, limits.max_setnew_rows)?);
        }
        OpKind::FusedRestructure { .. } => {
            results.push(eval_fused_restructure(
                op, t, target, bindings, limits, fusion,
            )?);
        }
        OpKind::Copy => results.push(ops::copy(t, target)),
        OpKind::Union
        | OpKind::Difference
        | OpKind::Intersect
        | OpKind::Product
        | OpKind::FusedJoin { .. }
        | OpKind::ClassicalUnion
        | OpKind::Collapse { .. } => unreachable!("unary dispatch"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use tabular_core::fixtures;

    fn nm(x: &str) -> Symbol {
        Symbol::name(x)
    }

    fn limits() -> EvalLimits {
        EvalLimits::default()
    }

    #[test]
    fn planned_traced_run_leads_with_plan_spans() {
        use crate::obs::SpanKind;
        // A scratch PRODUCT consumed once by a SELECT: the planner fuses
        // it, and the traced run's span tree starts with the decision.
        let s = Symbol::fresh_name();
        let p = Program::new()
            .assign(
                Param::sym(s),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("C"),
                },
                vec![Param::sym(s)],
            );
        let db = Database::from_tables([
            Table::relational("R", &["A", "B"], &[&["1", "x"], &["2", "y"]]),
            Table::relational("T", &["C", "D"], &[&["1", "u"]]),
        ]);
        let limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out, stats, trace) = run_planned_traced(&p, &db, &limits).unwrap();
        assert!(out.table_str("Out").is_some());
        assert_eq!(stats.plan_rules_applied, 1);
        assert_eq!(stats.plans_rewritten, 2);
        let first = trace.spans().next().expect("trace nonempty");
        assert_eq!(first.kind, SpanKind::Plan);
        assert_eq!(first.op, "fuse-join");
        assert!(first.input_cells > first.output_cells, "estimates carried");
        // Plan spans are roots and never double-count into the per-op
        // reconciliation, which only sums assignment spans.
        assert_eq!(first.parent, None);
        assert!(!trace.per_op_micros().contains_key("fuse-join"));
        // Ids stay unique across the prepended spans.
        let mut ids: Vec<u64> = trace.spans().map(|sp| sp.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
    }

    #[test]
    fn group_statement_reproduces_figure_4() {
        // Sales ← GROUP by Region on Sold (Sales): self-assignment replaces
        // the Sales table.
        let p = Program::new().assign(
            Param::name("Sales"),
            OpKind::Group {
                by: Param::names(&["Region"]),
                on: Param::names(&["Sold"]),
            },
            vec![Param::name("Sales")],
        );
        let out = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.table_str("Sales").unwrap(),
            &fixtures::figure4_grouped()
        );
    }

    #[test]
    fn split_statement_produces_multiple_tables_one_name() {
        let p = Program::new().assign(
            Param::name("Sales"),
            OpKind::Split {
                on: Param::names(&["Region"]),
            },
            vec![Param::name("Sales")],
        );
        let out = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
        assert_eq!(out.tables_named(nm("Sales")).len(), 4);
        assert!(out.equiv(&fixtures::sales_info4()));
    }

    #[test]
    fn collapse_statement_consumes_the_whole_name_group() {
        let p = Program::new().assign(
            Param::name("C"),
            OpKind::Collapse {
                by: Param::names(&["Region"]),
            },
            vec![Param::name("Sales")],
        );
        let out = run(&p, &fixtures::sales_info4(), &limits()).unwrap();
        let c = out.table_str("C").unwrap();
        // One column block (Region, Part, Sold) per input table.
        assert_eq!(c.width(), 12);
        // One row per data row of each input table.
        assert_eq!(c.height(), 8);
    }

    #[test]
    fn wildcard_statement_runs_over_every_table() {
        // *₁ ← TRANSPOSE(*₁): transpose every table in place.
        let p = Program::new().assign(Param::star_k(1), OpKind::Transpose, vec![Param::star_k(1)]);
        let db = fixtures::sales_info1_full();
        let out = run(&p, &db, &limits()).unwrap();
        assert_eq!(out.len(), db.len());
        for t in db.tables() {
            let flipped = out
                .tables_named(t.name())
                .into_iter()
                .find(|x| x.height() == t.width())
                .expect("transposed table present");
            assert_eq!(&flipped.transpose(), t);
        }
    }

    #[test]
    fn binary_statement_pairs_tables() {
        let db = Database::from_tables([
            Table::relational("R", &["A"], &[&["1"]]),
            Table::relational("S", &["A"], &[&["2"]]),
        ]);
        let p = Program::new().assign(
            Param::name("T"),
            OpKind::ClassicalUnion,
            vec![Param::name("R"), Param::name("S")],
        );
        let out = run(&p, &db, &limits()).unwrap();
        let t = out.table_str("T").unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.width(), 1);
    }

    #[test]
    fn assignment_replaces_previous_tables_of_that_name() {
        let db = Database::from_tables([
            Table::relational("R", &["A"], &[&["1"]]),
            Table::relational("T", &["Old"], &[&["x"]]),
        ]);
        let p = Program::new().assign(Param::name("T"), OpKind::Copy, vec![Param::name("R")]);
        let out = run(&p, &db, &limits()).unwrap();
        let t = out.table_str("T").unwrap();
        assert_eq!(t.col_attrs(), &[nm("A")]);
    }

    #[test]
    fn while_loop_runs_until_empty() {
        // Repeatedly subtract one specific row set until T is empty:
        // T ← DIFFERENCE(T, T) empties in one pass; count via a loop that
        // projects first to prove the body executes.
        let db = Database::from_tables([Table::relational("T", &["A"], &[&["1"], &["2"]])]);
        let body = Program::new().assign(
            Param::name("T"),
            OpKind::Difference,
            vec![Param::name("T"), Param::name("T")],
        );
        let p = Program::new().while_nonempty(Param::name("T"), body);
        let out = run(&p, &db, &limits()).unwrap();
        assert_eq!(out.table_str("T").unwrap().height(), 0);
    }

    #[test]
    fn while_loop_diverging_hits_limit() {
        let db = Database::from_tables([Table::relational("T", &["A"], &[&["1"]])]);
        let body = Program::new().assign(Param::name("T"), OpKind::Copy, vec![Param::name("T")]);
        let p = Program::new().while_nonempty(Param::name("T"), body);
        let small = EvalLimits {
            max_while_iters: 5,
            ..EvalLimits::default()
        };
        assert!(matches!(
            run(&p, &db, &small),
            Err(AlgebraError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn while_on_missing_table_is_skipped() {
        let db = Database::new();
        let p = Program::new().while_nonempty(
            Param::name("Nope"),
            Program::new().assign(Param::name("X"), OpKind::Copy, vec![Param::name("Nope")]),
        );
        let out = run(&p, &db, &limits()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = Program::new().assign(Param::name("T"), OpKind::Union, vec![Param::name("R")]);
        assert!(matches!(
            run(&p, &Database::new(), &limits()),
            Err(AlgebraError::Arity { .. })
        ));
    }

    #[test]
    fn run_outputs_projects_named_results() {
        let db = fixtures::sales_info1();
        let p = Program::new()
            .assign(
                Param::name("Scratch"),
                OpKind::Copy,
                vec![Param::name("Sales")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Copy,
                vec![Param::name("Scratch")],
            );
        let out = run_outputs(&p, &db, &[nm("Out")], &limits()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.table_str("Out").is_some());
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        // A database with many same-named tables (SalesInfo4 at scale) and
        // a wildcard statement fanning out over all of them.
        let db = fixtures::make_sales_info4(12, 100);
        let p = crate::parser::parse(
            "*1 <- TRANSPOSE(*1)
             *1 <- CLEANUP[by {*} on {_}](*1)",
        )
        .unwrap();
        let parallel = EvalLimits {
            parallel_threshold: 4,
            ..EvalLimits::default()
        };
        let sequential = EvalLimits {
            parallel_threshold: usize::MAX,
            ..EvalLimits::default()
        };
        let a = run(&p, &db, &parallel).unwrap();
        let b = run(&p, &db, &sequential).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a.equiv(&b));
    }

    #[test]
    fn parallel_evaluation_propagates_errors() {
        let db = fixtures::make_sales_info4(12, 100);
        // SETNEW on every table would blow the row budget; the error must
        // surface from worker threads.
        let p = crate::parser::parse("*1 <- SETNEW[Tag](*1)").unwrap();
        let limits = EvalLimits {
            parallel_threshold: 4,
            max_setnew_rows: 8,
            ..EvalLimits::default()
        };
        assert!(matches!(
            run(&p, &db, &limits),
            Err(AlgebraError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn stats_record_ops_loops_and_shapes() {
        let p = crate::parser::parse(
            "Sales <- GROUP[by {Region} on {Sold}](Sales)
             Sales <- CLEANUP[by {Part} on {_}](Sales)
             while Work do Work <- DIFFERENCE(Work, Work) end",
        )
        .unwrap();
        let mut db = fixtures::sales_info1();
        db.insert(Table::relational("Work", &["A"], &[&["1"]]));
        let (_, stats) = run_with_stats(&p, &db, &limits()).unwrap();
        assert_eq!(stats.op_counts.get("GROUP"), Some(&1));
        assert_eq!(stats.op_counts.get("CLEANUP"), Some(&1));
        assert_eq!(stats.op_counts.get("DIFFERENCE"), Some(&1));
        assert_eq!(stats.while_iterations, 1);
        assert!(stats.tables_produced >= 3);
        // The grouped intermediate dominates: 10 × 10 cells.
        assert_eq!(stats.max_table_cells, 100);
        let hottest = stats.hottest();
        assert_eq!(hottest.len(), 3);
    }

    #[test]
    fn op_micros_sum_to_at_most_total_wall_time() {
        // A 3-deep nested while program: were body statements timed both
        // by the body pass and by enclosing-loop accounting, the inner
        // statements would be charged once per nesting level and the
        // per-op total would exceed the wall clock.
        let p = crate::parser::parse(
            "while A do
               X <- COPY(Seed)
               while B do
                 Y <- PRODUCT(Seed, Seed)
                 while C do
                   Z <- GROUP[by {K} on {V}](Seed)
                   C <- DIFFERENCE(C, C)
                 end
                 C <- COPY(CSeed)
                 B <- DIFFERENCE(B, B)
               end
               B <- COPY(BSeed)
               A <- DIFFERENCE(A, A)
             end",
        )
        .unwrap();
        let db = Database::from_tables([
            Table::relational("Seed", &["K", "V"], &[&["a", "1"], &["b", "2"]]),
            Table::relational("A", &["X"], &[&["go"]]),
            Table::relational("B", &["X"], &[&["go"]]),
            Table::relational("C", &["X"], &[&["go"]]),
            Table::relational("BSeed", &["X"], &[&["go"]]),
            Table::relational("CSeed", &["X"], &[&["go"]]),
        ]);
        for strategy in [WhileStrategy::Naive, WhileStrategy::Delta] {
            let l = EvalLimits {
                while_strategy: strategy,
                ..EvalLimits::default()
            };
            let (_, stats) = run_with_stats(&p, &db, &l).unwrap();
            let op_sum: u128 = stats.op_micros.values().sum();
            assert!(
                op_sum <= stats.total_micros,
                "{strategy:?}: per-op micros {op_sum} exceed total {}",
                stats.total_micros
            );
            assert!(stats.while_iterations >= 3, "all three loops iterated");
        }
    }

    #[test]
    fn trace_per_op_totals_reconcile_with_stats() {
        let p = crate::parser::parse(
            "Sales <- GROUP[by {Region} on {Sold}](Sales)
             while Work do Work <- DIFFERENCE(Work, Work) end",
        )
        .unwrap();
        let mut db = fixtures::sales_info1();
        db.insert(Table::relational("Work", &["A"], &[&["1"]]));
        let l = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (_, stats, trace) = run_traced(&p, &db, &l).unwrap();
        assert_eq!(trace.dropped(), 0);
        assert_eq!(
            trace.per_op_micros(),
            stats.op_micros,
            "span micros are the same measurements as op_micros"
        );
        let json = trace.to_json();
        assert!(json.contains("\"op\":\"GROUP\""));
    }

    #[test]
    fn trace_off_records_no_timing_at_all() {
        let p = crate::parser::parse("T <- COPY(Sales)").unwrap();
        let l = EvalLimits {
            trace: TraceLevel::Off,
            ..EvalLimits::default()
        };
        let (_, stats, trace) = run_traced(&p, &fixtures::sales_info1(), &l).unwrap();
        assert!(trace.is_empty());
        assert!(stats.op_micros.is_empty());
        assert_eq!(stats.op_counts.get("COPY"), Some(&1));
    }

    #[test]
    fn parallel_threshold_boundary_is_inclusive() {
        // Exactly `threshold` matching tables must fan out (the doc says
        // "once at least this many tables match"); one fewer must not.
        let threshold = 4;
        let mk = |n: usize| {
            Database::from_tables(
                (0..n).map(|i| Table::relational(&format!("T{i}"), &["A"], &[&["v"]])),
            )
        };
        let p = crate::parser::parse("*1 <- TRANSPOSE(*1)").unwrap();
        let l = EvalLimits {
            parallel_threshold: threshold,
            ..EvalLimits::default()
        };
        let (_, at) = run_with_stats(&p, &mk(threshold), &l).unwrap();
        assert!(
            at.shard_jobs > 0,
            "exactly threshold matches dispatch to the pool"
        );
        let (_, below) = run_with_stats(&p, &mk(threshold - 1), &l).unwrap();
        assert_eq!(below.shard_jobs, 0, "threshold - 1 matches stay serial");
    }

    #[test]
    fn parallel_threshold_is_floored_at_two() {
        // Pin for the `.max(2)` clamp in `compute_results` (and its doc
        // on `EvalLimits::parallel_threshold`): thresholds of 0 and 1
        // behave as 2, because a single matching table leaves nothing to
        // fan out — it must stay serial, while two matches dispatch.
        let mk = |n: usize| {
            Database::from_tables(
                (0..n).map(|i| Table::relational(&format!("T{i}"), &["A"], &[&["v"]])),
            )
        };
        let p = crate::parser::parse("*1 <- TRANSPOSE(*1)").unwrap();
        for threshold in [0, 1] {
            let l = EvalLimits {
                parallel_threshold: threshold,
                ..EvalLimits::default()
            };
            let (_, one) = run_with_stats(&p, &mk(1), &l).unwrap();
            assert_eq!(
                one.shard_jobs, 0,
                "threshold {threshold}: a single match stays serial"
            );
            let (_, two) = run_with_stats(&p, &mk(2), &l).unwrap();
            assert!(
                two.shard_jobs > 0,
                "threshold {threshold}: two matches fan out"
            );
        }
    }

    #[test]
    fn thread_limit_one_evaluates_sharded_statements_correctly() {
        // `threads: 1` still takes the sharded code path (jobs dispatch
        // to the pool) but with a single worker — the pool honors the
        // knob instead of spawning `available_parallelism` threads.
        let db = Database::from_tables(
            (0..6).map(|i| Table::relational(&format!("T{i}"), &["A"], &[&["v"]])),
        );
        let p = crate::parser::parse("*1 <- TRANSPOSE(*1)").unwrap();
        let (reference, base) = run_with_stats(&p, &db, &EvalLimits::default()).unwrap();
        assert_eq!(base.shard_jobs, 0, "6 < default threshold stays serial");
        let l = EvalLimits {
            parallel_threshold: 2,
            threads: 1,
            ..EvalLimits::default()
        };
        let (out, stats) = run_with_stats(&p, &db, &l).unwrap();
        assert!(stats.shard_jobs > 0, "sharded path taken: {stats:?}");
        assert!(out.equiv(&reference));
    }

    #[test]
    fn partitioned_fused_join_is_byte_identical_with_equal_charges() {
        let table = |name: &str, attrs: [&str; 2], rows: Vec<[String; 2]>| {
            let rows: Vec<Vec<&str>> = rows
                .iter()
                .map(|r| r.iter().map(String::as_str).collect())
                .collect();
            let rows: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
            Table::relational(name, &attrs, &rows)
        };
        // Duplicate keys on both sides so partitions carry uneven match
        // counts; 12 probe rows so `partition_threshold: 1` engages.
        let db = Database::from_tables([
            table(
                "R",
                ["A", "B"],
                (0..12)
                    .map(|i| [format!("v{i}"), format!("k{}", i % 5)])
                    .collect(),
            ),
            table(
                "S",
                ["C", "D"],
                (0..7)
                    .map(|i| [format!("k{}", i % 3), format!("w{i}")])
                    .collect(),
            ),
        ]);
        let p = crate::parser::parse("T <- FUSEDJOIN[B = C](R, S)").unwrap();
        let serial_limits = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let part_limits = EvalLimits {
            partition_threshold: 1,
            threads: 2,
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (reference, ref_stats, _) = run_traced(&p, &db, &serial_limits).unwrap();
        let (out, stats, trace) = run_traced(&p, &db, &part_limits).unwrap();
        let t = reference.table_str("T").unwrap();
        assert_eq!(t, out.table_str("T").unwrap(), "byte-identical output");
        assert_eq!(ref_stats.partitioned_joins, 0);
        assert_eq!(stats.partitioned_joins, 1);
        assert!(stats.partition_shards >= 1);
        // One Partition span per shard, carrying the fan-out: partition
        // indices and per-partition output rows that sum to the join's.
        let partitions: Vec<_> = trace
            .spans()
            .filter(|s| s.kind == SpanKind::Partition)
            .collect();
        assert_eq!(partitions.len(), stats.partition_shards);
        assert!(partitions.iter().all(|s| s.shard.is_some()));
        assert_eq!(
            partitions.iter().map(|s| s.matched).sum::<usize>(),
            t.height()
        );
        // The cumulative governor charge is identical with partitioning
        // on or off: a budget of exactly the produced cells passes both
        // ways, one cell less trips both ways (per-partition charges
        // plus the remainder equal the serial statement charge).
        let t_cells = (t.height() + 1) * (t.width() + 1);
        for l in [&serial_limits, &part_limits] {
            let ok = Budget::from_limits(l).with_cell_budget(t_cells);
            run_governed(&p, &db, &ok).unwrap();
            let trip = Budget::from_limits(l).with_cell_budget(t_cells - 1);
            let err = run_governed(&p, &db, &trip).unwrap_err();
            assert!(matches!(err, AlgebraError::BudgetExceeded { .. }), "{err}");
        }
    }

    #[test]
    fn statement_reads_pre_state_consistently() {
        // Sales ← SPLIT on Region (Sales) with self-target must not feed
        // its own outputs back into the iteration.
        let p = Program::new().assign(
            Param::name("Sales"),
            OpKind::Split {
                on: Param::names(&["Region"]),
            },
            vec![Param::name("Sales")],
        );
        let once = run(&p, &fixtures::sales_info1(), &limits()).unwrap();
        assert_eq!(once.tables_named(nm("Sales")).len(), 4);
    }
}
