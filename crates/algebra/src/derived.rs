//! Derived constructions: reusable tabular algebra program snippets built
//! from the primitive operations, in the spirit of the paper's derivations
//! (§3.3–3.4: duals via transposition, constant selection via switch,
//! classical union via purge + clean-up).
//!
//! The [`Emitter`] is a small statement builder handing out scratch table
//! names from the reserved namespace; the constructions here are used by
//! the Theorem 4.1 compiler (`tabular-relational`) and the Lemma 4.2
//! program generator (`tabular-canonical`).

use crate::param::Param;
use crate::program::{Assignment, OpKind, Program, Statement};
use tabular_core::Symbol;

/// A builder for tabular algebra statement sequences with fresh scratch
/// names.
#[derive(Default)]
pub struct Emitter {
    stmts: Vec<Statement>,
    counter: u32,
}

impl Emitter {
    /// Empty emitter.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// A scratch table name from the reserved namespace, unique within
    /// this emitter.
    pub fn fresh(&mut self) -> Symbol {
        self.counter += 1;
        Symbol::name(&format!("\u{1F}t{}", self.counter))
    }

    /// Append `target ← op(args)`.
    pub fn assign(&mut self, target: Symbol, op: OpKind, args: &[Symbol]) {
        self.stmts.push(Statement::Assign(Assignment {
            target: Param::sym(target),
            op,
            args: args.iter().copied().map(Param::sym).collect(),
        }));
    }

    /// Append a raw statement.
    pub fn push(&mut self, stmt: Statement) {
        self.stmts.push(stmt);
    }

    /// Wrap previously-emitted statements: `while cond do body end` where
    /// `body` is built by the closure on a nested emitter sharing this
    /// emitter's name counter.
    pub fn while_nonempty(&mut self, cond: Symbol, body: impl FnOnce(&mut Emitter)) {
        let mut inner = Emitter {
            stmts: Vec::new(),
            counter: self.counter,
        };
        body(&mut inner);
        self.counter = inner.counter;
        self.stmts.push(Statement::While {
            cond: Param::sym(cond),
            body: inner.stmts,
        });
    }

    /// Derived: a zero-width, one-row table from any table with at least
    /// one ⊥-attributed data row — `PROJECT[{}]` keeps the rows and drops
    /// every column, after which all rows join under
    /// `CLEANUP[by {} on {_}]`.
    pub fn one_row(&mut self, src: Symbol) -> Symbol {
        let w1 = self.fresh();
        self.assign(
            w1,
            OpKind::Project {
                attrs: Param::default(),
            },
            &[src],
        );
        let w2 = self.fresh();
        self.assign(
            w2,
            OpKind::CleanUp {
                by: Param::default(),
                on: Param::null(),
            },
            &[w1],
        );
        w2
    }

    /// Derived: a 1×1 table whose single data entry is the *known symbol*
    /// `sym`, under column attribute `attr`, with ⊥ row attribute.
    ///
    /// Construction (§3.3): name a scratch table `sym`, tag it with one
    /// fresh value via tuple-new, and switch on that value — the switch
    /// swaps the fresh value into the name position (where it is
    /// overwritten by the next target) and drops the name `sym` into a
    /// data position. Transposition + renaming then normalize attributes.
    ///
    /// Note: the statement targeting `sym` transiently *replaces* any
    /// table named `sym`; copy user tables aside first.
    ///
    /// The construction is guarded: when `one_row` is empty (its source
    /// relation had no rows, so there is no occurrence to switch on), the
    /// whole chain is skipped and the returned name stays absent, which
    /// downstream operations read as the empty relation. Without the
    /// guard, SWITCH on the empty scratch table is a singleton-entry
    /// error, not an empty result.
    pub fn constant(&mut self, sym: Symbol, attr: Symbol, one_row: Symbol) -> Symbol {
        let guard = self.fresh();
        self.assign(guard, OpKind::Copy, &[one_row]);
        let mut result = None;
        self.while_nonempty(guard, |e| {
            let tmp_attr = e.fresh();
            e.assign(
                sym,
                OpKind::TupleNew {
                    attr: Param::sym(tmp_attr),
                },
                &[one_row],
            );
            let y = e.fresh();
            e.assign(
                y,
                OpKind::Switch {
                    entry: Param::pair(Param::null(), Param::sym(tmp_attr)),
                },
                &[sym],
            );
            let z = e.fresh();
            e.assign(
                z,
                OpKind::Rename {
                    from: Param::null(),
                    to: Param::sym(attr),
                },
                &[y],
            );
            let z2 = e.fresh();
            e.assign(z2, OpKind::Transpose, &[z]);
            let z3 = e.fresh();
            e.assign(
                z3,
                OpKind::Rename {
                    from: Param::sym(tmp_attr),
                    to: Param::null(),
                },
                &[z2],
            );
            let c = e.fresh();
            e.assign(c, OpKind::Transpose, &[z3]);
            // Exit the run-once guard loop.
            e.assign(guard, OpKind::Difference, &[guard, guard]);
            result = Some(c);
        });
        result.expect("guard body always emits the constant chain")
    }

    /// Fold a table into an accumulator with classical union.
    pub fn union_into(&mut self, acc: Option<Symbol>, next: Symbol) -> Symbol {
        match acc {
            None => next,
            Some(prev) => {
                let u = self.fresh();
                self.assign(u, OpKind::ClassicalUnion, &[prev, next]);
                u
            }
        }
    }

    /// Number of statements emitted so far.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True if nothing emitted.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Finish, yielding the program.
    pub fn into_program(self) -> Program {
        Program {
            statements: self.stmts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalLimits};
    use tabular_core::{Database, Symbol, Table};

    #[test]
    fn one_row_reduces_any_relational_table() {
        let mut e = Emitter::new();
        let src = Symbol::name("R");
        let one = e.one_row(src);
        let db = Database::from_tables([Table::relational("R", &["A"], &[&["1"], &["2"], &["3"]])]);
        let out = run(&e.into_program(), &db, &EvalLimits::default()).unwrap();
        let t = out.table(one).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.width(), 0);
        assert!(t.get(1, 0).is_null());
    }

    #[test]
    fn constant_materializes_a_known_symbol_as_data() {
        let mut e = Emitter::new();
        let one = e.one_row(Symbol::name("R"));
        let c = e.constant(Symbol::name("Widget"), Symbol::name("Entry"), one);
        let db = Database::from_tables([Table::relational("R", &["A"], &[&["1"]])]);
        let out = run(&e.into_program(), &db, &EvalLimits::default()).unwrap();
        let t = out.table(c).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.width(), 1);
        assert_eq!(t.col_attr(1), Symbol::name("Entry"));
        assert!(t.get(1, 0).is_null());
        assert_eq!(t.get(1, 1), Symbol::name("Widget"));
    }

    #[test]
    fn constant_overwrites_and_requires_prior_copies() {
        // The documented hazard: the constant's scratch table replaces any
        // user table with that name.
        let mut e = Emitter::new();
        let one = e.one_row(Symbol::name("R"));
        let _c = e.constant(Symbol::name("R"), Symbol::name("Entry"), one);
        let db = Database::from_tables([Table::relational("R", &["A"], &[&["1"]])]);
        let out = run(&e.into_program(), &db, &EvalLimits::default()).unwrap();
        // R is gone (replaced transiently, then left behind by the switch
        // statement's rename of the result).
        assert!(
            out.table_str("R").is_none()
                || out.table_str("R").unwrap().width() != 1
                || out.table_str("R").unwrap().col_attr(1) != Symbol::name("A")
        );
    }

    #[test]
    fn while_wrapper_nests() {
        let mut e = Emitter::new();
        let t = Symbol::name("T");
        e.while_nonempty(t, |inner| {
            inner.assign(t, OpKind::Difference, &[t, t]);
        });
        let p = e.into_program();
        assert_eq!(p.len(), 2);
        let db = Database::from_tables([Table::relational("T", &["A"], &[&["1"]])]);
        let out = run(&p, &db, &EvalLimits::default()).unwrap();
        assert_eq!(out.table_str("T").unwrap().height(), 0);
    }

    #[test]
    fn union_into_folds() {
        let mut e = Emitter::new();
        let a = Symbol::name("A");
        let b = Symbol::name("B");
        let acc = e.union_into(None, a);
        assert_eq!(acc, a);
        let acc = e.union_into(Some(acc), b);
        assert_ne!(acc, a);
        assert_eq!(e.len(), 1);
    }
}
