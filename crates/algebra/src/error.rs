//! Errors raised by tabular algebra evaluation and parsing.

use crate::governor::PartialRun;
use tabular_core::Symbol;

/// Errors from evaluating tabular algebra programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A parameter that must denote a single attribute denoted zero or
    /// several (paper §3.6: "a parameter representing a single column
    /// attribute should have a singleton set as interpretation, otherwise
    /// the effect of the statement is undefined").
    NotSingleton {
        /// What the parameter was for.
        context: &'static str,
        /// How many symbols it denoted.
        got: usize,
    },
    /// A wildcard was used where no binding is available (e.g. a `*` in a
    /// parameter list whose subscript never occurs in the argument list).
    UnboundWildcard(u32),
    /// The statement's target parameter does not denote a name.
    BadTarget,
    /// A `while` condition must be a (possibly bound) table name.
    BadWhileCondition,
    /// An evaluation limit was exceeded (guard against the exponential
    /// `set-new` and non-terminating `while`; see `EvalLimits`).
    LimitExceeded {
        /// Which limit.
        what: &'static str,
        /// The configured bound.
        limit: usize,
        /// The attempted size.
        attempted: usize,
    },
    /// A [`crate::governor::Budget`] resource ran out — the run was
    /// cancelled, its wall-clock deadline passed, or its cumulative cell
    /// budget was exhausted. Unlike [`AlgebraError::LimitExceeded`], the
    /// error carries the partial [`crate::EvalStats`] and partial
    /// [`crate::Trace`] collected up to the trip (the `partial` payload
    /// is diagnostic only and does not affect error equality).
    BudgetExceeded {
        /// Which resource tripped: one of
        /// [`crate::governor::RESOURCE_CANCELLED`],
        /// [`crate::governor::RESOURCE_DEADLINE`] (values in ms), or
        /// [`crate::governor::RESOURCE_RUN_CELLS`] (values in cells).
        resource: &'static str,
        /// How much was spent when the trip was detected (0 for
        /// cancellation).
        spent: usize,
        /// The configured allowance (0 for cancellation).
        limit: usize,
        /// The stats and trace accumulated up to the trip.
        partial: Box<PartialRun>,
    },
    /// An operation received the wrong number of arguments.
    Arity {
        /// Operation name.
        op: &'static str,
        /// Expected argument count.
        expected: usize,
        /// Received argument count.
        got: usize,
    },
    /// A `switch` entry parameter denoted more than one symbol.
    AmbiguousEntry(Vec<Symbol>),
    /// Parse error in the textual tabular algebra language.
    Parse {
        /// Byte offset in the source.
        at: usize,
        /// Description.
        msg: String,
    },
    /// An engine invariant did not hold mid-run. These used to be
    /// `expect`/`unreachable!` panics on paths that are also reachable
    /// while a governed run is winding down from a budget trip (partial
    /// state); in a long-lived multi-tenant process a broken invariant
    /// must fail the one run, not abort the server.
    Internal {
        /// Which invariant broke.
        what: &'static str,
    },
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::NotSingleton { context, got } => {
                write!(
                    f,
                    "parameter for {context} must denote exactly one symbol, got {got}"
                )
            }
            AlgebraError::UnboundWildcard(k) => write!(f, "wildcard *{k} is unbound"),
            AlgebraError::BadTarget => write!(f, "assignment target must denote a name"),
            AlgebraError::BadWhileCondition => {
                write!(f, "while condition must be a table name")
            }
            AlgebraError::LimitExceeded {
                what,
                limit,
                attempted,
            } => write!(f, "{what} limit exceeded: {attempted} > {limit}"),
            AlgebraError::BudgetExceeded {
                resource,
                spent,
                limit,
                ..
            } => {
                if *resource == crate::governor::RESOURCE_CANCELLED {
                    write!(f, "evaluation cancelled cooperatively")
                } else {
                    write!(f, "{resource} budget exceeded: spent {spent} of {limit}")
                }
            }
            AlgebraError::Arity { op, expected, got } => {
                write!(f, "{op} expects {expected} argument(s), got {got}")
            }
            AlgebraError::AmbiguousEntry(syms) => {
                write!(f, "entry parameter denotes {} symbols", syms.len())
            }
            AlgebraError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            AlgebraError::Internal { what } => {
                write!(f, "internal evaluation invariant broken: {what}")
            }
        }
    }
}

impl AlgebraError {
    /// A budget trip with an (as yet) empty partial payload; the run
    /// entry point attaches the real stats and trace as the error
    /// propagates out (`eval::run_governed_traced`).
    pub(crate) fn budget_trip(resource: &'static str, spent: usize, limit: usize) -> AlgebraError {
        AlgebraError::BudgetExceeded {
            resource,
            spent,
            limit,
            partial: Box::new(PartialRun::default()),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Result alias for algebra evaluation.
pub type Result<T> = std::result::Result<T, AlgebraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = AlgebraError::LimitExceeded {
            what: "set-new rows",
            limit: 10,
            attempted: 4096,
        };
        assert!(e.to_string().contains("4096"));
        assert!(AlgebraError::UnboundWildcard(3).to_string().contains("*3"));
    }
}
