//! Programs in the tabular algebra (paper §3.6): sequences of assignment
//! statements `T ← op(params)(args)` and `while R ≠ ∅ do P` loops.

use crate::param::Param;

/// The operation of an assignment statement, with its operation-specific
/// parameters. Arguments (table-name parameters) live on the enclosing
/// [`Assignment`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Tabular union (binary, §3.1).
    Union,
    /// Tabular difference (binary, §3.1).
    Difference,
    /// Intersection — derived from difference (§3.1).
    Intersect,
    /// Cartesian product (binary, §3.1).
    Product,
    /// `RENAME_{to←from}` (§3.1).
    Rename {
        /// Attribute to rename.
        from: Param,
        /// New attribute.
        to: Param,
    },
    /// `PROJECT_𝒜` (§3.1).
    Project {
        /// Attribute set to keep.
        attrs: Param,
    },
    /// `SELECT_{A=B}` with weak equality (§3.1).
    Select {
        /// Left attribute.
        a: Param,
        /// Right attribute.
        b: Param,
    },
    /// Constant selection `σ_{A=v}` — derived via switch (§3.3).
    SelectConst {
        /// Attribute.
        a: Param,
        /// Constant (entry parameter).
        v: Param,
    },
    /// `GROUP by 𝒜 on ℬ` (§3.2, Figure 4).
    Group {
        /// Grouping attributes.
        by: Param,
        /// Grouped attributes.
        on: Param,
    },
    /// `MERGE on ℬ by 𝒜` (§3.2, Figure 5).
    Merge {
        /// Merged data attributes.
        on: Param,
        /// Header-row attributes.
        by: Param,
    },
    /// `SPLIT on 𝒜` (§3.2).
    Split {
        /// Splitting attributes.
        on: Param,
    },
    /// `COLLAPSE by 𝒜` (§3.2) — consumes *all* tables matching the
    /// argument collectively.
    Collapse {
        /// Header-row attributes.
        by: Param,
    },
    /// `TRANSPOSE` (§3.3).
    Transpose,
    /// `SWITCH_V` (§3.3).
    Switch {
        /// Entry parameter designating the pivot occurrence.
        entry: Param,
    },
    /// `CLEAN-UP by 𝒜 on ℬ` (§3.4).
    CleanUp {
        /// Grouping column attributes.
        by: Param,
        /// Participating row attributes.
        on: Param,
    },
    /// `PURGE on ℬ by 𝒜` (§3.4) — dual of clean-up.
    Purge {
        /// Participating column attributes.
        on: Param,
        /// Grouping row attributes.
        by: Param,
    },
    /// `TUPLENEW_A` (§3.5).
    TupleNew {
        /// New column attribute.
        attr: Param,
    },
    /// `SETNEW_A` (§3.5) — exponential; guarded by `EvalLimits`.
    SetNew {
        /// New column attribute.
        attr: Param,
    },
    /// Fused `SELECT_{A=B} ∘ PRODUCT` — an internal hash-join operator the
    /// optimizer introduces for single-use scratch `s ← PRODUCT(R,S);
    /// T ← SELECT[A=B](s)` chains; semantically identical to the unfused
    /// pipeline but never materializes the cross product when the
    /// attributes resolve to one column on each operand.
    FusedJoin {
        /// Left attribute.
        a: Param,
        /// Right attribute.
        b: Param,
    },
    /// Fused `PURGE ∘ CLEAN-UP ∘ GROUP` (or the 2-op `CLEAN-UP ∘ GROUP`
    /// prefix when `purge` is `None`) — an internal restructuring operator
    /// the optimizer introduces for single-use scratch pivot chains;
    /// semantically identical to the staged pipeline but evaluated in one
    /// pass when the single-pass model applies, never materializing the
    /// quadratic grouped intermediate.
    /// The five parameter slots are boxed ([`RestructureChain`]) so this
    /// widest variant does not balloon every `OpKind` and `Statement`.
    FusedRestructure(Box<RestructureChain>),
    /// Copy under a new name — derived (`RENAME_{A←A}`).
    Copy,
    /// Classical union — derived (union ∘ purge ∘ clean-up, §3.4).
    ClassicalUnion,
}

/// The parameter block of an [`OpKind::FusedRestructure`] chain. Boxed
/// inside the variant: five `Param`s inline would make it by far the
/// widest `OpKind` and bloat every `Statement`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RestructureChain {
    /// `GROUP by` — grouping attributes.
    pub group_by: Param,
    /// `GROUP on` — grouped attributes.
    pub group_on: Param,
    /// `CLEAN-UP by` — grouping column attributes (over the
    /// intermediate).
    pub cleanup_by: Param,
    /// `CLEAN-UP on` — participating row attributes (over the
    /// intermediate).
    pub cleanup_on: Param,
    /// `PURGE (on, by)` closing the chain, if present.
    pub purge: Option<(Param, Param)>,
}

impl OpKind {
    /// Number of table arguments the operation takes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Union
            | OpKind::Difference
            | OpKind::Intersect
            | OpKind::Product
            | OpKind::FusedJoin { .. }
            | OpKind::ClassicalUnion => 2,
            _ => 1,
        }
    }

    /// Operation name as written in the textual language.
    pub fn keyword(&self) -> &'static str {
        match self {
            OpKind::Union => "UNION",
            OpKind::Difference => "DIFFERENCE",
            OpKind::Intersect => "INTERSECT",
            OpKind::Product => "PRODUCT",
            OpKind::Rename { .. } => "RENAME",
            OpKind::Project { .. } => "PROJECT",
            OpKind::Select { .. } => "SELECT",
            OpKind::SelectConst { .. } => "SELECTCONST",
            OpKind::Group { .. } => "GROUP",
            OpKind::Merge { .. } => "MERGE",
            OpKind::Split { .. } => "SPLIT",
            OpKind::Collapse { .. } => "COLLAPSE",
            OpKind::Transpose => "TRANSPOSE",
            OpKind::Switch { .. } => "SWITCH",
            OpKind::CleanUp { .. } => "CLEANUP",
            OpKind::Purge { .. } => "PURGE",
            OpKind::TupleNew { .. } => "TUPLENEW",
            OpKind::SetNew { .. } => "SETNEW",
            OpKind::FusedJoin { .. } => "FUSEDJOIN",
            OpKind::FusedRestructure { .. } => "FUSEDRESTRUCTURE",
            OpKind::Copy => "COPY",
            OpKind::ClassicalUnion => "CLASSICALUNION",
        }
    }
}

/// An assignment statement `target ← op(args)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assignment {
    /// Name (or bound wildcard) for the result tables.
    pub target: Param,
    /// The operation and its parameters.
    pub op: OpKind,
    /// Table-name parameters selecting the argument tables.
    pub args: Vec<Param>,
}

/// A statement: an assignment or a `while` loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// `T ← op(...)(R, ...)`.
    Assign(Assignment),
    /// `while R ≠ ∅ do P od`: loop while some table named by the condition
    /// has at least one data row.
    While {
        /// Table-name condition.
        cond: Param,
        /// Loop body.
        body: Vec<Statement>,
    },
}

/// A tabular algebra program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The statements, executed in order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Append an assignment statement (builder style).
    pub fn assign(mut self, target: Param, op: OpKind, args: Vec<Param>) -> Program {
        self.statements
            .push(Statement::Assign(Assignment { target, op, args }));
        self
    }

    /// Append a `while` loop (builder style).
    pub fn while_nonempty(mut self, cond: Param, body: Program) -> Program {
        self.statements.push(Statement::While {
            cond,
            body: body.statements,
        });
        self
    }

    /// Concatenate two programs.
    pub fn then(mut self, other: Program) -> Program {
        self.statements.extend(other.statements);
        self
    }

    /// Number of statements, counting nested `while` bodies.
    pub fn len(&self) -> usize {
        fn count(stmts: &[Statement]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Statement::Assign(_) => 1,
                    Statement::While { body, .. } => 1 + count(body),
                })
                .sum()
        }
        count(&self.statements)
    }

    /// True if the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(OpKind::Union.arity(), 2);
        assert_eq!(OpKind::Transpose.arity(), 1);
        assert_eq!(
            OpKind::Group {
                by: Param::star(),
                on: Param::star()
            }
            .arity(),
            1
        );
        assert_eq!(OpKind::ClassicalUnion.arity(), 2);
    }

    #[test]
    fn builder_composes() {
        let p = Program::new()
            .assign(Param::name("T"), OpKind::Transpose, vec![Param::name("R")])
            .while_nonempty(
                Param::name("T"),
                Program::new().assign(
                    Param::name("T"),
                    OpKind::Difference,
                    vec![Param::name("T"), Param::name("T")],
                ),
            );
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
