//! Federations of tabular databases (paper §4.2): "it is a simple matter
//! to extend the tabular model and algebra in a way that accounts for a
//! federation of (tabular) databases. Such an extended language would
//! trivially subsume SchemaLog (without function symbols)."
//!
//! The extension is by qualification: a federation member `hr` holding a
//! table `Sales` contributes the table under the qualified name
//! `hr.Sales`, and tabular algebra programs over the flattened database
//! reference members through those names (`.` is an identifier character
//! in the textual syntax, so `Pay <- COPY(hr.Sales)` parses as-is).
//! Results written under a member prefix route back to that member;
//! unqualified results land in the designated local member.

use crate::error::{AlgebraError, Result};
use crate::eval::{run, run_governed_traced, run_traced, EvalLimits, EvalStats};
use crate::governor::Budget;
use crate::obs::trace::Trace;
use crate::program::Program;
use tabular_core::{Database, Symbol, Table};

/// A named collection of tabular databases.
#[derive(Clone, Debug, Default)]
pub struct Federation {
    members: Vec<(String, Database)>,
}

impl Federation {
    /// Empty federation.
    pub fn new() -> Federation {
        Federation::default()
    }

    /// Add (or replace) a member database. Member names must not contain
    /// `.` (the qualifier separator).
    pub fn insert(&mut self, name: &str, db: Database) {
        assert!(
            !name.contains('.') && !name.is_empty(),
            "member names are non-empty and dot-free"
        );
        match self.members.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = db,
            None => self.members.push((name.to_owned(), db)),
        }
    }

    /// Look up a member.
    pub fn member(&self, name: &str) -> Option<&Database> {
        self.members
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, db)| db)
    }

    /// Member names, in insertion order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The qualified name of a member's table.
    pub fn qualify(member: &str, table: Symbol) -> Symbol {
        Symbol::name(&format!("{member}.{table}"))
    }

    /// Flatten into a single tabular database with qualified table names —
    /// the federation *is* a tabular database, which is the §4.2 point.
    pub fn flatten(&self) -> Database {
        let mut out = Database::new();
        for (name, db) in &self.members {
            for t in db.tables() {
                let mut q = t.clone();
                q.set_name(Self::qualify(name, t.name()));
                out.insert(q);
            }
        }
        out
    }

    /// Inverse of [`Federation::flatten`]: route tables back to members by
    /// their qualifier; unqualified tables go to `local`.
    pub fn unflatten(db: &Database, local: &str) -> Federation {
        let mut fed = Federation::new();
        fed.insert(local, Database::new());
        for t in db.tables() {
            let text = t.name().text().unwrap_or("");
            let (member, bare) = match text.split_once('.') {
                Some((m, rest)) if !m.is_empty() && !rest.is_empty() => {
                    (m.to_owned(), Symbol::name(rest))
                }
                _ => (local.to_owned(), t.name()),
            };
            let mut renamed = t.clone();
            renamed.set_name(bare);
            if fed.member(&member).is_none() {
                fed.insert(&member, Database::new());
            }
            let slot = fed
                .members
                .iter_mut()
                .find(|(n, _)| *n == member)
                .expect("just ensured");
            slot.1.insert(renamed);
        }
        fed
    }

    /// Run a tabular algebra program over the federation: flatten, run,
    /// route results back. `local` names the member receiving unqualified
    /// results.
    pub fn run_program(
        &self,
        program: &Program,
        local: &str,
        limits: &EvalLimits,
    ) -> Result<Federation> {
        let flat = self.flatten();
        let out = run(program, &flat, limits)?;
        Ok(Federation::unflatten(&out, local))
    }

    /// Like [`Federation::run_program`], additionally returning the
    /// execution statistics and structured trace of the underlying run
    /// over the flattened database (spans name the qualified tables).
    pub fn run_program_traced(
        &self,
        program: &Program,
        local: &str,
        limits: &EvalLimits,
    ) -> Result<(Federation, EvalStats, Trace)> {
        let flat = self.flatten();
        let (out, stats, trace) = run_traced(program, &flat, limits)?;
        Ok((Federation::unflatten(&out, local), stats, trace))
    }

    /// Like [`Federation::run_program_traced`], but governed by a
    /// [`Budget`]: the run over the flattened database honors the
    /// budget's deadline, run-cell allowance, and cancellation token.
    /// On a trip the returned [`AlgebraError::BudgetExceeded`] carries
    /// the partial stats and trace of the flattened run.
    pub fn run_program_governed(
        &self,
        program: &Program,
        local: &str,
        budget: &Budget,
    ) -> Result<(Federation, EvalStats, Trace)> {
        let flat = self.flatten();
        let (out, stats, trace) = run_governed_traced(program, &flat, budget)?;
        Ok((Federation::unflatten(&out, local), stats, trace))
    }

    /// Like [`Federation::run_program_governed`], but the flattened
    /// program goes through the cost-based planner first
    /// ([`crate::plan::plan`] reads statistics off the flattened
    /// database's qualified tables), and the planner's decision report
    /// is returned alongside the run artifacts. A budget trip carries
    /// partial stats/trace with the plan counters stamped, exactly as
    /// [`crate::eval::run_planned_governed_traced`] does.
    pub fn run_program_planned(
        &self,
        program: &Program,
        local: &str,
        budget: &Budget,
    ) -> Result<(Federation, EvalStats, Trace, crate::plan::PlanReport)> {
        let flat = self.flatten();
        let (out, stats, trace, report) =
            crate::eval::run_planned_governed_traced(program, &flat, budget)?;
        Ok((Federation::unflatten(&out, local), stats, trace, report))
    }

    /// Run `program` against every member *independently* (each member
    /// sees only its own unqualified tables), splitting `budget` evenly
    /// across members with [`Budget::split`]: each member's run gets
    /// `1/n` of the deadline and cell allowance, and all runs share the
    /// budget's cancellation token. On the first trip the shared token
    /// is cancelled — so if a caller runs members concurrently against
    /// clones of the split budget, sibling runs stop cooperatively —
    /// and the tripping member's error is returned.
    pub fn run_each_governed(&self, program: &Program, budget: &Budget) -> Result<Federation> {
        let n = self.members.len().max(1);
        let per_site = budget.split(n);
        let mut out = Federation::new();
        for (name, db) in &self.members {
            match run_governed_traced(program, db, &per_site) {
                Ok((res, _, _)) => out.insert(name, res),
                Err(err @ AlgebraError::BudgetExceeded { .. }) => {
                    per_site.cancel.cancel();
                    return Err(err);
                }
                Err(err) => return Err(err),
            }
        }
        Ok(out)
    }

    /// Total table count across members.
    pub fn table_count(&self) -> usize {
        self.members.iter().map(|(_, db)| db.len()).sum()
    }
}

/// Convenience: a federation member's table, qualified, as a fresh table
/// value (fixtures and tests).
pub fn qualified(member: &str, table: &Table) -> Table {
    let mut t = table.clone();
    t.set_name(Federation::qualify(member, table.name()));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tabular_core::fixtures;

    fn limits() -> EvalLimits {
        EvalLimits::default()
    }

    fn two_branch_federation() -> Federation {
        let east = Database::from_tables([Table::relational(
            "Sales",
            &["Part", "Sold"],
            &[&["nuts", "50"], &["bolts", "70"]],
        )]);
        let west = Database::from_tables([Table::relational(
            "Sales",
            &["Part", "Sold"],
            &[&["nuts", "60"], &["screws", "50"]],
        )]);
        let mut fed = Federation::new();
        fed.insert("east", east);
        fed.insert("west", west);
        fed
    }

    #[test]
    fn flatten_qualifies_and_unflatten_inverts() {
        let fed = two_branch_federation();
        let flat = fed.flatten();
        assert_eq!(flat.len(), 2);
        assert!(flat.table_str("east.Sales").is_some());
        assert!(flat.table_str("west.Sales").is_some());
        let back = Federation::unflatten(&flat, "main");
        assert!(back
            .member("east")
            .unwrap()
            .equiv(fed.member("east").unwrap()));
        assert!(back
            .member("west")
            .unwrap()
            .equiv(fed.member("west").unwrap()));
    }

    #[test]
    fn cross_database_union() {
        // The interoperability workload SchemaLog motivates: merge the
        // branch sales into a warehouse member.
        let fed = two_branch_federation();
        let p = parse("warehouse.Sales <- CLASSICALUNION(east.Sales, west.Sales)").unwrap();
        let out = fed.run_program(&p, "main", &limits()).unwrap();
        let warehouse = out.member("warehouse").unwrap();
        let merged = warehouse.table_str("Sales").unwrap();
        assert_eq!(merged.height(), 4);
        assert_eq!(merged.width(), 2);
        // Sources untouched.
        assert_eq!(out.member("east").unwrap().len(), 1);
    }

    #[test]
    fn cross_database_restructuring() {
        // Split one member's relational table into another member's
        // per-region tables — Figure 1 across database boundaries.
        let mut fed = Federation::new();
        fed.insert("hq", fixtures::sales_info1());
        let p = parse("mirror.Sales <- SPLIT[on {Region}](hq.Sales)").unwrap();
        let out = fed.run_program(&p, "main", &limits()).unwrap();
        let mirror = out.member("mirror").unwrap();
        assert!(mirror.equiv(&fixtures::sales_info4()));
    }

    #[test]
    fn unqualified_results_go_to_the_local_member() {
        let fed = two_branch_federation();
        let p = parse("Combined <- UNION(east.Sales, west.Sales)").unwrap();
        let out = fed.run_program(&p, "scratchpad", &limits()).unwrap();
        assert!(out
            .member("scratchpad")
            .unwrap()
            .table_str("Combined")
            .is_some());
    }

    #[test]
    fn wildcards_range_over_the_whole_federation() {
        let fed = two_branch_federation();
        // Transpose every table of every member in place.
        let p = parse("*1 <- TRANSPOSE(*1)").unwrap();
        let out = fed.run_program(&p, "main", &limits()).unwrap();
        for member in ["east", "west"] {
            let db = out.member(member).unwrap();
            let t = db.table_str("Sales").unwrap();
            assert_eq!(t.height(), 2); // transposed: attrs became rows
            assert_eq!(t.width(), 2);
        }
    }

    #[test]
    fn traced_run_reports_stats_and_spans() {
        use crate::obs::trace::TraceLevel;

        let fed = two_branch_federation();
        let p = parse("warehouse.Sales <- CLASSICALUNION(east.Sales, west.Sales)").unwrap();
        let traced = EvalLimits {
            trace: TraceLevel::Spans,
            ..EvalLimits::default()
        };
        let (out, stats, trace) = fed.run_program_traced(&p, "main", &traced).unwrap();
        assert!(out.member("warehouse").is_some());
        assert_eq!(stats.op_counts.get("CLASSICALUNION"), Some(&1));
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.spans().next().unwrap().op, "CLASSICALUNION");
    }

    #[test]
    fn planned_run_agrees_with_unplanned_and_reports_decisions() {
        let fed = two_branch_federation();
        let p = parse("warehouse.Sales <- CLASSICALUNION(east.Sales, west.Sales)").unwrap();
        let budget = Budget::from_limits(&limits());
        let (planned, stats, _, report) = fed.run_program_planned(&p, "main", &budget).unwrap();
        let unplanned = fed.run_program(&p, "main", &limits()).unwrap();
        let w = planned.member("warehouse").unwrap();
        assert!(w.equiv(unplanned.member("warehouse").unwrap()));
        // No scratch intermediates here, so the honest report is empty —
        // and the stats counters agree with it.
        assert_eq!(stats.plans_rewritten, report.statements_rewritten);
        assert_eq!(stats.plan_rules_applied, report.rules_applied());
    }

    #[test]
    fn member_bookkeeping() {
        let mut fed = two_branch_federation();
        assert_eq!(fed.member_names(), vec!["east", "west"]);
        assert_eq!(fed.table_count(), 2);
        fed.insert("east", Database::new());
        assert_eq!(fed.member("east").unwrap().len(), 0);
        assert_eq!(fed.member_names().len(), 2);
    }
}
