//! The metrics registry: the single sink for everything the interpreter
//! counts, times, or traces.
//!
//! Before this module, `eval.rs` and `delta.rs` each updated raw
//! `EvalStats` fields inline and the shard pool reported nothing; the
//! [`Metrics`] registry centralizes that bookkeeping behind one API so
//! counter semantics (what counts as an "execution", how skipped
//! statements are accounted) live in one place, and so the span layer of
//! [`crate::obs::trace`] can piggyback on the very same measurements —
//! which is what makes per-op span totals reconcile *exactly* with
//! `EvalStats::op_micros` (no double counting: each statement is timed
//! once and the one reading feeds both sinks).
//!
//! The registry is deliberately single-threaded: shard jobs measure
//! their own wall time into their result slots and the evaluating thread
//! records the spans after the scoped join, so no synchronization is
//! needed on the hot path and `TraceLevel::Off` costs only a branch.

use crate::eval::EvalStats;
use crate::obs::trace::{DeltaDecision, Span, SpanKind, Trace, TraceLevel};
use std::time::Instant;

/// A span begun but not yet completed; lives on the registry's stack so
/// nested work (iteration → statement → shard) links parents correctly
/// and so helpers like `compute_results` can annotate the span currently
/// open without threading a handle through every call.
struct Pending {
    id: u64,
    parent: Option<u64>,
    kind: SpanKind,
    op: &'static str,
    matched: usize,
    input_cells: usize,
    output_cells: usize,
    fusion: Option<&'static str>,
    iteration: Option<usize>,
    /// Process-wide CoW-copy total when the span opened; `end` differences
    /// against it so the span shows how many cell buffers its work (child
    /// spans included) actually materialized.
    cow_base: u64,
}

/// Single sink for interpreter statistics and spans (see module docs).
pub(crate) struct Metrics {
    /// The public counters, exactly as `run_with_stats` returns them.
    pub(crate) stats: EvalStats,
    level: TraceLevel,
    trace: Trace,
    stack: Vec<Pending>,
    next_id: u64,
    /// Cells the current statement's partitioned joins already charged
    /// against the governor (per-partition admission control);
    /// `check_results` takes this and charges only the remainder.
    precharged_cells: usize,
}

impl Metrics {
    pub(crate) fn new(level: TraceLevel) -> Metrics {
        Metrics {
            stats: EvalStats::default(),
            level,
            trace: Trace::new(),
            stack: Vec::new(),
            next_id: 0,
            precharged_cells: 0,
        }
    }

    /// Note cells a partitioned join charged mid-statement, so the
    /// statement-level charge in `check_results` can subtract them.
    pub(crate) fn precharge(&mut self, cells: usize) {
        self.precharged_cells += cells;
    }

    /// Take (and reset) the cells precharged during the current
    /// statement.
    pub(crate) fn take_precharged(&mut self) -> usize {
        std::mem::take(&mut self.precharged_cells)
    }

    /// Account one partitioned join: bump the stats counters and record
    /// one partition span per shard under the open statement span. A
    /// no-op on an empty report (the join took the serial path).
    pub(crate) fn note_partitioned(&mut self, report: &[crate::ops::PartitionShard]) {
        if report.is_empty() {
            return;
        }
        self.stats.partitioned_joins += 1;
        self.stats.partition_shards += report.len();
        for (shard, p) in report.iter().enumerate() {
            self.partition_span(shard, p.rows, p.wall_micros);
        }
    }

    /// True when spans are being recorded.
    pub(crate) fn spans_enabled(&self) -> bool {
        self.level == TraceLevel::Spans
    }

    /// A timestamp for per-op timing, unless the level is `Off`.
    pub(crate) fn timer(&self) -> Option<Instant> {
        (self.level >= TraceLevel::Counters).then(Instant::now)
    }

    /// Elapsed µs of a [`Metrics::timer`] timestamp.
    pub(crate) fn elapsed(start: Option<Instant>) -> Option<u128> {
        start.map(|s| s.elapsed().as_micros())
    }

    /// Count one execution of `op`; add its wall time when timed.
    pub(crate) fn record_op(&mut self, op: &'static str, micros: Option<u128>) {
        *self.stats.op_counts.entry(op).or_default() += 1;
        if let Some(us) = micros {
            *self.stats.op_micros.entry(op).or_default() += us;
        }
    }

    fn alloc_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Open a span (no-op below [`TraceLevel::Spans`]). Every `begin`
    /// must be paired with an [`Metrics::end`] on the success path;
    /// spans left open by error propagation are simply not recorded —
    /// except on a budget trip, where [`Metrics::abort_open`] drains
    /// them into the partial trace as `aborted` spans.
    pub(crate) fn begin(&mut self, kind: SpanKind, op: &'static str, iteration: Option<usize>) {
        if !self.spans_enabled() {
            return;
        }
        let parent = self.stack.last().map(|p| p.id);
        let id = self.alloc_id();
        self.stack.push(Pending {
            id,
            parent,
            kind,
            op,
            matched: 0,
            input_cells: 0,
            output_cells: 0,
            fusion: None,
            iteration,
            cow_base: tabular_core::stats::cow_copies(),
        });
    }

    /// Annotate the open span with its matched argument combinations and
    /// the total cells of the matched inputs.
    pub(crate) fn note_matched(&mut self, combos: usize, input_cells: usize) {
        if let Some(p) = self.stack.last_mut() {
            p.matched = combos;
            p.input_cells = input_cells;
        }
    }

    /// Annotate the open span with the total cells it produced.
    pub(crate) fn note_output(&mut self, cells: usize) {
        if let Some(p) = self.stack.last_mut() {
            p.output_cells += cells;
        }
    }

    /// Annotate the open span with a join-fusion decision. A fallback on
    /// any argument pair sticks: once `"fallback-unfused"` is noted the
    /// span keeps it even if other pairs fused, so a mixed statement is
    /// reported conservatively.
    pub(crate) fn note_fusion(&mut self, decision: &'static str) {
        if let Some(p) = self.stack.last_mut() {
            if p.fusion != Some("fallback-unfused") {
                p.fusion = Some(decision);
            }
        }
    }

    /// Close the innermost open span with its wall time and decision.
    pub(crate) fn end(&mut self, micros: u128, decision: DeltaDecision) {
        if !self.spans_enabled() {
            return;
        }
        let Some(p) = self.stack.pop() else {
            return;
        };
        self.trace.push(Span {
            id: p.id,
            parent: p.parent,
            kind: p.kind,
            op: p.op,
            matched: p.matched,
            input_cells: p.input_cells,
            output_cells: p.output_cells,
            micros,
            cow_copies: tabular_core::stats::cow_copies().saturating_sub(p.cow_base),
            decision,
            fusion: p.fusion,
            shard: None,
            iteration: p.iteration,
        });
    }

    /// Record a completed shard-pool job as a leaf under the open
    /// statement span. `wall_micros` is the job's own wall time in
    /// microseconds, measured on the worker that ran it.
    pub(crate) fn shard_span(&mut self, shard: usize, tables: usize, wall_micros: u128) {
        if !self.spans_enabled() {
            return;
        }
        let parent = self.stack.last().map(|p| p.id);
        let id = self.alloc_id();
        self.trace.push(Span {
            id,
            parent,
            kind: SpanKind::Shard,
            op: "shard",
            matched: tables,
            input_cells: 0,
            output_cells: 0,
            micros: wall_micros,
            cow_copies: 0,
            decision: DeltaDecision::Executed,
            fusion: None,
            shard: Some(shard),
            iteration: None,
        });
    }

    /// Record one partition of a partitioned join as a leaf under the
    /// open statement span: `rows` output rows written, `wall_micros`
    /// the partition's count + scatter jobs' wall time in microseconds.
    pub(crate) fn partition_span(&mut self, shard: usize, rows: usize, wall_micros: u128) {
        if !self.spans_enabled() {
            return;
        }
        let parent = self.stack.last().map(|p| p.id);
        let id = self.alloc_id();
        self.trace.push(Span {
            id,
            parent,
            kind: SpanKind::Partition,
            op: "partition",
            matched: rows,
            input_cells: 0,
            output_cells: 0,
            micros: wall_micros,
            cow_copies: 0,
            decision: DeltaDecision::Executed,
            fusion: None,
            shard: Some(shard),
            iteration: None,
        });
    }

    /// Record a delta-skipped statement as a zero-time leaf span carrying
    /// the memoized shape of what naive re-execution would reproduce.
    pub(crate) fn skip_span(&mut self, op: &'static str, tables: usize, output_cells: usize) {
        if !self.spans_enabled() {
            return;
        }
        let parent = self.stack.last().map(|p| p.id);
        let id = self.alloc_id();
        self.trace.push(Span {
            id,
            parent,
            kind: SpanKind::Assign,
            op,
            matched: tables,
            input_cells: 0,
            output_cells,
            micros: 0,
            cow_copies: 0,
            decision: DeltaDecision::DeltaSkipped,
            fusion: None,
            shard: None,
            iteration: None,
        });
    }

    /// Drain every still-open span into the trace as `aborted`,
    /// innermost first — so the first aborted span in the trace is the
    /// exact unit of work a budget trip interrupted, with its enclosing
    /// statement and iteration spans following. Aborted spans carry the
    /// annotations noted before the trip and no wall time (their timing
    /// never completed; recording a partial reading would break the
    /// span/stats reconciliation invariant).
    pub(crate) fn abort_open(&mut self) {
        if !self.spans_enabled() {
            return;
        }
        while let Some(p) = self.stack.pop() {
            self.trace.push(Span {
                id: p.id,
                parent: p.parent,
                kind: p.kind,
                op: p.op,
                matched: p.matched,
                input_cells: p.input_cells,
                output_cells: p.output_cells,
                micros: 0,
                cow_copies: tabular_core::stats::cow_copies().saturating_sub(p.cow_base),
                decision: DeltaDecision::Aborted,
                fusion: p.fusion,
                shard: None,
                iteration: p.iteration,
            });
        }
    }

    /// Decompose into the public stats and the collected trace.
    pub(crate) fn into_parts(self) -> (EvalStats, Trace) {
        (self.stats, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_no_spans_and_no_timers() {
        let mut m = Metrics::new(TraceLevel::Off);
        assert!(m.timer().is_none());
        m.begin(SpanKind::Assign, "COPY", None);
        m.note_matched(1, 4);
        m.end(5, DeltaDecision::Executed);
        m.record_op("COPY", None);
        let (stats, trace) = m.into_parts();
        assert!(trace.is_empty());
        assert_eq!(stats.op_counts.get("COPY"), Some(&1));
        assert!(stats.op_micros.is_empty());
    }

    #[test]
    fn counters_time_without_spans() {
        let mut m = Metrics::new(TraceLevel::Counters);
        assert!(m.timer().is_some());
        m.record_op("COPY", Some(3));
        let (stats, trace) = m.into_parts();
        assert!(trace.is_empty());
        assert_eq!(stats.op_micros.get("COPY"), Some(&3));
    }

    #[test]
    fn abort_open_drains_innermost_first() {
        let mut m = Metrics::new(TraceLevel::Spans);
        m.begin(SpanKind::WhileIter, "while", Some(3));
        m.begin(SpanKind::Assign, "PRODUCT", None);
        m.note_matched(1, 10);
        m.abort_open();
        let (_, trace) = m.into_parts();
        let spans: Vec<_> = trace.spans().collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.decision == DeltaDecision::Aborted));
        assert_eq!(spans[0].op, "PRODUCT", "innermost drained first");
        assert_eq!(spans[0].matched, 1);
        assert_eq!(spans[1].iteration, Some(3));
    }

    #[test]
    fn spans_nest_via_the_stack() {
        let mut m = Metrics::new(TraceLevel::Spans);
        m.begin(SpanKind::WhileIter, "while", Some(1));
        m.begin(SpanKind::Assign, "PRODUCT", None);
        m.note_matched(2, 10);
        m.note_output(6);
        m.shard_span(0, 1, 2);
        m.partition_span(1, 5, 3);
        m.end(7, DeltaDecision::Executed);
        m.skip_span("SELECT", 1, 4);
        m.end(20, DeltaDecision::Executed);
        let (_, trace) = m.into_parts();
        let spans: Vec<_> = trace.spans().collect();
        assert_eq!(spans.len(), 5);
        let shard = spans.iter().find(|s| s.kind == SpanKind::Shard).unwrap();
        let product = spans.iter().find(|s| s.op == "PRODUCT").unwrap();
        let skipped = spans.iter().find(|s| s.op == "SELECT").unwrap();
        let iter = spans
            .iter()
            .find(|s| s.kind == SpanKind::WhileIter)
            .unwrap();
        // `Span::micros` is wall time in MICROseconds on every span kind:
        // the value handed to `shard_span`/`partition_span` lands
        // unscaled in the span's µs field (the jobs store
        // `elapsed().as_micros()`, not nanoseconds — regression for a
        // comment that claimed "wall ns").
        assert_eq!(shard.micros, 2);
        let partition = spans
            .iter()
            .find(|s| s.kind == SpanKind::Partition)
            .unwrap();
        assert_eq!(partition.micros, 3);
        assert_eq!(partition.parent, Some(product.id));
        assert_eq!(partition.matched, 5, "partition spans carry row counts");
        assert_eq!(partition.shard, Some(1));
        assert_eq!(shard.parent, Some(product.id));
        assert_eq!(product.parent, Some(iter.id));
        assert_eq!(skipped.parent, Some(iter.id));
        assert_eq!(skipped.decision, DeltaDecision::DeltaSkipped);
        assert_eq!(product.matched, 2);
        assert_eq!(product.output_cells, 6);
        assert_eq!(iter.iteration, Some(1));
    }
}
