//! Structured evaluation spans (DESIGN.md, "Tracing and metrics").
//!
//! A [`Span`] records one unit of interpreter work — an assignment
//! execution, a `while` iteration, or a shard-pool job — with enough
//! structure to answer "where did the time go and why": the operation
//! keyword, how many argument combinations matched, the cells read and
//! produced, the wall time, and the delta-strategy decision
//! (`executed | delta-skipped | fallback-naive | aborted`). Spans form a tree via
//! parent ids (iterations parent the statements of their body pass,
//! statements parent their shard jobs) and collect into a [`Trace`] — a
//! bounded ring buffer, so tracing a diverging loop cannot exhaust
//! memory: once [`Trace::CAPACITY`] spans are held, the oldest are
//! dropped and counted in [`Trace::dropped`].
//!
//! Tracing is gated by [`TraceLevel`] on `EvalLimits::trace`:
//!
//! * [`TraceLevel::Off`] — no spans *and* no per-op timing; the
//!   interpreter takes no timestamps on the statement path.
//! * [`TraceLevel::Counters`] — the historical `EvalStats` behavior:
//!   per-op counts and wall time, no spans. This is the default.
//! * [`TraceLevel::Spans`] — counters plus the span ring buffer.
//!
//! A span's `micros` is the *same measurement* that feeds
//! `EvalStats::op_micros`, so per-op totals over a complete trace
//! reconcile exactly with the stats (tested; see
//! [`Trace::per_op_micros`]).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write;

/// How much observability the interpreter records (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No spans, no per-op timing: the statement path takes no
    /// timestamps at all.
    Off,
    /// Per-operation counts and wall time in `EvalStats` (the historical
    /// behavior), no spans.
    #[default]
    Counters,
    /// Counters plus structured spans in a bounded ring buffer.
    Spans,
}

/// What kind of work a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One assignment statement execution (or delta skip).
    Assign,
    /// One `while` loop iteration (its body statements are children).
    WhileIter,
    /// One shard-pool job of a parallel statement (child of the
    /// statement's span).
    Shard,
    /// One partition of a partition-parallel join (child of the
    /// statement's span); `matched` carries the partition's output rows
    /// and `shard` its partition index, recording the fan-out of a
    /// single large join across the pool.
    Partition,
    /// One planner rewrite decision, prepended to the trace by the
    /// `run_planned*` entry points so EXPLAIN output shows what the
    /// cost-based planner did before evaluation began. `op` carries the
    /// rule name; `input_cells`/`output_cells` carry the cost model's
    /// before/after cell estimates (0 when the rule had no statistics);
    /// wall time is 0 (planning is not evaluation work, so these spans
    /// never perturb the span/stats reconciliation, which only sums
    /// [`SpanKind::Assign`] spans).
    Plan,
}

impl SpanKind {
    fn as_str(self) -> &'static str {
        match self {
            SpanKind::Assign => "assign",
            SpanKind::WhileIter => "while-iter",
            SpanKind::Shard => "shard",
            SpanKind::Partition => "partition",
            SpanKind::Plan => "plan",
        }
    }
}

/// The delta-strategy decision a span records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaDecision {
    /// The work ran (naively or via the append-incremental path).
    Executed,
    /// The delta strategy proved re-execution a no-op and skipped it;
    /// `matched`/`output_cells` carry the memoized shape of what naive
    /// re-execution would have reproduced.
    DeltaSkipped,
    /// A `while` loop that requested the delta strategy but fell back to
    /// naive re-evaluation (body not provably delta-safe).
    FallbackNaive,
    /// The span was still open when a budget trip aborted the run: this
    /// is the work the governor interrupted (see `crate::governor`).
    /// Aborted spans record no wall time; their annotations are whatever
    /// the work had noted before the trip.
    Aborted,
}

impl DeltaDecision {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            DeltaDecision::Executed => "executed",
            DeltaDecision::DeltaSkipped => "delta-skipped",
            DeltaDecision::FallbackNaive => "fallback-naive",
            DeltaDecision::Aborted => "aborted",
        }
    }
}

/// One traced unit of interpreter work.
#[derive(Clone, Debug)]
pub struct Span {
    /// Sequence id, unique within the run (1-based, in completion order
    /// of allocation).
    pub id: u64,
    /// Id of the enclosing span, if any (iteration → statement → shard).
    pub parent: Option<u64>,
    /// What kind of work this span covers.
    pub kind: SpanKind,
    /// Operation keyword for assignments; `"while"` for iterations,
    /// `"shard"` for pool jobs, `"partition"` for partitioned-join
    /// partitions.
    pub op: &'static str,
    /// Matched argument combinations (assignments), tables handled
    /// (shard jobs), output rows written (partitions), or 0
    /// (iterations).
    pub matched: usize,
    /// Total cells of the matched input tables (only populated at
    /// [`TraceLevel::Spans`]; the cell convention matches the
    /// `max_cells` limit: `(height + 1) · (width + 1)`).
    pub input_cells: usize,
    /// Total cells of the produced tables.
    pub output_cells: usize,
    /// Wall time, µs — the same measurement that feeds
    /// `EvalStats::op_micros`.
    pub micros: u128,
    /// Table cell-buffer copies that materialized under copy-on-write
    /// while this span was open (inclusive of child spans; measured by
    /// differencing the process-wide [`tabular_core::stats`] counter, so
    /// concurrent evaluations can bleed in). 0 for skip and shard spans.
    pub cow_copies: u64,
    /// Delta-strategy decision.
    pub decision: DeltaDecision,
    /// Join-fusion decision for `FUSEDJOIN` assignment spans:
    /// `"fused-join"` when the hash-join kernel ran, `"fallback-unfused"`
    /// when the applicability check failed on some argument pair and the
    /// statement ran the product-then-select pipeline (mixed outcomes
    /// across pairs record the fallback, the conservative reading).
    /// `None` for every other span.
    pub fusion: Option<&'static str>,
    /// Shard id for [`SpanKind::Shard`] spans; partition index for
    /// [`SpanKind::Partition`] spans.
    pub shard: Option<usize>,
    /// 1-based iteration number for [`SpanKind::WhileIter`] spans.
    pub iteration: Option<usize>,
}

/// A bounded ring buffer of completed [`Span`]s.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: VecDeque<Span>,
    dropped: usize,
}

impl Trace {
    /// Maximum spans held; the oldest are dropped beyond this.
    pub const CAPACITY: usize = 16_384;

    /// Empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append a completed span, evicting the oldest at capacity.
    pub(crate) fn push(&mut self, span: Span) {
        if self.spans.len() == Self::CAPACITY {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Insert a span at the *front* of the buffer — used to place planner
    /// decision spans before the evaluation spans they shaped. At
    /// capacity the span is counted dropped instead (evicting the newest
    /// evaluation span to make room would be worse).
    pub(crate) fn prepend(&mut self, span: Span) {
        if self.spans.len() == Self::CAPACITY {
            self.dropped += 1;
            return;
        }
        self.spans.push_front(span);
    }

    /// The held spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded (e.g. `TraceLevel::Off`).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted by the ring bound (0 for traces that fit).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Wall time per operation keyword summed over *assignment* spans —
    /// the reconciliation view against `EvalStats::op_micros`. On a
    /// complete trace (`dropped() == 0`) the two agree exactly, because
    /// both sides are fed by the same per-statement measurement;
    /// delta-skipped statements contribute their recorded 0 µs.
    pub fn per_op_micros(&self) -> BTreeMap<&'static str, u128> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            if s.kind == SpanKind::Assign {
                *out.entry(s.op).or_default() += s.micros;
            }
        }
        out
    }

    /// Executions per decision, over assignment spans.
    pub fn decision_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            if s.kind == SpanKind::Assign {
                *out.entry(s.decision.as_str()).or_default() += 1;
            }
        }
        out
    }

    /// Export as a JSON object: `{"dropped": N, "spans": [...]}` with one
    /// flat object per span (tree structure via `parent` ids). The
    /// encoding is hand-rolled — span fields are numbers and fixed
    /// keywords, so no generic serializer is needed.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 128);
        write!(out, "{{\"dropped\":{},\"spans\":[", self.dropped).unwrap();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"id\":{},\"parent\":{},\"kind\":\"{}\",\"op\":\"{}\",\
                 \"matched\":{},\"input_cells\":{},\"output_cells\":{},\
                 \"micros\":{},\"cow_copies\":{},\"decision\":\"{}\",\
                 \"fusion\":{},\"shard\":{},\"iteration\":{}}}",
                s.id,
                opt_json(s.parent),
                s.kind.as_str(),
                escape_json(s.op),
                s.matched,
                s.input_cells,
                s.output_cells,
                s.micros,
                s.cow_copies,
                s.decision.as_str(),
                opt_json_str(s.fusion),
                opt_json(s.shard),
                opt_json(s.iteration),
            )
            .unwrap();
        }
        out.push_str("]}");
        out
    }
}

fn opt_json<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_owned(),
    }
}

fn opt_json_str(v: Option<&str>) -> String {
    match v {
        Some(x) => format!("\"{}\"", escape_json(x)),
        None => "null".to_owned(),
    }
}

fn escape_json(s: &str) -> String {
    // Operation keywords are ASCII identifiers; escape defensively anyway.
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, op: &'static str, micros: u128) -> Span {
        Span {
            id,
            parent: None,
            kind: SpanKind::Assign,
            op,
            matched: 1,
            input_cells: 4,
            output_cells: 4,
            micros,
            cow_copies: 0,
            decision: DeltaDecision::Executed,
            fusion: None,
            shard: None,
            iteration: None,
        }
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let mut t = Trace::new();
        for i in 0..(Trace::CAPACITY + 10) {
            t.push(span(i as u64, "COPY", 1));
        }
        assert_eq!(t.len(), Trace::CAPACITY);
        assert_eq!(t.dropped(), 10);
        // Oldest evicted: the first held span is id 10.
        assert_eq!(t.spans().next().unwrap().id, 10);
    }

    #[test]
    fn per_op_totals_sum_assignment_spans_only() {
        let mut t = Trace::new();
        t.push(span(1, "PRODUCT", 5));
        t.push(span(2, "PRODUCT", 7));
        let mut w = span(3, "while", 100);
        w.kind = SpanKind::WhileIter;
        t.push(w);
        assert_eq!(t.per_op_micros().get("PRODUCT"), Some(&12));
        assert_eq!(t.per_op_micros().get("while"), None);
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut t = Trace::new();
        let mut s = span(1, "SELECT", 9);
        s.shard = Some(2);
        s.iteration = None;
        t.push(s);
        let mut f = span(2, "FUSEDJOIN", 3);
        f.fusion = Some("fused-join");
        t.push(f);
        let json = t.to_json();
        assert!(json.starts_with("{\"dropped\":0,\"spans\":["));
        assert!(json.contains("\"op\":\"SELECT\""));
        assert!(json.contains("\"fusion\":null"));
        assert!(json.contains("\"fusion\":\"fused-join\""));
        assert!(json.contains("\"shard\":2"));
        assert!(json.contains("\"iteration\":null"));
        assert!(json.contains("\"decision\":\"executed\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Spans);
        assert_eq!(TraceLevel::default(), TraceLevel::Counters);
    }
}
