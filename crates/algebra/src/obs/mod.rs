//! Observability for the tabular algebra interpreter: structured
//! evaluation tracing and the metrics registry.
//!
//! The paper's while-programs make evaluation cost opaque — one
//! statement fans out over every name-matching table, and the delta
//! `while` strategy skips work invisibly. This module makes both
//! observable:
//!
//! * [`trace`] — [`TraceLevel`], [`Span`], and the bounded [`Trace`]
//!   ring buffer with JSON export ([`Trace::to_json`]); the human
//!   `EXPLAIN ANALYZE`-style rendering lives in
//!   [`crate::pretty::render_trace`].
//! * [`metrics`] — the crate-internal registry threaded through the
//!   evaluator, replacing the ad-hoc counter updates previously
//!   scattered across `eval.rs` and `delta.rs`.
//!
//! Entry point: `EvalLimits { trace: TraceLevel::Spans, .. }` with
//! [`crate::eval::run_traced`].

pub mod metrics;
pub mod trace;

pub use trace::{DeltaDecision, Span, SpanKind, Trace, TraceLevel};
