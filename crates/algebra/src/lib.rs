//! # tabular-algebra
//!
//! The **tabular algebra** (TA) of Gyssens, Lakshmanan & Subramanian,
//! *Tables as a Paradigm for Querying and Restructuring* (PODS 1996), §3:
//! a language for querying and restructuring tabular databases that is
//! complete for the generic, constructive database transformations
//! (Theorem 4.4).
//!
//! Three layers:
//!
//! * [`ops`] — every operation of §3 as a pure function on tables:
//!   traditional (union, difference, ×, rename, project, select),
//!   restructuring (group, merge, split, collapse), transposition
//!   (transpose, switch), redundancy removal (clean-up, purge), and
//!   tagging (tuple-new, set-new);
//! * [`program`] + [`param`] — assignment statements
//!   `T ← op(params)(args)` with the paper's parameter language
//!   (wildcards, negative lists, entry-addressing pairs) and `while`
//!   loops;
//! * [`eval`] — the interpreter, and [`parser`] — a textual concrete
//!   syntax with a [`pretty`] printer.
//!
//! ## Example: Figure 4 of the paper
//!
//! ```
//! use tabular_algebra::{eval, param::Param, program::{OpKind, Program}, EvalLimits};
//! use tabular_core::fixtures;
//!
//! let program = Program::new().assign(
//!     Param::name("Sales"),
//!     OpKind::Group { by: Param::names(&["Region"]), on: Param::names(&["Sold"]) },
//!     vec![Param::name("Sales")],
//! );
//! let out = eval::run(&program, &fixtures::sales_info1(), &EvalLimits::default()).unwrap();
//! assert_eq!(out.table_str("Sales").unwrap(), &fixtures::figure4_grouped());
//! ```

#![warn(missing_docs)]

mod delta;
pub mod derived;
pub mod error;
pub mod eval;
pub mod federation;
pub mod governor;
pub mod obs;
pub mod ops;
pub mod optimize;
pub mod param;
pub mod parser;
pub mod plan;
pub mod pool;
pub mod pretty;
pub mod program;

pub use error::AlgebraError;
pub use eval::{
    run, run_governed, run_governed_traced, run_outputs, run_planned, run_planned_governed,
    run_planned_governed_traced, run_planned_traced, run_traced, run_with_stats, EvalLimits,
    EvalStats, WhileStrategy,
};
pub use federation::Federation;
pub use governor::{Budget, CancelToken, PartialRun};
pub use obs::{DeltaDecision, Span, SpanKind, Trace, TraceLevel};
pub use optimize::optimize;
pub use param::Param;
pub use plan::{plan, plan_with_rules, Catalog, PlanReport, Rule, ALL_RULES};
pub use program::{Assignment, OpKind, Program, RestructureChain, Statement};
