//! Resource governance for program evaluation (DESIGN.md, "Resource
//! governance").
//!
//! `while`-programs are Turing-complete over tables (Theorem 4.1), so a
//! server evaluating untrusted programs needs more than the static count
//! caps of [`EvalLimits`]: it needs to bound *wall time* and *total
//! allocation*, and to *cancel* a run from outside, without crashing the
//! process or losing the diagnostic state the tracing layer collected.
//! A [`Budget`] carries exactly those three extensions on top of the
//! limits:
//!
//! * a **deadline** — a wall-clock allowance for the whole run;
//! * a **cell budget** — a cap on the cumulative cells produced across
//!   *all* statements of the run (the per-statement accounting already
//!   feeding `EvalStats::tables_produced`), complementing the per-table
//!   `max_cells` cap;
//! * a **[`CancelToken`]** — a shared atomic flag any thread may flip to
//!   stop the evaluation cooperatively.
//!
//! The interpreter polls the governor at every statement boundary, every
//! `while` iteration (both the naive and the delta strategy), and inside
//! every shard-pool job between tables, so a sharded statement stops
//! mid-fan-out. Polling sits at statement granularity because statements
//! are the unit of observable effect (replace semantics): aborting
//! between statements leaves the partial database in a state some prefix
//! of the program explains, which is what the partial stats and trace
//! attached to [`crate::AlgebraError::BudgetExceeded`] describe.
//!
//! On any trip, evaluation degrades gracefully instead of discarding its
//! observability state: the error carries a [`PartialRun`] with the
//! partial `EvalStats` and the partial `Trace` (open spans drained as
//! `aborted`, innermost first, so the tripped span is marked).

use crate::eval::{EvalLimits, EvalStats};
use crate::obs::trace::Trace;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource name reported when the [`CancelToken`] was flipped.
pub const RESOURCE_CANCELLED: &str = "cancelled";
/// Resource name reported when the wall-clock deadline passed; `spent`
/// and `limit` are in milliseconds.
pub const RESOURCE_DEADLINE: &str = "wall-clock deadline (ms)";
/// Resource name reported when the cumulative cell budget ran out;
/// `spent` and `limit` are cells under the `max_cells` convention
/// (`(height + 1) · (width + 1)` per produced table).
pub const RESOURCE_RUN_CELLS: &str = "run cell budget";

/// A shared cooperative cancellation flag: clone it, hand one handle to
/// the evaluation (via [`Budget::cancel`]) and keep the other; flipping
/// it from any thread stops the run at its next governor poll — at
/// latest one statement (or one shard-job table) later.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A resource budget for one evaluation: [`EvalLimits`] plus a deadline,
/// a cumulative cell budget, and a cancellation token. The plain `run*`
/// entry points are equivalent to a budget with no deadline, an
/// unlimited cell budget, and a token nobody cancels — governed and
/// ungoverned evaluation are the same code path.
#[derive(Clone, Debug)]
pub struct Budget {
    /// The static per-table / per-loop caps.
    pub limits: EvalLimits,
    /// Wall-clock allowance for the whole run (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Cumulative cells the run may produce across all statements
    /// (`usize::MAX` = unlimited). Uses the `max_cells` convention:
    /// `(height + 1) · (width + 1)` per produced table.
    pub max_run_cells: usize,
    /// Cooperative cancellation flag; keep a clone to cancel the run.
    pub cancel: CancelToken,
}

impl Default for Budget {
    /// Default limits, no deadline, unlimited cells, a fresh token.
    fn default() -> Budget {
        Budget {
            limits: EvalLimits::default(),
            deadline: None,
            max_run_cells: usize::MAX,
            cancel: CancelToken::new(),
        }
    }
}

impl Budget {
    /// A budget enforcing only the given static limits — no deadline, no
    /// cell budget, a token nobody holds.
    pub fn from_limits(limits: &EvalLimits) -> Budget {
        Budget {
            limits: *limits,
            ..Budget::default()
        }
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Set the cumulative cell budget.
    pub fn with_cell_budget(mut self, cells: usize) -> Budget {
        self.max_run_cells = cells;
        self
    }

    /// Use the given cancellation token (to share one token across
    /// several runs, or to keep a handle for cancelling this one).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Budget {
        self.cancel = cancel.clone();
        self
    }

    /// Divide this budget across `sites` evaluations run one after
    /// another (the federation per-site split): the cell budget and the
    /// deadline are divided evenly, while the cancellation token is
    /// *shared* — cancelling the parent budget stops every site, and a
    /// site that trips can cancel its siblings through the same token.
    ///
    /// The per-site cell budget is the *floor* of the division, so the
    /// site budgets never sum past the parent's: a remainder of
    /// `max_run_cells % sites` cells stays unadmitted (conservative),
    /// and with more sites than budgeted cells every site gets a
    /// zero-cell budget and trips on its first charge rather than the
    /// sites collectively admitting `sites` cells against a smaller
    /// parent budget.
    pub fn split(&self, sites: usize) -> Budget {
        let n = sites.max(1);
        Budget {
            limits: self.limits,
            deadline: self.deadline.map(|d| d / n as u32),
            max_run_cells: if self.max_run_cells == usize::MAX {
                usize::MAX
            } else {
                self.max_run_cells / n
            },
            cancel: self.cancel.clone(),
        }
    }
}

/// The diagnostic state a tripped run hands back on
/// [`crate::AlgebraError::BudgetExceeded`]: everything the run had
/// counted and traced up to the abort. Compares equal to any other
/// `PartialRun` — the payload is diagnostic and does not affect error
/// identity, which keeps `AlgebraError`'s `PartialEq` meaningful (the
/// differential oracle compares errors across evaluation strategies
/// whose partial timings necessarily differ).
#[derive(Clone, Debug, Default)]
pub struct PartialRun {
    /// Statistics accumulated up to the trip (per-op counts and timings,
    /// iterations, produced shapes — see [`EvalStats`]).
    pub stats: EvalStats,
    /// Spans recorded up to the trip, plus the spans still open at the
    /// trip drained as `aborted` (innermost first: the first aborted
    /// span is the unit of work the trip interrupted). Empty below
    /// [`crate::TraceLevel::Spans`].
    pub trace: Trace,
}

impl PartialEq for PartialRun {
    fn eq(&self, _: &PartialRun) -> bool {
        true
    }
}

impl Eq for PartialRun {}

/// Per-run governor state: the budget resolved against the run's start
/// instant, plus the cell accountant. Shared by reference with shard
/// jobs, hence the atomic counter and `Sync`.
pub(crate) struct Governor {
    start: Instant,
    deadline: Option<Instant>,
    deadline_ms: usize,
    cancel: CancelToken,
    max_run_cells: usize,
    cells_spent: AtomicUsize,
}

impl Governor {
    pub(crate) fn new(budget: &Budget) -> Governor {
        let start = Instant::now();
        Governor {
            start,
            deadline: budget.deadline.map(|d| start + d),
            deadline_ms: budget
                .deadline
                .map(|d| d.as_millis().min(usize::MAX as u128) as usize)
                .unwrap_or(0),
            cancel: budget.cancel.clone(),
            max_run_cells: budget.max_run_cells,
            cells_spent: AtomicUsize::new(0),
        }
    }

    /// Check the cancellation flag and the deadline. Two relaxed-ish
    /// atomic/branch reads when neither is set — cheap enough for every
    /// statement boundary and every shard-job table.
    pub(crate) fn poll(&self) -> crate::error::Result<()> {
        if self.cancel.is_cancelled() {
            return Err(crate::error::AlgebraError::budget_trip(
                RESOURCE_CANCELLED,
                0,
                0,
            ));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(crate::error::AlgebraError::budget_trip(
                    RESOURCE_DEADLINE,
                    self.start.elapsed().as_millis().min(usize::MAX as u128) as usize,
                    self.deadline_ms,
                ));
            }
        }
        Ok(())
    }

    /// Charge `cells` produced cells against the run budget. Called on
    /// the evaluating thread once per statement (with the statement's
    /// total production), so the cumulative total — and therefore the
    /// trip point — is deterministic for a given program and budget,
    /// across strategies and shard configurations.
    pub(crate) fn charge_cells(&self, cells: usize) -> crate::error::Result<()> {
        let prev = self.cells_spent.fetch_add(cells, Ordering::Relaxed);
        let spent = prev.saturating_add(cells);
        if spent > self.max_run_cells {
            return Err(crate::error::AlgebraError::budget_trip(
                RESOURCE_RUN_CELLS,
                spent,
                self.max_run_cells,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn default_budget_governs_nothing() {
        let gov = Governor::new(&Budget::default());
        assert!(gov.poll().is_ok());
        assert!(gov.charge_cells(usize::MAX - 1).is_ok());
    }

    #[test]
    fn cell_budget_trips_on_the_crossing_charge() {
        let gov = Governor::new(&Budget::default().with_cell_budget(100));
        assert!(gov.charge_cells(60).is_ok());
        assert!(gov.charge_cells(40).is_ok(), "spending exactly 100 is fine");
        let err = gov.charge_cells(1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(RESOURCE_RUN_CELLS), "{msg}");
        assert!(msg.contains("101") && msg.contains("100"), "{msg}");
    }

    #[test]
    fn expired_deadline_trips_the_poll() {
        let gov = Governor::new(&Budget::default().with_deadline(Duration::from_millis(0)));
        let err = gov.poll().unwrap_err();
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn cancellation_wins_over_other_resources() {
        let token = CancelToken::new();
        token.cancel();
        let gov = Governor::new(
            &Budget::default()
                .with_deadline(Duration::from_millis(0))
                .with_cancel(token),
        );
        let err = gov.poll().unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn split_divides_cells_and_deadline_but_shares_the_token() {
        let parent = Budget::default()
            .with_cell_budget(1000)
            .with_deadline(Duration::from_millis(300));
        let site = parent.split(3);
        assert_eq!(site.max_run_cells, 333);
        assert_eq!(site.deadline, Some(Duration::from_millis(100)));
        parent.cancel.cancel();
        assert!(site.cancel.is_cancelled(), "split shares the parent token");
        let unlimited = Budget::default().split(8);
        assert_eq!(unlimited.max_run_cells, usize::MAX);
        assert_eq!(unlimited.deadline, None);
    }

    #[test]
    fn split_site_budgets_never_sum_past_the_parent() {
        // Regression: `(cells / n).max(1)` admitted one cell per site, so
        // 8 sites against a 5-cell parent could admit 8 cells in total.
        for (cells, sites) in [(5, 8), (1, 2), (7, 3), (1000, 3), (0, 4)] {
            let parent = Budget::default().with_cell_budget(cells);
            let site = parent.split(sites);
            assert!(
                site.max_run_cells.saturating_mul(sites) <= cells,
                "cells={cells} sites={sites} admits {} per site",
                site.max_run_cells
            );
        }
        // With more sites than cells, a site's budget is zero and its
        // governor trips on the very first charge.
        let site = Budget::default().with_cell_budget(5).split(8);
        assert_eq!(site.max_run_cells, 0);
        let gov = Governor::new(&site);
        let err = gov.charge_cells(1).unwrap_err();
        assert!(err.to_string().contains("cell budget"), "{err}");
    }

    #[test]
    fn partial_run_does_not_affect_error_identity() {
        let a = PartialRun::default();
        let mut b = PartialRun::default();
        b.stats.while_iterations = 42;
        assert_eq!(a, b);
    }
}
