//! A cost-based planner for tabular algebra programs — the "query (and
//! program) optimization" future work the paper names in §5, generalizing
//! the ad-hoc passes that used to live in [`crate::optimize`].
//!
//! [`plan`] lowers a [`Program`] into an IR of per-statement op nodes
//! annotated with table statistics — row/column counts read from the
//! store's tables ([`Catalog::from_database`]) and fingerprint-cached
//! cardinality estimates for intermediates ([`Shape`]) — applies a
//! catalog of rule-based rewrites ([`Rule`]), and lowers the rewritten
//! segments back to a `Program`:
//!
//! * **copy forwarding** — `s ← op(..); T ← COPY(s)` retargets the
//!   producer (the legacy `forward_copies` pass);
//! * **selection pushdown** — `s ← PRODUCT(x, y); t ← SELECT[A=B](s)`
//!   filters one operand *before* the product when the catalog proves
//!   both `A`- and `B`-named columns lie entirely on that operand, and
//!   `SELECT` over a scratch `UNION` distributes into both branches;
//! * **join reordering** — a ≥3-way chain of single-use scratch
//!   `PRODUCT`s (with an optional closing `SELECT`) is re-associated
//!   into the cheapest left-deep order by estimated output cells;
//! * **join fusion** — `PRODUCT`+`SELECT` becomes [`OpKind::FusedJoin`];
//!   with statistics the planner chooses fused vs. materialized per
//!   site (fused only when the hash-join kernel's single-occurrence
//!   column condition provably holds — otherwise the kernel would fall
//!   back to the staged pipeline anyway), and without statistics it
//!   fuses optimistically like the legacy pass;
//! * **CLEANUP/PURGE sinking** — a redundancy-removal consumer
//!   separated from its single-use producer by independent rigid
//!   assignments sinks next to it, making the chain contiguous;
//! * **restructuring fusion** — contiguous `GROUP → CLEANUP (→ PURGE)`
//!   chains become [`OpKind::FusedRestructure`];
//! * **dead-scratch elimination** — unread reserved-name assignments are
//!   dropped to a fixpoint, *except* the program's final top-level
//!   assignment, whose target is the program's product even when it
//!   lives in the reserved namespace (OLAP pivots write through reserved
//!   output names).
//!
//! # Soundness
//!
//! Every rule preserves program semantics up to the §4.1 equivalence the
//! differential oracles check (canonical forms after fresh-tag
//! renumbering); most are byte-identical on the visible store:
//!
//! * Pushdown through `PRODUCT` is byte-identical: when no `A`- or
//!   `B`-named column lies on the other operand, a product row's entry
//!   sets under `A`/`B` equal the contributing operand row's entry sets,
//!   and filtering first preserves the left-major row order and the
//!   row-attribute joins.
//! * Pushdown through `UNION` is byte-identical because weak equality
//!   (§2) strips ⊥ from both entry sets and union-padding contributes
//!   only ⊥ entries.
//! * Reordering relies on `PRODUCT` being associative/commutative up to
//!   row/column permutation — which fails when two operands carry
//!   conflicting non-⊥ row attributes (the combined row attribute joins
//!   left-biased). The rule therefore requires catalog proof that **at
//!   most one** leaf has any non-⊥ row attribute, and that every leaf's
//!   statistics are exact (a single store table, unshadowed at the
//!   chain site).
//! * Fusion rewrites are definitionally sound: the fused operators *are*
//!   their staged pipelines, with the evaluator deciding per argument
//!   table whether a kernel applies.
//! * Sinking commutes adjacent independent ground assignments whose
//!   parameters are rigid; such statements are pure functions of
//!   disjoint names and can only fail on resource limits, so at most
//!   the *trip point* of a limit moves (the tolerance the planner
//!   oracle grants, since rewrites change intermediate sizes in both
//!   directions anyway).
//!
//! Rules only ever fire on fully ground programs (like the legacy
//! passes, [`plan_with_rules`] bails out otherwise), emit ground
//! statements, and never introduce `TUPLENEW`/`SETNEW` or nested loops —
//! so a delta-safe `while` body stays delta-safe
//! ([`crate::optimize::body_is_delta_safe`]) and the delta engine's
//! per-statement memos key the *planned* body consistently.

use crate::param::Param;
use crate::program::{Assignment, OpKind, Program, RestructureChain, Statement};
use std::cell::RefCell;
use std::collections::HashMap;
use tabular_core::{interner, Database, Symbol, SymbolSet};

/// True if the symbol lives in the reserved scratch namespace.
pub(crate) fn is_scratch(s: Symbol) -> bool {
    s.text().is_some_and(interner::is_reserved)
}

pub(crate) fn ground(p: &Param) -> Option<Symbol> {
    p.as_ground()
}

/// Collect every table name a statement list reads (arguments and `while`
/// conditions); `None` if any parameter is non-ground.
pub(crate) fn read_set(stmts: &[Statement], out: &mut SymbolSet) -> Option<()> {
    for stmt in stmts {
        match stmt {
            Statement::Assign(a) => {
                ground(&a.target)?;
                for arg in &a.args {
                    out.insert(ground(arg)?);
                }
            }
            Statement::While { cond, body } => {
                out.insert(ground(cond)?);
                read_set(body, out)?;
            }
        }
    }
    Some(())
}

/// Collect every ground name a statement list assigns to.
fn write_set(stmts: &[Statement], out: &mut SymbolSet) {
    for stmt in stmts {
        match stmt {
            Statement::Assign(a) => {
                if let Some(t) = ground(&a.target) {
                    out.insert(t);
                }
            }
            Statement::While { body, .. } => write_set(body, out),
        }
    }
}

/// Count reads of `of` within a statement list (arguments and `while`
/// conditions, nested bodies included).
fn count_reads(stmts: &[Statement], of: Symbol) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Statement::Assign(a) => a.args.iter().filter(|p| p.as_ground() == Some(of)).count(),
            Statement::While { cond, body } => {
                usize::from(cond.as_ground() == Some(of)) + count_reads(body, of)
            }
        })
        .sum()
}

/// The operation-specific (non-table) parameters of an op, for rigidity
/// checks.
fn op_params(op: &OpKind) -> Vec<&Param> {
    match op {
        OpKind::Rename { from, to } => vec![from, to],
        OpKind::Project { attrs } => vec![attrs],
        OpKind::Select { a, b } | OpKind::FusedJoin { a, b } => vec![a, b],
        OpKind::SelectConst { a, v } => vec![a, v],
        OpKind::Group { by, on } | OpKind::CleanUp { by, on } => vec![by, on],
        OpKind::Merge { on, by } | OpKind::Purge { on, by } => vec![on, by],
        OpKind::Split { on } => vec![on],
        OpKind::Collapse { by } => vec![by],
        OpKind::Switch { entry } => vec![entry],
        OpKind::TupleNew { attr } | OpKind::SetNew { attr } => vec![attr],
        OpKind::FusedRestructure(c) => {
            let mut v = vec![&c.group_by, &c.group_on, &c.cleanup_by, &c.cleanup_on];
            if let Some((on, by)) = &c.purge {
                v.push(on);
                v.push(by);
            }
            v
        }
        OpKind::Union
        | OpKind::Difference
        | OpKind::Intersect
        | OpKind::Product
        | OpKind::Transpose
        | OpKind::Copy
        | OpKind::ClassicalUnion => vec![],
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// A cardinality estimate for a (real or intermediate) table: data rows,
/// data columns, and whether the numbers are exact or modelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    /// Data rows (the table's height, attribute row excluded).
    pub rows: usize,
    /// Data columns (the attribute column excluded).
    pub cols: usize,
    /// True when read from a store table or derived by an exact rule
    /// (e.g. `PRODUCT` multiplies heights exactly).
    pub exact: bool,
}

impl Shape {
    /// The grid-cell count `(rows+1) × (cols+1)` — the cost unit the
    /// planner minimizes, matching what the governor charges per table.
    pub fn cells(&self) -> u128 {
        (self.rows as u128 + 1) * (self.cols as u128 + 1)
    }
}

/// Statistics for one table name, read from the store or derived for an
/// intermediate result.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Row/column counts.
    pub shape: Shape,
    /// The exact column-attribute list (with multiplicity, in order) —
    /// always exact when present; schemes are never estimated.
    pub col_attrs: Option<Vec<Symbol>>,
    /// True iff every row attribute is provably ⊥ (`false` means
    /// "unknown or has named rows" — the conservative reading).
    pub null_row_attrs: bool,
    /// Content fingerprint of the store table, or a derived key mixing
    /// the op and input fingerprints for intermediates — the cache key
    /// for cardinality estimates.
    pub fingerprint: u64,
}

/// FNV-1a over a sequence of words — derives intermediate fingerprints.
fn mix(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a string, for op keywords and symbols in cache keys.
fn key_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn key_sym(s: Symbol) -> u64 {
    s.text().map(key_str).unwrap_or(0x9e37_79b9_7f4a_7c15)
}

/// Estimated output rows of `SELECT[A=B]` over `rows` input rows.
fn est_select_rows(rows: usize) -> usize {
    (rows / 4).max(rows.min(1))
}

/// Estimated output rows of a fused join of `rl × rr` rows: the textbook
/// `|R|·|S| / max(V(A,R), V(B,S))` with distinct-counts approximated by
/// the row counts.
fn est_join_rows(rl: usize, rr: usize) -> usize {
    rl.saturating_mul(rr) / rl.max(rr).max(1)
}

/// Table statistics read once from a [`Database`]: per-name row/column
/// counts, schemes, and row-attribute nullity, plus a fingerprint-keyed
/// cache of cardinality estimates for intermediates.
pub struct Catalog {
    /// `Some(stats)` when exactly one store table bears the name (the
    /// only case where per-name statistics are meaningful under the
    /// evaluator's fan-out semantics); `None` when several do.
    base: HashMap<Symbol, Option<TableStats>>,
    /// Fingerprint-keyed estimates for intermediate results, so repeated
    /// sub-chains are estimated once.
    cache: RefCell<HashMap<u64, Shape>>,
}

impl Catalog {
    /// Read statistics for every named table in the database.
    pub fn from_database(db: &Database) -> Catalog {
        let mut base = HashMap::new();
        for name in db.names().iter() {
            let mut it = db.tables_named_iter(name);
            let stats = match (it.next(), it.next()) {
                (Some(t), None) => Some(TableStats {
                    shape: Shape {
                        rows: t.height(),
                        cols: t.width(),
                        exact: true,
                    },
                    col_attrs: Some(t.col_attrs().to_vec()),
                    null_row_attrs: (1..=t.height()).all(|i| t.get(i, 0).is_null()),
                    fingerprint: t.fingerprint(),
                }),
                _ => None,
            };
            base.insert(name, stats);
        }
        Catalog {
            base,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// A catalog with no statistics — every stats-gated rule stays off
    /// and the stats-free rules behave like the legacy passes.
    pub fn empty() -> Catalog {
        Catalog {
            base: HashMap::new(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Statistics for a base-table name, if exactly one table bears it.
    pub fn stats(&self, name: Symbol) -> Option<&TableStats> {
        self.base.get(&name).and_then(|o| o.as_ref())
    }

    /// Look up or compute the cached cardinality estimate under `key`.
    fn cached_estimate(&self, key: u64, compute: impl FnOnce() -> Shape) -> Shape {
        if let Some(s) = self.cache.borrow().get(&key) {
            return *s;
        }
        let s = compute();
        self.cache.borrow_mut().insert(key, s);
        s
    }
}

/// The statistics environment threaded through a planning walk: catalog
/// statistics overridden by what the program has assigned so far.
struct Env<'a> {
    catalog: &'a Catalog,
    known: HashMap<Symbol, Option<TableStats>>,
}

impl<'a> Env<'a> {
    fn new(catalog: &'a Catalog) -> Env<'a> {
        Env {
            catalog,
            known: HashMap::new(),
        }
    }

    /// Statistics for `name` at the current program point.
    fn stats(&self, name: Symbol) -> Option<&TableStats> {
        match self.known.get(&name) {
            Some(s) => s.as_ref(),
            None => self.catalog.stats(name),
        }
    }

    fn invalidate(&mut self, name: Symbol) {
        self.known.insert(name, None);
    }

    fn set(&mut self, name: Symbol, stats: TableStats) {
        self.known.insert(name, Some(stats));
    }

    /// Record a statement's effect: derive statistics for its target when
    /// the op admits a derivation, invalidate otherwise; a `while`
    /// invalidates everything its body writes (the loop may run any
    /// number of times).
    fn note(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Assign(a) => {
                let Some(target) = ground(&a.target) else {
                    return;
                };
                match derive_stats(self, a) {
                    Some(st) => self.set(target, st),
                    None => self.invalidate(target),
                }
            }
            Statement::While { body, .. } => {
                let mut w = SymbolSet::new();
                write_set(body, &mut w);
                for n in w.iter() {
                    self.invalidate(n);
                }
            }
        }
    }
}

/// Derive result statistics for an assignment, for the handful of ops the
/// cost model understands. Schemes (`col_attrs`) are only ever derived
/// exactly; row counts may be estimates (`Shape::exact` = false).
fn derive_stats(env: &Env<'_>, a: &Assignment) -> Option<TableStats> {
    let arg = |k: usize| -> Option<&TableStats> { env.stats(ground(a.args.get(k)?)?) };
    let op_tag = key_str(a.op.keyword());
    match &a.op {
        OpKind::Copy => {
            let x = arg(0)?;
            Some(TableStats {
                fingerprint: mix(&[op_tag, x.fingerprint]),
                ..x.clone()
            })
        }
        OpKind::Product | OpKind::FusedJoin { .. } => {
            let (x, y) = (arg(0)?, arg(1)?);
            let (ca, cb) = (x.col_attrs.clone()?, y.col_attrs.clone()?);
            let fingerprint = mix(&[op_tag, x.fingerprint, y.fingerprint]);
            let fused = matches!(a.op, OpKind::FusedJoin { .. });
            if fused {
                let (pa, pb) = match &a.op {
                    OpKind::FusedJoin { a, b } => (a.as_ground()?, b.as_ground()?),
                    _ => unreachable!("matched fused"),
                };
                // Mix the join attributes into the cache key: the same
                // operands joined on different columns estimate apart.
                let fingerprint = mix(&[fingerprint, key_sym(pa), key_sym(pb)]);
                let (xs, ys) = (x.shape, y.shape);
                let shape = env.catalog.cached_estimate(fingerprint, || Shape {
                    rows: est_join_rows(xs.rows, ys.rows),
                    cols: xs.cols + ys.cols,
                    exact: false,
                });
                return Some(TableStats {
                    shape,
                    col_attrs: Some([ca, cb].concat()),
                    null_row_attrs: x.null_row_attrs && y.null_row_attrs,
                    fingerprint,
                });
            }
            let (xs, ys) = (x.shape, y.shape);
            let shape = env.catalog.cached_estimate(fingerprint, || Shape {
                rows: xs.rows.saturating_mul(ys.rows),
                cols: xs.cols + ys.cols,
                exact: xs.exact && ys.exact,
            });
            Some(TableStats {
                shape,
                col_attrs: Some([ca, cb].concat()),
                null_row_attrs: x.null_row_attrs && y.null_row_attrs,
                fingerprint,
            })
        }
        OpKind::Union => {
            let (x, y) = (arg(0)?, arg(1)?);
            let (ca, cb) = (x.col_attrs.clone()?, y.col_attrs.clone()?);
            let fingerprint = mix(&[op_tag, x.fingerprint, y.fingerprint]);
            let (xs, ys) = (x.shape, y.shape);
            let shape = env.catalog.cached_estimate(fingerprint, || Shape {
                rows: xs.rows.saturating_add(ys.rows),
                cols: xs.cols + ys.cols,
                exact: xs.exact && ys.exact,
            });
            Some(TableStats {
                shape,
                col_attrs: Some([ca, cb].concat()),
                null_row_attrs: x.null_row_attrs && y.null_row_attrs,
                fingerprint,
            })
        }
        OpKind::Select { a: pa, b: pb } => {
            let (sa, sb) = (pa.as_ground()?, pb.as_ground()?);
            let x = arg(0)?;
            let fingerprint = mix(&[op_tag, x.fingerprint, key_sym(sa), key_sym(sb)]);
            let xs = x.shape;
            let shape = env.catalog.cached_estimate(fingerprint, || Shape {
                rows: est_select_rows(xs.rows),
                cols: xs.cols,
                exact: xs.rows == 0,
            });
            Some(TableStats {
                shape,
                col_attrs: x.col_attrs.clone(),
                null_row_attrs: x.null_row_attrs,
                fingerprint,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Rules and the plan report
// ---------------------------------------------------------------------------

/// A planner rewrite rule. [`ALL_RULES`] lists the full pipeline in
/// application order; [`plan_with_rules`] runs any subset (the per-rule
/// property tests exercise each in isolation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Retarget a producer over its single-use scratch `COPY`.
    ForwardCopy,
    /// Push a `SELECT` below a scratch `PRODUCT`/`UNION`.
    PushdownSelect,
    /// Re-associate a ≥3-way scratch `PRODUCT` chain into the cheapest
    /// left-deep order by estimated output cells.
    ReorderJoins,
    /// Fuse `PRODUCT`+`SELECT` into [`OpKind::FusedJoin`], cost-choosing
    /// fused vs. materialized per site when statistics are available.
    FuseJoin,
    /// Sink a `CLEANUP`/`PURGE` next to its single-use producer across
    /// independent rigid statements.
    SinkRestructure,
    /// Fuse `GROUP → CLEANUP (→ PURGE)` into
    /// [`OpKind::FusedRestructure`].
    FuseRestructure,
    /// Drop unread reserved-name assignments (protecting the program's
    /// final top-level target).
    EliminateDead,
}

impl Rule {
    /// Stable rule name, as rendered in EXPLAIN output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ForwardCopy => "forward-copy",
            Rule::PushdownSelect => "pushdown-select",
            Rule::ReorderJoins => "reorder-joins",
            Rule::FuseJoin => "fuse-join",
            Rule::SinkRestructure => "sink-restructure",
            Rule::FuseRestructure => "fuse-restructure",
            Rule::EliminateDead => "eliminate-dead",
        }
    }
}

/// The full rule pipeline, in application order. Join reordering runs
/// before selection pushdown so it sees whole product chains with their
/// terminal selections intact; pushdown then filters whatever products
/// remain unreordered.
pub const ALL_RULES: [Rule; 7] = [
    Rule::ForwardCopy,
    Rule::ReorderJoins,
    Rule::PushdownSelect,
    Rule::FuseJoin,
    Rule::SinkRestructure,
    Rule::FuseRestructure,
    Rule::EliminateDead,
];

/// One recorded rewrite decision, for EXPLAIN output.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The rule that fired.
    pub rule: Rule,
    /// Where (the rewritten site's target name, or `program`).
    pub site: String,
    /// Human-readable description of what was decided.
    pub detail: String,
    /// Estimated cost (cells) of the written form, when statistics were
    /// available.
    pub before_cells: Option<u128>,
    /// Estimated cost (cells) of the chosen form.
    pub after_cells: Option<u128>,
}

/// What the planner did to a program: the per-rewrite decisions and the
/// number of original statements they rewrote (the source of
/// `EvalStats::{plan_rules_applied, plans_rewritten}`).
#[derive(Clone, Debug, Default)]
pub struct PlanReport {
    /// Every rewrite decision, in application order.
    pub decisions: Vec<Decision>,
    /// Total statements removed, replaced, or moved by those decisions.
    pub statements_rewritten: usize,
}

impl PlanReport {
    /// Number of rule applications (= recorded decisions).
    pub fn rules_applied(&self) -> usize {
        self.decisions.len()
    }

    fn note(
        &mut self,
        rule: Rule,
        site: impl Into<String>,
        detail: impl Into<String>,
        before_cells: Option<u128>,
        after_cells: Option<u128>,
        stmts: usize,
    ) {
        self.decisions.push(Decision {
            rule,
            site: site.into(),
            detail: detail.into(),
            before_cells,
            after_cells,
        });
        self.statements_rewritten += stmts;
    }
}

/// Render a symbol for report sites (reserved scratch names get a `~`
/// prefix instead of their control-character tag).
fn site_name(s: Symbol) -> String {
    match s.text() {
        Some(t) if interner::is_reserved(t) => format!("~{}", &t[1..]),
        Some(t) => t.to_owned(),
        None => "⊥".to_owned(),
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Plan a program against a database: read the catalog, run the full
/// rule pipeline, and return the rewritten program with the decision
/// report. Semantics-preserving (oracle-checked by
/// `planner_on_and_off_agree`); non-ground programs return unchanged.
pub fn plan(program: &Program, db: &Database) -> (Program, PlanReport) {
    let catalog = Catalog::from_database(db);
    plan_with_catalog(program, &catalog, &ALL_RULES)
}

/// Plan with an explicit rule subset and optional database (without one,
/// stats-gated rules stay off and the rest behave like the legacy
/// passes).
pub fn plan_with_rules(
    program: &Program,
    db: Option<&Database>,
    rules: &[Rule],
) -> (Program, PlanReport) {
    match db {
        Some(db) => plan_with_catalog(program, &Catalog::from_database(db), rules),
        None => plan_with_catalog(program, &Catalog::empty(), rules),
    }
}

fn plan_with_catalog(
    program: &Program,
    catalog: &Catalog,
    rules: &[Rule],
) -> (Program, PlanReport) {
    let mut report = PlanReport::default();
    let mut live = SymbolSet::new();
    if read_set(&program.statements, &mut live).is_none() {
        return (program.clone(), report);
    }
    let mut out = program.clone();
    for &rule in rules {
        match rule {
            Rule::ForwardCopy => forward_copies_in(&mut out.statements, &mut report),
            Rule::PushdownSelect => {
                pushdown_in(&mut out.statements, &mut Env::new(catalog), &mut report);
            }
            Rule::ReorderJoins => {
                reorder_in(&mut out.statements, &mut Env::new(catalog), &mut report);
            }
            Rule::FuseJoin => {
                fuse_joins_in(&mut out.statements, &mut Env::new(catalog), &mut report);
            }
            Rule::SinkRestructure => sink_in(&mut out.statements, &mut report),
            Rule::FuseRestructure => fuse_restructure_in(&mut out.statements, &mut report),
            Rule::EliminateDead => eliminate_dead_in(&mut out.statements, &mut report),
        }
    }
    (out, report)
}

// ---------------------------------------------------------------------------
// The statistics-threaded walk
// ---------------------------------------------------------------------------

/// A site-rewrite callback for [`walk_stats`]: given the statement list,
/// the current index, the statistics environment, and the report, fire at
/// most one rewrite and say whether anything changed.
type RewriteFn<'a> =
    dyn FnMut(&mut Vec<Statement>, usize, &mut Env<'_>, &mut PlanReport) -> bool + 'a;

/// Walk a statement list with the statistics environment: at each index,
/// try a rewrite (re-examining the site when one fires), recurse into
/// `while` bodies with loop-written names invalidated (before *and*
/// after — mid-loop derivations hold per iteration, but not at exit),
/// and record each assignment's derived statistics.
fn walk_stats(
    stmts: &mut Vec<Statement>,
    env: &mut Env<'_>,
    report: &mut PlanReport,
    try_rewrite: &mut RewriteFn<'_>,
) {
    let mut i = 0;
    while i < stmts.len() {
        if try_rewrite(stmts, i, env, report) {
            continue;
        }
        if matches!(stmts[i], Statement::While { .. }) {
            if let Statement::While { body, .. } = &mut stmts[i] {
                let mut w = SymbolSet::new();
                write_set(body, &mut w);
                for n in w.iter() {
                    env.invalidate(n);
                }
                walk_stats(body, env, report, try_rewrite);
                for n in w.iter() {
                    env.invalidate(n);
                }
            }
        } else {
            env.note(&stmts[i]);
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule: forward-copy
// ---------------------------------------------------------------------------

fn forward_copies_in(stmts: &mut Vec<Statement>, report: &mut PlanReport) {
    let mut i = 1;
    while i < stmts.len() {
        let fusable = {
            let (head, tail) = stmts.split_at(i);
            match (head.last().expect("i >= 1"), &tail[0]) {
                (Statement::Assign(p), Statement::Assign(c)) => {
                    let produced = p.target.as_ground();
                    let copied = match (&c.op, c.args.as_slice()) {
                        (OpKind::Copy, [arg]) => arg.as_ground(),
                        _ => None,
                    };
                    match (produced, copied) {
                        (Some(s), Some(src))
                            if s == src && is_scratch(s) && count_reads(stmts, s) == 1 =>
                        {
                            Some((c.target.clone(), s))
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        };
        if let Some((new_target, s)) = fusable {
            if let Statement::Assign(Assignment { target, .. }) = &mut stmts[i - 1] {
                *target = new_target;
            }
            stmts.remove(i);
            report.note(
                Rule::ForwardCopy,
                site_name(s),
                "retargeted producer over single-use scratch copy",
                None,
                None,
                1,
            );
        } else {
            if let Statement::While { body, .. } = &mut stmts[i] {
                forward_copies_in(body, report);
            }
            i += 1;
        }
    }
    if let Some(Statement::While { body, .. }) = stmts.first_mut() {
        forward_copies_in(body, report);
    }
}

// ---------------------------------------------------------------------------
// Rule: pushdown-select
// ---------------------------------------------------------------------------

/// Does the `(i, i+1)` pair form `s ← op(..); t ← SELECT[a=b](s)` with `s`
/// a ground single-read scratch and `a`, `b` ground? Returns the ground
/// scratch and selection attributes.
fn select_over_scratch(stmts: &[Statement], i: usize) -> Option<(Symbol, Symbol, Symbol)> {
    let (Statement::Assign(p), Statement::Assign(c)) = (stmts.get(i)?, stmts.get(i + 1)?) else {
        return None;
    };
    let OpKind::Select { a, b } = &c.op else {
        return None;
    };
    let (sa, sb) = (a.as_ground()?, b.as_ground()?);
    let s = ground(&p.target)?;
    let [arg] = c.args.as_slice() else {
        return None;
    };
    if arg.as_ground() != Some(s) || !is_scratch(s) || count_reads(stmts, s) != 1 {
        return None;
    }
    Some((s, sa, sb))
}

fn scheme_has(attrs: &[Symbol], a: Symbol, b: Symbol) -> bool {
    attrs.iter().any(|&x| x == a || x == b)
}

fn pushdown_at(
    stmts: &mut Vec<Statement>,
    i: usize,
    env: &mut Env<'_>,
    report: &mut PlanReport,
) -> bool {
    let Some((_, sa, sb)) = select_over_scratch(stmts, i) else {
        return false;
    };
    let (Statement::Assign(p), Statement::Assign(c)) = (&stmts[i], &stmts[i + 1]) else {
        unreachable!("checked by select_over_scratch");
    };
    let site = ground(&c.target).map(site_name).unwrap_or_default();
    let OpKind::Select { a: pa, b: pb } = c.op.clone() else {
        unreachable!("checked by select_over_scratch");
    };
    let before = derive_stats(env, p).map(|t| t.shape.cells());
    match &p.op {
        OpKind::Product => {
            let [px, py] = p.args.as_slice() else {
                return false;
            };
            let attrs_of =
                |arg: &Param| -> Option<Vec<Symbol>> { env.stats(ground(arg)?)?.col_attrs.clone() };
            // Push into the operand that provably holds *all* columns named
            // `a` or `b` — i.e. the other operand has none of either.
            let side = if attrs_of(py).is_some_and(|ys| !scheme_has(&ys, sa, sb)) {
                0
            } else if attrs_of(px).is_some_and(|xs| !scheme_has(&xs, sa, sb)) {
                1
            } else {
                return false;
            };
            let f = Symbol::fresh_name();
            let filter = Statement::Assign(Assignment {
                target: Param::sym(f),
                op: OpKind::Select { a: pa, b: pb },
                args: vec![p.args[side].clone()],
            });
            let mut prod_args = p.args.clone();
            prod_args[side] = Param::sym(f);
            let product = Statement::Assign(Assignment {
                target: c.target.clone(),
                op: OpKind::Product,
                args: prod_args,
            });
            report.note(
                Rule::PushdownSelect,
                site,
                format!(
                    "pushed SELECT[{sa}={sb}] below PRODUCT into {} operand",
                    if side == 0 { "left" } else { "right" }
                ),
                before,
                None,
                2,
            );
            stmts.splice(i..i + 2, [filter, product]);
            true
        }
        OpKind::Union => {
            let [px, py] = p.args.as_slice() else {
                return false;
            };
            let (f1, f2) = (Symbol::fresh_name(), Symbol::fresh_name());
            let filter = |f: Symbol, arg: &Param| {
                Statement::Assign(Assignment {
                    target: Param::sym(f),
                    op: OpKind::Select {
                        a: pa.clone(),
                        b: pb.clone(),
                    },
                    args: vec![arg.clone()],
                })
            };
            let union = Statement::Assign(Assignment {
                target: c.target.clone(),
                op: OpKind::Union,
                args: vec![Param::sym(f1), Param::sym(f2)],
            });
            let new = [filter(f1, px), filter(f2, py), union];
            report.note(
                Rule::PushdownSelect,
                site,
                format!("distributed SELECT[{sa}={sb}] into both UNION branches"),
                before,
                None,
                2,
            );
            stmts.splice(i..i + 2, new);
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Rule: fuse-join
// ---------------------------------------------------------------------------

/// The hash-join kernel's column condition, checked on catalog schemes:
/// `a` and `b` are distinct and each names exactly one column, on
/// opposite operands (mirrors `crate::ops::fusable_join_cols`).
fn occurrence_split(a: Symbol, b: Symbol, left: &[Symbol], right: &[Symbol]) -> bool {
    let count = |attrs: &[Symbol], x: Symbol| attrs.iter().filter(|&&y| y == x).count();
    let occ = (
        count(left, a),
        count(right, a),
        count(left, b),
        count(right, b),
    );
    a != b && (occ == (1, 0, 0, 1) || occ == (0, 1, 1, 0))
}

fn fuse_join_at(
    stmts: &mut Vec<Statement>,
    i: usize,
    env: &mut Env<'_>,
    report: &mut PlanReport,
) -> bool {
    let Some((_, sa, sb)) = select_over_scratch(stmts, i) else {
        return false;
    };
    let (Statement::Assign(p), Statement::Assign(c)) = (&stmts[i], &stmts[i + 1]) else {
        unreachable!("checked by select_over_scratch");
    };
    if !matches!(p.op, OpKind::Product) {
        return false;
    }
    let OpKind::Select { a: pa, b: pb } = c.op.clone() else {
        unreachable!("checked by select_over_scratch");
    };
    let site = ground(&c.target).map(site_name).unwrap_or_default();
    let stats_of = |arg: &Param| -> Option<(Shape, Vec<Symbol>)> {
        let t = env.stats(ground(arg)?)?;
        Some((t.shape, t.col_attrs.clone()?))
    };
    let (mut before, mut after) = (None, None);
    if let [px, py] = p.args.as_slice() {
        if let (Some((xs, xa)), Some((ys, ya))) = (stats_of(px), stats_of(py)) {
            if !occurrence_split(sa, sb, &xa, &ya) {
                // Statistics prove the kernel condition fails: the fused
                // form would fall back to the staged pipeline anyway, so
                // keep the materialized product (and say so in the plan).
                report.note(
                    Rule::FuseJoin,
                    site,
                    format!("kept PRODUCT+SELECT materialized: [{sa}={sb}] does not split across operands"),
                    None,
                    None,
                    0,
                );
                return false;
            }
            let cols = xa.len() + ya.len();
            before = Some(cells_of(xs.rows.saturating_mul(ys.rows) as u128, cols));
            after = Some(cells_of(est_join_rows(xs.rows, ys.rows) as u128, cols));
        }
    }
    let fused = Assignment {
        target: c.target.clone(),
        op: OpKind::FusedJoin { a: pa, b: pb },
        args: p.args.clone(),
    };
    report.note(
        Rule::FuseJoin,
        site,
        match before {
            Some(_) => format!("fused PRODUCT+SELECT[{sa}={sb}] into hash join"),
            None => format!(
                "fused PRODUCT+SELECT[{sa}={sb}] (no statistics; kernel decides at run time)"
            ),
        },
        before,
        after,
        2,
    );
    stmts[i] = Statement::Assign(fused);
    stmts.remove(i + 1);
    true
}

/// Grid-cell cost of a `rows × cols` data region (attribute row/column
/// included), saturating.
fn cells_of(rows: u128, cols: usize) -> u128 {
    rows.saturating_add(1).saturating_mul(cols as u128 + 1)
}

fn pushdown_in(stmts: &mut Vec<Statement>, env: &mut Env<'_>, report: &mut PlanReport) {
    walk_stats(stmts, env, report, &mut |s, i, e, r| {
        pushdown_at(s, i, e, r)
    });
}

fn fuse_joins_in(stmts: &mut Vec<Statement>, env: &mut Env<'_>, report: &mut PlanReport) {
    walk_stats(stmts, env, report, &mut |s, i, e, r| {
        fuse_join_at(s, i, e, r)
    });
}

fn reorder_in(stmts: &mut Vec<Statement>, env: &mut Env<'_>, report: &mut PlanReport) {
    walk_stats(stmts, env, report, &mut |s, i, e, r| reorder_at(s, i, e, r));
}

// ---------------------------------------------------------------------------
// Rule: reorder-joins
// ---------------------------------------------------------------------------

/// A leaf of a product chain, with the exact catalog statistics the cost
/// model and the row-attribute soundness check need.
struct Leaf {
    param: Param,
    rows: u128,
    cols: usize,
    attrs: Vec<Symbol>,
}

/// A detected left-deep product chain: `stmts[i..end]` computes the
/// product of `leaves` (optionally followed by a closing `SELECT`) into
/// `final_target`, with every intermediate a single-read ground scratch.
struct Chain {
    end: usize,
    leaves: Vec<Leaf>,
    select: Option<(Param, Param)>,
    final_target: Param,
}

fn detect_chain(stmts: &[Statement], i: usize, env: &Env<'_>) -> Option<Chain> {
    let Statement::Assign(first) = stmts.get(i)? else {
        return None;
    };
    if !matches!(first.op, OpKind::Product) || first.args.len() != 2 {
        return None;
    }
    let s0 = ground(&first.target)?;
    if !is_scratch(s0) || count_reads(stmts, s0) != 1 {
        return None;
    }
    let mut leaf_params = vec![first.args[0].clone(), first.args[1].clone()];
    let mut prev = s0;
    let mut last_target = first.target.clone();
    let mut closed = false;
    let mut j = i + 1;
    while j < stmts.len() && !closed {
        let Statement::Assign(a) = &stmts[j] else {
            break;
        };
        if !matches!(a.op, OpKind::Product) || a.args.len() != 2 {
            break;
        }
        if ground(&a.args[0]) != Some(prev) {
            break;
        }
        let Some(t) = ground(&a.target) else {
            break;
        };
        leaf_params.push(a.args[1].clone());
        last_target = a.target.clone();
        j += 1;
        if is_scratch(t) && count_reads(stmts, t) == 1 {
            prev = t;
        } else {
            closed = true;
        }
    }
    let (select, final_target, end) = if closed {
        (None, last_target, j)
    } else {
        match stmts.get(j) {
            Some(Statement::Assign(c)) => match &c.op {
                OpKind::Select { a, b }
                    if a.as_ground().is_some()
                        && b.as_ground().is_some()
                        && matches!(c.args.as_slice(), [arg] if arg.as_ground() == Some(prev)) =>
                {
                    (Some((a.clone(), b.clone())), c.target.clone(), j + 1)
                }
                _ => (None, last_target, j),
            },
            _ => (None, last_target, j),
        }
    };
    if !(3..=7).contains(&leaf_params.len()) {
        return None;
    }
    // Statistics gate: every leaf must be exactly known (one unshadowed
    // store table or an exact derivation), and — for the left-biased
    // row-attribute join to commute — at most one leaf may carry any
    // non-⊥ row attribute.
    let mut leaves = Vec::with_capacity(leaf_params.len());
    let mut named = 0usize;
    for p in leaf_params {
        let st = env.stats(ground(&p)?)?;
        if !st.shape.exact {
            return None;
        }
        let attrs = st.col_attrs.clone()?;
        if !st.null_row_attrs {
            named += 1;
        }
        leaves.push(Leaf {
            param: p,
            rows: st.shape.rows as u128,
            cols: st.shape.cols,
            attrs,
        });
    }
    if named > 1 {
        return None;
    }
    Some(Chain {
        end,
        leaves,
        select,
        final_target,
    })
}

/// Estimated total cells materialized by joining `leaves` left-deep in
/// `perm` order, with the optional closing selection costed as a fused
/// join when the kernel condition provably holds for that order.
fn order_cost(leaves: &[Leaf], perm: &[usize], select: Option<(Symbol, Symbol)>) -> u128 {
    let mut rows = leaves[perm[0]].rows;
    let mut cols = leaves[perm[0]].cols;
    let mut cost: u128 = 0;
    for (step, &k) in perm.iter().enumerate().skip(1) {
        let l = &leaves[k];
        let out_cols = cols + l.cols;
        let prod_rows = rows.saturating_mul(l.rows);
        if step == perm.len() - 1 {
            if let Some((sa, sb)) = select {
                let prefix: Vec<Symbol> = perm[..step]
                    .iter()
                    .flat_map(|&q| leaves[q].attrs.iter().copied())
                    .collect();
                if occurrence_split(sa, sb, &prefix, &l.attrs) {
                    let join_rows = prod_rows / rows.max(l.rows).max(1);
                    cost = cost.saturating_add(cells_of(join_rows, out_cols));
                } else {
                    let sel_rows = (prod_rows / 4).max(prod_rows.min(1));
                    cost = cost
                        .saturating_add(cells_of(prod_rows, out_cols))
                        .saturating_add(cells_of(sel_rows, out_cols));
                }
            } else {
                cost = cost.saturating_add(cells_of(prod_rows, out_cols));
            }
        } else {
            cost = cost.saturating_add(cells_of(prod_rows, out_cols));
        }
        rows = prod_rows;
        cols = out_cols;
    }
    cost
}

fn for_each_perm(n: usize, f: &mut dyn FnMut(&[usize])) {
    fn rec(k: usize, idx: &mut Vec<usize>, f: &mut dyn FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            rec(k + 1, idx, f);
            idx.swap(k, i);
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    rec(0, &mut idx, f);
}

fn reorder_at(
    stmts: &mut Vec<Statement>,
    i: usize,
    env: &mut Env<'_>,
    report: &mut PlanReport,
) -> bool {
    let Some(chain) = detect_chain(stmts, i, env) else {
        return false;
    };
    let n = chain.leaves.len();
    let sel_syms = chain.select.as_ref().map(|(a, b)| {
        (
            a.as_ground().expect("checked"),
            b.as_ground().expect("checked"),
        )
    });
    let identity: Vec<usize> = (0..n).collect();
    let id_cost = order_cost(&chain.leaves, &identity, sel_syms);
    let mut best = identity.clone();
    let mut best_cost = id_cost;
    for_each_perm(n, &mut |perm| {
        let c = order_cost(&chain.leaves, perm, sel_syms);
        if c < best_cost {
            best_cost = c;
            best = perm.to_vec();
        }
    });
    if best == identity {
        return false;
    }
    let mut new_stmts: Vec<Statement> = Vec::with_capacity(n);
    let mut acc = chain.leaves[best[0]].param.clone();
    for (step, &k) in best.iter().enumerate().skip(1) {
        let leaf = chain.leaves[k].param.clone();
        if step < n - 1 {
            let t = Symbol::fresh_name();
            new_stmts.push(Statement::Assign(Assignment {
                target: Param::sym(t),
                op: OpKind::Product,
                args: vec![acc, leaf],
            }));
            acc = Param::sym(t);
            continue;
        }
        match (&chain.select, sel_syms) {
            (Some((pa, pb)), Some((sa, sb))) => {
                let prefix: Vec<Symbol> = best[..step]
                    .iter()
                    .flat_map(|&q| chain.leaves[q].attrs.iter().copied())
                    .collect();
                if occurrence_split(sa, sb, &prefix, &chain.leaves[k].attrs) {
                    // The cost-chosen fused form: one fewer statement and
                    // the kernel provably applies in this order.
                    new_stmts.push(Statement::Assign(Assignment {
                        target: chain.final_target.clone(),
                        op: OpKind::FusedJoin {
                            a: pa.clone(),
                            b: pb.clone(),
                        },
                        args: vec![acc.clone(), leaf],
                    }));
                } else {
                    let t = Symbol::fresh_name();
                    new_stmts.push(Statement::Assign(Assignment {
                        target: Param::sym(t),
                        op: OpKind::Product,
                        args: vec![acc.clone(), leaf],
                    }));
                    new_stmts.push(Statement::Assign(Assignment {
                        target: chain.final_target.clone(),
                        op: OpKind::Select {
                            a: pa.clone(),
                            b: pb.clone(),
                        },
                        args: vec![Param::sym(t)],
                    }));
                }
            }
            _ => {
                new_stmts.push(Statement::Assign(Assignment {
                    target: chain.final_target.clone(),
                    op: OpKind::Product,
                    args: vec![acc.clone(), leaf],
                }));
            }
        }
    }
    let order = best
        .iter()
        .map(|&k| {
            ground(&chain.leaves[k].param)
                .map(site_name)
                .unwrap_or_default()
        })
        .collect::<Vec<_>>()
        .join(" ⋈ ");
    let site = ground(&chain.final_target)
        .map(site_name)
        .unwrap_or_default();
    let removed = chain.end - i;
    report.note(
        Rule::ReorderJoins,
        site,
        format!("reordered {n}-way product chain as {order}"),
        Some(id_cost),
        Some(best_cost),
        removed,
    );
    stmts.splice(i..chain.end, new_stmts);
    true
}

// ---------------------------------------------------------------------------
// Rule: sink-restructure
// ---------------------------------------------------------------------------

/// Find a `CLEANUP`/`PURGE` consumer separated from its single-read
/// scratch producer by independent rigid assignments; returns
/// `(producer, consumer)` indices.
fn find_sink(stmts: &[Statement]) -> Option<(usize, usize)> {
    for i in 0..stmts.len() {
        let Statement::Assign(p) = &stmts[i] else {
            continue;
        };
        let wants_cleanup = match &p.op {
            OpKind::Group { .. } => true,
            OpKind::CleanUp { .. } => false,
            _ => continue,
        };
        let Some(s) = ground(&p.target) else {
            continue;
        };
        if !is_scratch(s) || count_reads(stmts, s) != 1 {
            continue;
        }
        // Locate the single read of `s` at this level, past at least one
        // intervening statement.
        let Some(j) = stmts[i + 1..]
            .iter()
            .position(|st| count_reads(std::slice::from_ref(st), s) > 0)
            .map(|off| i + 1 + off)
        else {
            continue;
        };
        if j == i + 1 {
            continue; // already adjacent: fusion's job
        }
        let Statement::Assign(c) = &stmts[j] else {
            continue; // the read is a `while` condition or inside a body
        };
        let shape_ok = match (&c.op, wants_cleanup) {
            (OpKind::CleanUp { by, on }, true) => by.is_rigid() && on.is_rigid(),
            (OpKind::Purge { on, by }, false) => on.is_rigid() && by.is_rigid(),
            _ => false,
        };
        let Some(tc) = ground(&c.target) else {
            continue;
        };
        if !shape_ok || c.args.len() != 1 {
            continue;
        }
        // Every intervening statement must be a rigid ground assignment
        // independent of the consumer: it neither reads nor writes the
        // consumer's target, doesn't write the piped scratch, and can
        // only fail on resource limits (so moving the consumer across it
        // shifts at most a budget trip point).
        let independent = stmts[i + 1..j].iter().all(|st| {
            let Statement::Assign(m) = st else {
                return false;
            };
            if matches!(m.op, OpKind::TupleNew { .. } | OpKind::SetNew { .. }) {
                return false;
            }
            let Some(mt) = ground(&m.target) else {
                return false;
            };
            mt != tc
                && mt != s
                && m.args.iter().all(|a| ground(a).is_some_and(|n| n != tc))
                && op_params(&m.op).iter().all(|p| p.is_rigid())
        });
        if independent {
            return Some((i, j));
        }
    }
    None
}

fn sink_in(stmts: &mut Vec<Statement>, report: &mut PlanReport) {
    let mut fuel = stmts.len().saturating_mul(stmts.len()) + 8;
    while fuel > 0 {
        fuel -= 1;
        let Some((i, j)) = find_sink(stmts) else {
            break;
        };
        let c = stmts.remove(j);
        if let Statement::Assign(a) = &c {
            let site = ground(&a.target).map(site_name).unwrap_or_default();
            report.note(
                Rule::SinkRestructure,
                site,
                format!(
                    "sank {} next to its producer across {} independent statements",
                    a.op.keyword(),
                    j - i - 1
                ),
                None,
                None,
                1,
            );
        }
        stmts.insert(i + 1, c);
    }
    for stmt in stmts.iter_mut() {
        if let Statement::While { body, .. } = stmt {
            sink_in(body, report);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: fuse-restructure
// ---------------------------------------------------------------------------

/// Does `consumer`'s single argument read exactly `producer`'s target,
/// with that target a scratch name read nowhere else in the segment?
fn pipes_scratch(stmts: &[Statement], producer: &Assignment, consumer: &Assignment) -> bool {
    let Some(s) = producer.target.as_ground() else {
        return false;
    };
    let [arg] = consumer.args.as_slice() else {
        return false;
    };
    arg.as_ground() == Some(s) && is_scratch(s) && count_reads(stmts, s) == 1
}

/// The 2-op fusion of `stmts[i-1]; stmts[i]`, if they form a
/// `GROUP → CLEANUP` chain over a single-read scratch.
fn restructure_prefix(stmts: &[Statement], i: usize) -> Option<Assignment> {
    let (Statement::Assign(g), Statement::Assign(c)) = (&stmts[i - 1], &stmts[i]) else {
        return None;
    };
    let OpKind::Group {
        by: group_by,
        on: group_on,
    } = &g.op
    else {
        return None;
    };
    let OpKind::CleanUp {
        by: cleanup_by,
        on: cleanup_on,
    } = &c.op
    else {
        return None;
    };
    if !cleanup_by.is_rigid() || !cleanup_on.is_rigid() || !pipes_scratch(stmts, g, c) {
        return None;
    }
    Some(Assignment {
        target: c.target.clone(),
        op: OpKind::FusedRestructure(Box::new(RestructureChain {
            group_by: group_by.clone(),
            group_on: group_on.clone(),
            cleanup_by: cleanup_by.clone(),
            cleanup_on: cleanup_on.clone(),
            purge: None,
        })),
        args: g.args.clone(),
    })
}

/// Extend a 2-op fusion at `i` to the 3-op chain, if `stmts[i+1]` is a
/// `PURGE` consuming the clean-up's single-read scratch result.
fn restructure_extend(stmts: &[Statement], i: usize, two: &Assignment) -> Option<Assignment> {
    let (Statement::Assign(c), Statement::Assign(pu)) = (&stmts[i], stmts.get(i + 1)?) else {
        return None;
    };
    let OpKind::Purge { on, by } = &pu.op else {
        return None;
    };
    if !on.is_rigid() || !by.is_rigid() || !pipes_scratch(stmts, c, pu) {
        return None;
    }
    let OpKind::FusedRestructure(chain) = two.op.clone() else {
        unreachable!("restructure_prefix builds a FusedRestructure");
    };
    Some(Assignment {
        target: pu.target.clone(),
        op: OpKind::FusedRestructure(Box::new(RestructureChain {
            purge: Some((on.clone(), by.clone())),
            ..*chain
        })),
        args: two.args.clone(),
    })
}

fn fuse_restructure_in(stmts: &mut Vec<Statement>, report: &mut PlanReport) {
    let mut i = 1;
    while i < stmts.len() {
        let Some(two) = restructure_prefix(stmts, i) else {
            if let Statement::While { body, .. } = &mut stmts[i] {
                fuse_restructure_in(body, report);
            }
            i += 1;
            continue;
        };
        let site = ground(&two.target).map(site_name).unwrap_or_default();
        match restructure_extend(stmts, i, &two) {
            Some(three) => {
                let site = ground(&three.target).map(site_name).unwrap_or_default();
                stmts[i - 1] = Statement::Assign(three);
                stmts.remove(i);
                stmts.remove(i);
                report.note(
                    Rule::FuseRestructure,
                    site,
                    "fused GROUP→CLEANUP→PURGE into single-pass restructure",
                    None,
                    None,
                    3,
                );
            }
            None => {
                stmts[i - 1] = Statement::Assign(two);
                stmts.remove(i);
                report.note(
                    Rule::FuseRestructure,
                    site,
                    "fused GROUP→CLEANUP into single-pass restructure",
                    None,
                    None,
                    2,
                );
            }
        }
    }
    if let Some(Statement::While { body, .. }) = stmts.first_mut() {
        fuse_restructure_in(body, report);
    }
}

// ---------------------------------------------------------------------------
// Rule: eliminate-dead
// ---------------------------------------------------------------------------

fn drop_dead(stmts: &mut Vec<Statement>, live: &SymbolSet, dropped: &mut usize) -> bool {
    let mut changed = false;
    stmts.retain_mut(|stmt| match stmt {
        Statement::Assign(a) => {
            let target = a.target.as_ground().expect("checked ground");
            let keep = !is_scratch(target) || live.contains(target);
            if !keep {
                changed = true;
                *dropped += 1;
            }
            keep
        }
        Statement::While { body, .. } => {
            changed |= drop_dead(body, live, dropped);
            true
        }
    });
    changed
}

fn eliminate_dead_in(stmts: &mut Vec<Statement>, report: &mut PlanReport) {
    let mut dropped = 0usize;
    loop {
        let mut live = SymbolSet::new();
        if read_set(stmts, &mut live).is_none() {
            break;
        }
        // The program's final top-level assignment is its product even
        // when the target is a reserved name (OLAP pivots write through
        // reserved output names): protect it.
        if let Some(Statement::Assign(a)) = stmts.last() {
            if let Some(t) = ground(&a.target) {
                live.insert(t);
            }
        }
        if !drop_dead(stmts, &live, &mut dropped) {
            break;
        }
    }
    if dropped > 0 {
        report.note(
            Rule::EliminateDead,
            "program",
            format!("dropped {dropped} dead scratch assignments"),
            None,
            None,
            dropped,
        );
    }
}

// ---------------------------------------------------------------------------
// The annotated IR
// ---------------------------------------------------------------------------

/// One statement in a lowered plan segment: the assignment, the indices
/// of the nodes (within the same segment) defining each argument, and
/// the derived cardinality estimate for its result.
#[derive(Clone, Debug)]
pub struct OpNode {
    /// The planned assignment.
    pub stmt: Assignment,
    /// For each argument, the defining node's index in this segment
    /// (`None` for base tables or cross-segment definitions).
    pub defs: Vec<Option<usize>>,
    /// Estimated result shape, when the cost model covers the op.
    pub est: Option<Shape>,
}

/// A node of the lowered plan IR: a straight-line DAG segment, or a loop
/// whose body is itself a sequence of nodes.
#[derive(Clone, Debug)]
pub enum IrNode {
    /// A straight-line segment of assignments forming an op DAG.
    Segment(Vec<OpNode>),
    /// A `while cond ≠ ∅` loop.
    Loop {
        /// The loop condition's table name.
        cond: Symbol,
        /// The lowered body.
        body: Vec<IrNode>,
    },
}

/// Lower a program into the annotated op-DAG IR the rules traverse:
/// straight-line segments with per-node argument edges and cardinality
/// estimates from the catalog. `None` when the program is non-ground
/// (the planner bails there too).
pub fn lower_ir(program: &Program, catalog: &Catalog) -> Option<Vec<IrNode>> {
    let mut live = SymbolSet::new();
    read_set(&program.statements, &mut live)?;
    let mut env = Env::new(catalog);
    Some(lower_stmts(&program.statements, &mut env))
}

fn lower_stmts(stmts: &[Statement], env: &mut Env<'_>) -> Vec<IrNode> {
    let mut out = Vec::new();
    let mut seg: Vec<OpNode> = Vec::new();
    let mut defs: HashMap<Symbol, usize> = HashMap::new();
    for stmt in stmts {
        match stmt {
            Statement::Assign(a) => {
                let d = a
                    .args
                    .iter()
                    .map(|p| ground(p).and_then(|n| defs.get(&n).copied()))
                    .collect();
                let est = derive_stats(env, a).map(|t| t.shape);
                env.note(stmt);
                if let Some(t) = ground(&a.target) {
                    defs.insert(t, seg.len());
                }
                seg.push(OpNode {
                    stmt: a.clone(),
                    defs: d,
                    est,
                });
            }
            Statement::While { cond, body } => {
                if !seg.is_empty() {
                    out.push(IrNode::Segment(std::mem::take(&mut seg)));
                    defs.clear();
                }
                env.note(stmt);
                let lowered = lower_stmts(body, env);
                env.note(stmt);
                out.push(IrNode::Loop {
                    cond: ground(cond).unwrap_or(Symbol::Null),
                    body: lowered,
                });
            }
        }
    }
    if !seg.is_empty() {
        out.push(IrNode::Segment(seg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalLimits};
    use crate::optimize::{body_is_delta_safe, optimize};
    use tabular_core::{Database, Table};

    fn scratch(n: u32) -> Symbol {
        Symbol::name(&format!("\u{1F}pl{n}"))
    }

    /// Compare databases on their user-visible (non-scratch) tables.
    fn compare_visible(a: &Database, b: &Database) -> bool {
        let strip = |db: &Database| {
            let mut out = db.snapshot();
            out.retain(|t| !is_scratch(t.name()));
            out
        };
        strip(a).equiv(&strip(b))
    }

    fn rel(name: &str, attrs: &[&str], rows: &[&[&str]]) -> Table {
        Table::relational(name, attrs, rows)
    }

    fn rt_db() -> Database {
        Database::from_tables([
            rel("R", &["A", "B"], &[&["1", "1"], &["2", "3"], &["4", "4"]]),
            rel("T", &["C", "D"], &[&["1", "x"], &["9", "y"]]),
        ])
    }

    /// `s ← PRODUCT(R, T); Out ← SELECT[A=B](s)` with both attributes on
    /// `R`: the selection filters `R` *before* the product.
    #[test]
    fn select_pushes_below_product_into_one_operand() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(1))],
            );
        let db = rt_db();
        let (planned, report) = plan_with_rules(&p, Some(&db), &[Rule::PushdownSelect]);
        assert_eq!(planned.len(), 2, "{planned:?}");
        let Statement::Assign(first) = &planned.statements[0] else {
            panic!("assignment expected");
        };
        assert!(matches!(first.op, OpKind::Select { .. }));
        assert_eq!(first.args, vec![Param::name("R")]);
        assert_eq!(report.rules_applied(), 1);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&planned, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    /// Pushdown refuses when the selection attributes straddle both
    /// operands — that's a join condition, not a one-sided filter.
    #[test]
    fn pushdown_refuses_cross_operand_selections() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            );
        let db = rt_db();
        let (planned, report) = plan_with_rules(&p, Some(&db), &[Rule::PushdownSelect]);
        assert_eq!(planned.len(), 2);
        assert_eq!(report.rules_applied(), 0);
        let Statement::Assign(first) = &planned.statements[0] else {
            panic!("assignment expected");
        };
        assert!(matches!(first.op, OpKind::Product));
    }

    /// `SELECT` distributes into both `UNION` branches unconditionally:
    /// weak equality strips the ⊥ padding the union introduces.
    #[test]
    fn select_distributes_through_union() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Union,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(1))],
            );
        let db = rt_db();
        let (planned, report) = plan_with_rules(&p, Some(&db), &[Rule::PushdownSelect]);
        assert_eq!(planned.len(), 3, "{planned:?}");
        assert_eq!(report.rules_applied(), 1);
        let Statement::Assign(last) = &planned.statements[2] else {
            panic!("assignment expected");
        };
        assert!(matches!(last.op, OpKind::Union));
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&planned, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    fn three_way_db() -> Database {
        let digits: Vec<Vec<String>> = (0..8)
            .map(|i| vec![i.to_string(), format!("x{i}")])
            .collect();
        let rows: Vec<Vec<&str>> = digits
            .iter()
            .map(|r| vec![r[0].as_str(), r[1].as_str()])
            .collect();
        let rows: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        let l = rel("L", &["A", "X"], &rows);
        let digits2: Vec<Vec<String>> = (4..12)
            .map(|i| vec![i.to_string(), format!("y{i}")])
            .collect();
        let rows2: Vec<Vec<&str>> = digits2
            .iter()
            .map(|r| vec![r[0].as_str(), r[1].as_str()])
            .collect();
        let rows2: Vec<&[&str]> = rows2.iter().map(|r| r.as_slice()).collect();
        let m = rel("M", &["B", "Y"], &rows2);
        let n = rel("N", &["C"], &[&["k"]]);
        Database::from_tables([l, m, n])
    }

    /// The pessimal written order `(L × M) × N` with a closing
    /// `SELECT[A=B]` re-associates to join `L` with the 1-row `N` first,
    /// then fuse the selective join with `M` — strictly fewer estimated
    /// cells, same visible result.
    #[test]
    fn pessimal_three_way_chain_is_reordered_and_fused() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("L"), Param::name("M")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::Product,
                vec![Param::sym(scratch(1)), Param::name("N")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(2))],
            );
        let db = three_way_db();
        let (planned, report) = plan(&p, &db);
        assert_eq!(planned.len(), 2, "{planned:?}");
        let Statement::Assign(last) = &planned.statements[1] else {
            panic!("assignment expected");
        };
        assert!(matches!(last.op, OpKind::FusedJoin { .. }), "{:?}", last.op);
        let decision = report
            .decisions
            .iter()
            .find(|d| d.rule == Rule::ReorderJoins)
            .expect("reorder decision recorded");
        assert!(decision.after_cells.unwrap() < decision.before_cells.unwrap());
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&planned, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    /// With a leaf name shadowed (two store tables bear it), per-name
    /// statistics are meaningless and the chain is left as written.
    #[test]
    fn reorder_requires_unshadowed_exact_statistics() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("L"), Param::name("M")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::Product,
                vec![Param::sym(scratch(1)), Param::name("N")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(2))],
            );
        let mut db = three_way_db();
        db.insert(rel("N", &["C"], &[&["k2"]]));
        let (planned, report) = plan_with_rules(&p, Some(&db), &[Rule::ReorderJoins]);
        assert_eq!(planned.len(), 3);
        assert_eq!(report.rules_applied(), 0);
        let Statement::Assign(first) = &planned.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(first.args, vec![Param::name("L"), Param::name("M")]);
    }

    /// Two leaves with non-⊥ row attributes: the left-biased row-attribute
    /// join makes the product non-commutative, so reordering refuses.
    #[test]
    fn reorder_refuses_two_row_attributed_leaves() {
        let l = Table::from_grid(&[&["L", "A"], &["r1", "1"]]).unwrap();
        let m = Table::from_grid(&[&["M", "B"], &["r2", "1"]]).unwrap();
        let n = rel("N", &["C"], &[&["k"]]);
        let db = Database::from_tables([l, m, n]);
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("L"), Param::name("M")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::Product,
                vec![Param::sym(scratch(1)), Param::name("N")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(2))],
            );
        let (planned, report) = plan_with_rules(&p, Some(&db), &[Rule::ReorderJoins]);
        assert_eq!(planned.len(), 3);
        assert_eq!(report.rules_applied(), 0);
    }

    /// A `CLEANUP` separated from its `GROUP` by an independent rigid
    /// statement sinks next to it, and the now-contiguous chain fuses.
    #[test]
    fn cleanup_sinks_across_independent_statements_then_fuses() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Group {
                    by: Param::name("Region"),
                    on: Param::name("Sold"),
                },
                vec![Param::name("R")],
            )
            .assign(Param::name("Copy"), OpKind::Copy, vec![Param::name("R")])
            .assign(
                Param::name("Out"),
                OpKind::CleanUp {
                    by: Param::name("Part"),
                    on: Param::null(),
                },
                vec![Param::sym(scratch(1))],
            );
        let db = Database::from_tables([tabular_core::fixtures::sales_relation()]);
        let (planned, report) = plan(&p, &db);
        assert_eq!(planned.len(), 2, "{planned:?}");
        assert!(report
            .decisions
            .iter()
            .any(|d| d.rule == Rule::SinkRestructure));
        assert!(report
            .decisions
            .iter()
            .any(|d| d.rule == Rule::FuseRestructure));
        let Statement::Assign(first) = &planned.statements[0] else {
            panic!("assignment expected");
        };
        assert!(matches!(first.op, OpKind::FusedRestructure(_)));
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&planned, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    /// Sinking refuses when an intervening statement reads the consumer's
    /// target (moving the write above the read would change it).
    #[test]
    fn sinking_respects_intervening_readers() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Group {
                    by: Param::name("Region"),
                    on: Param::name("Sold"),
                },
                vec![Param::name("R")],
            )
            .assign(Param::name("Copy"), OpKind::Copy, vec![Param::name("Out")])
            .assign(
                Param::name("Out"),
                OpKind::CleanUp {
                    by: Param::name("Part"),
                    on: Param::null(),
                },
                vec![Param::sym(scratch(1))],
            );
        let (planned, report) = plan_with_rules(&p, None, &[Rule::SinkRestructure]);
        assert_eq!(planned.len(), 3);
        assert_eq!(report.rules_applied(), 0);
    }

    /// The PR 6 OLAP workaround regression: a chain whose *final* target
    /// is a reserved name must survive the full pipeline (dead-code
    /// elimination protects the program's product).
    #[test]
    fn final_reserved_target_survives_full_pipeline() {
        let out = scratch(77);
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Group {
                    by: Param::name("Region"),
                    on: Param::name("Sold"),
                },
                vec![Param::name("R")],
            )
            .assign(
                Param::sym(out),
                OpKind::CleanUp {
                    by: Param::name("Part"),
                    on: Param::null(),
                },
                vec![Param::sym(scratch(1))],
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1, "{opt:?}");
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::sym(out));
        assert!(matches!(a.op, OpKind::FusedRestructure(_)));
    }

    /// Non-ground programs are returned unchanged with an empty report.
    #[test]
    fn non_ground_programs_bail() {
        let p = Program::new().assign(Param::star(), OpKind::Transpose, vec![Param::star()]);
        let db = rt_db();
        let (planned, report) = plan(&p, &db);
        assert_eq!(planned.len(), 1);
        assert_eq!(report.rules_applied(), 0);
        assert_eq!(report.statements_rewritten, 0);
    }

    /// Catalog statistics: exact shapes for uniquely named tables, `None`
    /// under fan-out (two tables sharing a name).
    #[test]
    fn catalog_reads_exact_statistics() {
        let db = rt_db();
        let catalog = Catalog::from_database(&db);
        let r = catalog.stats(Symbol::name("R")).expect("R has stats");
        assert_eq!((r.shape.rows, r.shape.cols), (3, 2));
        assert!(r.shape.exact);
        assert!(r.null_row_attrs);
        assert_eq!(
            r.col_attrs.as_deref(),
            Some(&[Symbol::name("A"), Symbol::name("B")][..])
        );
        let mut shadowed = rt_db();
        shadowed.insert(rel("R", &["A"], &[&["9"]]));
        let catalog = Catalog::from_database(&shadowed);
        assert!(catalog.stats(Symbol::name("R")).is_none());
    }

    /// Planned `while` bodies stay delta-safe: rules emit ground,
    /// loop-free, tag-free statements only.
    #[test]
    fn planned_while_bodies_stay_delta_safe() {
        let body = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Step"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            )
            .assign(
                Param::name("Out"),
                OpKind::Difference,
                vec![Param::name("Step"), Param::name("Out")],
            );
        let p = Program::new()
            .assign(Param::name("Out"), OpKind::Copy, vec![Param::name("R")])
            .while_nonempty(Param::name("Out"), body.clone());
        assert!(body_is_delta_safe(&body.statements));
        let db = rt_db();
        let (planned, _) = plan(&p, &db);
        let Statement::While { body: pb, .. } = &planned.statements[1] else {
            panic!("while expected");
        };
        assert!(body_is_delta_safe(pb));
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&planned, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    /// The annotated IR: segments split at loops, argument edges resolve
    /// within a segment, and estimates follow the catalog.
    #[test]
    fn lower_ir_annotates_segments_and_estimates() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("T")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("A"),
                    b: Param::name("B"),
                },
                vec![Param::sym(scratch(1))],
            )
            .while_nonempty(
                Param::name("Out"),
                Program::new().assign(
                    Param::name("Out"),
                    OpKind::Difference,
                    vec![Param::name("Out"), Param::name("Out")],
                ),
            );
        let db = rt_db();
        let catalog = Catalog::from_database(&db);
        let ir = lower_ir(&p, &catalog).expect("ground program");
        assert_eq!(ir.len(), 2, "{ir:?}");
        let IrNode::Segment(seg) = &ir[0] else {
            panic!("segment expected");
        };
        assert_eq!(seg.len(), 2);
        let est = seg[0].est.expect("product estimated");
        assert_eq!((est.rows, est.cols), (6, 4));
        assert!(est.exact);
        assert_eq!(seg[1].defs, vec![Some(0)]);
        assert!(matches!(ir[1], IrNode::Loop { .. }));
    }
}
