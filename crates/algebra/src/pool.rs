//! A persistent worker pool for sharded statement evaluation.
//!
//! The interpreter fans a statement's per-table applications out across
//! threads once enough tables match (see `EvalLimits::parallel_threshold`).
//! Spawning OS threads per statement — the obvious `std::thread::scope`
//! approach — costs more than the work it parallelizes on the small tables
//! typical of `while` loop bodies, so the pool is built at most once per
//! `run` and reused by every statement of that run, including every
//! iteration of every loop.
//!
//! Jobs borrow from the caller's stack (the database being evaluated), so
//! [`ShardPool::scoped`] provides a scoped interface over long-lived
//! workers: it erases the job lifetime to hand the closure to a worker
//! thread, then blocks until every submitted job has signalled completion,
//! which restores the borrow discipline of `std::thread::scope`. Panics in
//! jobs are caught on the worker, carried back, and resumed on the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted closures.
pub struct ShardPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> ShardPool {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        ShardPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run every job on the pool and wait for all of them to finish.
    ///
    /// Jobs may borrow from the caller (lifetime `'s`): the call does not
    /// return until each job has reported completion, so no borrow
    /// escapes. If jobs panicked, the *first* panic (in completion order)
    /// is resumed here, and only after all `n` completions have been
    /// drained — later panics must not shadow the original failure, and
    /// resuming early would drop the `done` receiver while jobs still
    /// borrow the caller's stack.
    pub fn scoped<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        let (done, finished) = channel::<std::thread::Result<()>>();
        for job in jobs {
            let done = done.clone();
            let wrapped: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The receiver outlives every job (we block below), so the
                // send only fails if the caller itself is unwinding.
                let _ = done.send(outcome);
            });
            // SAFETY: the loop below blocks until `n` completions have been
            // received, one per submitted job, so every borrow with
            // lifetime 's is done before `scoped` returns; the transmute
            // only erases that lifetime for transport to the worker.
            let wrapped: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Job>(wrapped) };
            self.sender
                .as_ref()
                .expect("pool alive while scoped")
                .send(wrapped)
                .expect("workers alive while scoped");
        }
        drop(done);
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for _ in 0..n {
            match finished.recv().expect("every job reports completion") {
                Ok(()) => {}
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's receive loop.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break,
        }
    }
}

/// A pool that is built on first use, so runs that never cross the
/// parallelism threshold spawn no threads at all.
///
/// The worker count is fixed at construction from
/// [`EvalLimits::threads`](crate::EvalLimits::threads) (`0` = detect
/// with `available_parallelism`), so N concurrent governed runs spawn
/// N × *limit* workers instead of N × core-count — the admission knob a
/// multi-tenant server needs.
#[derive(Default)]
pub(crate) struct LazyPool {
    threads: usize,
    pool: Option<ShardPool>,
}

impl LazyPool {
    /// `threads == 0` means "detect at first use".
    pub(crate) fn new(threads: usize) -> LazyPool {
        LazyPool {
            threads,
            pool: None,
        }
    }

    pub(crate) fn get(&mut self) -> &ShardPool {
        let requested = self.threads;
        self.pool.get_or_insert_with(|| {
            let threads = if requested == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                requested
            };
            ShardPool::new(threads)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_runs_every_job_and_blocks_until_done() {
        let pool = ShardPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn lazy_pool_honors_the_requested_thread_count() {
        let mut lazy = LazyPool::new(1);
        assert_eq!(lazy.get().threads(), 1);
        let mut lazy = LazyPool::new(3);
        assert_eq!(lazy.get().threads(), 3);
        // 0 = detect; whatever it resolves to, at least one worker.
        let mut lazy = LazyPool::new(0);
        assert!(lazy.get().threads() >= 1);
    }

    #[test]
    fn jobs_can_write_into_borrowed_slots() {
        let pool = ShardPool::new(2);
        let mut slots = vec![0u64; 8];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64 + 1) * 10;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped(jobs);
        assert_eq!(slots, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn pool_survives_and_propagates_job_panics() {
        let pool = ShardPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| panic!("job failure")) as Box<dyn FnOnce() + Send + '_>];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.scoped(boom)));
        assert!(caught.is_err());
        // The pool keeps working after a job panic.
        let ok = AtomicUsize::new(0);
        pool.scoped(vec![Box::new(|| {
            ok.fetch_add(1, Ordering::SeqCst);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn two_panicking_jobs_drain_fully_and_resume_one() {
        let pool = ShardPool::new(2);
        let survivors = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| panic!("first failure")),
            Box::new(|| {
                survivors.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(|| panic!("second failure")),
            Box::new(|| {
                survivors.fetch_add(1, Ordering::SeqCst);
            }),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.scoped(jobs)));
        let payload = caught.expect_err("a job panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is the job's message");
        assert!(
            msg == "first failure" || msg == "second failure",
            "propagated panic is one of the jobs', got {msg:?}"
        );
        // All completions were drained before resuming: the non-panicking
        // jobs finished, and the pool is still fully usable.
        assert_eq!(survivors.load(Ordering::SeqCst), 2);
        let ok = AtomicUsize::new(0);
        pool.scoped(vec![Box::new(|| {
            ok.fetch_add(1, Ordering::SeqCst);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn reuse_across_many_batches() {
        let pool = ShardPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
                .map(|_| {
                    Box::new(|| {
                        total.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scoped(jobs);
        }
        assert_eq!(total.load(Ordering::SeqCst), 250);
        assert_eq!(pool.threads(), 3);
    }
}
