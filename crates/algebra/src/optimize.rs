//! Program optimization — the future-work direction the paper names in
//! §5 ("Query (and program) optimization is an important issue").
//!
//! Two conservative, semantics-preserving passes over tabular algebra
//! programs:
//!
//! * **dead-assignment elimination** — statements assigning to a
//!   *scratch* table (reserved namespace) that no later statement ever
//!   reads are dropped, to a fixpoint. The compilers of Theorems 4.1/4.5
//!   emit long scratch chains; copies that feed nothing disappear here.
//! * **copy forwarding** — a `COPY` from a scratch table that was itself
//!   assigned exactly once immediately before is fused by retargeting the
//!   producing statement.
//!
//! Both passes bail out (returning the program unchanged) when the
//! program uses non-ground parameters (wildcards, pairs, negative lists)
//! in targets, arguments, or `while` conditions — with wildcards, any
//! statement may read any table, so nothing is provably dead. Compiled
//! programs are fully ground, which is exactly where the passes pay off.

use crate::param::Param;
use crate::program::{Assignment, OpKind, Program, RestructureChain, Statement};
use tabular_core::{interner, Symbol, SymbolSet};

/// True if the symbol lives in the reserved scratch namespace.
fn is_scratch(s: Symbol) -> bool {
    s.text().is_some_and(interner::is_reserved)
}

fn ground(p: &Param) -> Option<Symbol> {
    p.as_ground()
}

/// Collect every table name a statement list reads (arguments and `while`
/// conditions); `None` if any parameter is non-ground.
fn read_set(stmts: &[Statement], out: &mut SymbolSet) -> Option<()> {
    for stmt in stmts {
        match stmt {
            Statement::Assign(a) => {
                ground(&a.target)?;
                for arg in &a.args {
                    out.insert(ground(arg)?);
                }
            }
            Statement::While { cond, body } => {
                out.insert(ground(cond)?);
                read_set(body, out)?;
            }
        }
    }
    Some(())
}

fn drop_dead(stmts: &mut Vec<Statement>, live: &SymbolSet) -> bool {
    let mut changed = false;
    stmts.retain_mut(|stmt| match stmt {
        Statement::Assign(a) => {
            let target = a.target.as_ground().expect("checked ground");
            let keep = !is_scratch(target) || live.contains(target);
            if !keep {
                changed = true;
            }
            keep
        }
        Statement::While { body, .. } => {
            changed |= drop_dead(body, live);
            true
        }
    });
    changed
}

/// True when a `while` body is eligible for delta-driven evaluation
/// (see [`crate::eval::WhileStrategy`]).
///
/// The delta engine skips a statement when none of its inputs changed
/// since its last execution, which is sound exactly when re-execution
/// would be a no-op. That requires:
///
/// * **ground parameters throughout** — targets, arguments, and nested
///   conditions all denote fixed names (reuses the same [`read_set`]
///   machinery as the optimizer), so each statement's read and write
///   sets are known statically;
/// * **no fresh tagging** — `TUPLENEW` / `SETNEW` invent new tags on
///   every execution, so skipping a re-run changes the result (the
///   paper's determinacy-up-to-tag-isomorphism, §3.5, does not survive
///   accumulation across iterations);
/// * **no nested loops** — an inner `while` is not a pure function of
///   its read set's versions (its own iteration count varies), so only
///   straight-line bodies qualify.
///
/// Everything else in the algebra is a pure, deterministic function of
/// its arguments, so this is broader than a monotone-operations
/// whitelist: even non-monotone bodies (difference, transpose, switch)
/// are delta-safe, because skipping is keyed on *versions*, not on
/// growth.
pub fn body_is_delta_safe(body: &[Statement]) -> bool {
    let mut reads = SymbolSet::new();
    if read_set(body, &mut reads).is_none() {
        return false;
    }
    body.iter().all(|s| match s {
        Statement::While { .. } => false,
        Statement::Assign(a) => !matches!(a.op, OpKind::TupleNew { .. } | OpKind::SetNew { .. }),
    })
}

/// Eliminate dead scratch assignments, to a fixpoint.
pub fn eliminate_dead(program: &Program) -> Program {
    let mut out = program.clone();
    loop {
        let mut live = SymbolSet::new();
        if read_set(&out.statements, &mut live).is_none() {
            return program.clone();
        }
        if !drop_dead(&mut out.statements, &live) {
            return out;
        }
    }
}

/// Fuse `s ← op(...); T ← COPY(s)` into `T ← op(...)` when `s` is scratch,
/// produced by the immediately preceding statement, and read nowhere else.
/// Straight-line segments only (never across a `while` boundary).
pub fn forward_copies(program: &Program) -> Program {
    let mut live = SymbolSet::new();
    if read_set(&program.statements, &mut live).is_none() {
        return program.clone();
    }
    let mut out = program.clone();
    fuse_in(&mut out.statements);
    out
}

fn fuse_in(stmts: &mut Vec<Statement>) {
    // Count reads per name within this segment (including nested bodies).
    fn count_reads(stmts: &[Statement], of: Symbol) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Statement::Assign(a) => a.args.iter().filter(|p| p.as_ground() == Some(of)).count(),
                Statement::While { cond, body } => {
                    usize::from(cond.as_ground() == Some(of)) + count_reads(body, of)
                }
            })
            .sum()
    }

    let mut i = 1;
    while i < stmts.len() {
        let fusable = {
            let (head, tail) = stmts.split_at(i);
            let prev = head.last().expect("i >= 1");
            match (&prev, &tail[0]) {
                (Statement::Assign(p), Statement::Assign(c)) => {
                    let produced = p.target.as_ground();
                    let copied = match (&c.op, c.args.as_slice()) {
                        (OpKind::Copy, [arg]) => arg.as_ground(),
                        _ => None,
                    };
                    match (produced, copied) {
                        (Some(s), Some(src))
                            if s == src && is_scratch(s) && count_reads(stmts, s) == 1 =>
                        {
                            Some(c.target.clone())
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        };
        if let Some(new_target) = fusable {
            if let Statement::Assign(Assignment { target, .. }) = &mut stmts[i - 1] {
                *target = new_target;
            }
            stmts.remove(i);
        } else {
            match &mut stmts[i] {
                Statement::While { body, .. } => fuse_in(body),
                Statement::Assign(_) => {}
            }
            i += 1;
        }
    }
    if let Some(Statement::While { body, .. }) = stmts.first_mut() {
        fuse_in(body);
    }
}

/// Fuse `s ← PRODUCT(R, S); T ← SELECT[A=B](s)` into
/// `T ← FUSEDJOIN[A=B](R, S)` when `s` is scratch, produced by the
/// immediately preceding statement, read nowhere else, and `A`/`B` are
/// ground symbols (so their denotation cannot depend on the product table
/// that no longer exists). Straight-line segments only, like
/// [`forward_copies`].
///
/// The rewrite is unconditionally sound: `FUSEDJOIN[A=B](R, S)` is
/// *defined* as `SELECT[A=B](PRODUCT(R, S))`, and the evaluator decides
/// per argument pair whether the hash-join kernel applies
/// ([`crate::ops::fusable_join_cols`]) or the unfused pipeline must run.
pub fn fuse_joins(program: &Program) -> Program {
    let mut live = SymbolSet::new();
    if read_set(&program.statements, &mut live).is_none() {
        return program.clone();
    }
    let mut out = program.clone();
    fuse_joins_in(&mut out.statements);
    out
}

fn fuse_joins_in(stmts: &mut Vec<Statement>) {
    fn count_reads(stmts: &[Statement], of: Symbol) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Statement::Assign(a) => a.args.iter().filter(|p| p.as_ground() == Some(of)).count(),
                Statement::While { cond, body } => {
                    usize::from(cond.as_ground() == Some(of)) + count_reads(body, of)
                }
            })
            .sum()
    }

    let mut i = 1;
    while i < stmts.len() {
        let fused = {
            let (head, tail) = stmts.split_at(i);
            let prev = head.last().expect("i >= 1");
            match (&prev, &tail[0]) {
                (Statement::Assign(p), Statement::Assign(c)) => {
                    let produced = p.target.as_ground();
                    let selected = match (&c.op, c.args.as_slice()) {
                        (OpKind::Select { a, b }, [arg])
                            if a.as_ground().is_some() && b.as_ground().is_some() =>
                        {
                            arg.as_ground()
                        }
                        _ => None,
                    };
                    match (produced, selected, &p.op) {
                        (Some(s), Some(src), OpKind::Product)
                            if s == src && is_scratch(s) && count_reads(stmts, s) == 1 =>
                        {
                            let OpKind::Select { a, b } = &c.op else {
                                unreachable!("matched above");
                            };
                            Some(Assignment {
                                target: c.target.clone(),
                                op: OpKind::FusedJoin {
                                    a: a.clone(),
                                    b: b.clone(),
                                },
                                args: p.args.clone(),
                            })
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        };
        if let Some(joined) = fused {
            stmts[i - 1] = Statement::Assign(joined);
            stmts.remove(i);
        } else {
            match &mut stmts[i] {
                Statement::While { body, .. } => fuse_joins_in(body),
                Statement::Assign(_) => {}
            }
            i += 1;
        }
    }
    if let Some(Statement::While { body, .. }) = stmts.first_mut() {
        fuse_joins_in(body);
    }
}

/// Fuse `s₁ ← GROUP[...](R); s₂ ← CLEANUP[...](s₁); T ← PURGE[...](s₂)`
/// — and the 2-op prefix `s ← GROUP[...](R); T ← CLEANUP[...](s)` — into
/// `T ← FUSEDRESTRUCTURE[...](R)` when each scratch intermediate is
/// produced immediately before its single read and the clean-up/purge
/// parameters are rigid ([`Param::is_rigid`] — their denotation cannot
/// depend on the intermediate tables that no longer exist; the `GROUP`
/// parameters denote against `R` either way and may stay arbitrary).
/// Straight-line segments only, like [`forward_copies`].
///
/// The rewrite is unconditionally sound: `FUSEDRESTRUCTURE` is *defined*
/// as the staged pipeline, and the evaluator decides per argument table
/// whether the single-pass kernel applies
/// ([`crate::ops::fused_restructure`]) or the staged fallback must run.
pub fn fuse_restructure(program: &Program) -> Program {
    let mut live = SymbolSet::new();
    if read_set(&program.statements, &mut live).is_none() {
        return program.clone();
    }
    let mut out = program.clone();
    fuse_restructure_in(&mut out.statements);
    out
}

fn fuse_restructure_in(stmts: &mut Vec<Statement>) {
    fn count_reads(stmts: &[Statement], of: Symbol) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Statement::Assign(a) => a.args.iter().filter(|p| p.as_ground() == Some(of)).count(),
                Statement::While { cond, body } => {
                    usize::from(cond.as_ground() == Some(of)) + count_reads(body, of)
                }
            })
            .sum()
    }

    /// Does `consumer`'s single argument read exactly `producer`'s target,
    /// with that target a scratch name read nowhere else in the segment?
    fn pipes_scratch(stmts: &[Statement], producer: &Assignment, consumer: &Assignment) -> bool {
        let Some(s) = producer.target.as_ground() else {
            return false;
        };
        let [arg] = consumer.args.as_slice() else {
            return false;
        };
        arg.as_ground() == Some(s) && is_scratch(s) && count_reads(stmts, s) == 1
    }

    /// The 2-op fusion of `stmts[i-1]; stmts[i]`, if they form a
    /// `GROUP → CLEANUP` chain over a single-read scratch.
    fn prefix(stmts: &[Statement], i: usize) -> Option<Assignment> {
        let (Statement::Assign(g), Statement::Assign(c)) = (&stmts[i - 1], &stmts[i]) else {
            return None;
        };
        let OpKind::Group {
            by: group_by,
            on: group_on,
        } = &g.op
        else {
            return None;
        };
        let OpKind::CleanUp {
            by: cleanup_by,
            on: cleanup_on,
        } = &c.op
        else {
            return None;
        };
        if !cleanup_by.is_rigid() || !cleanup_on.is_rigid() || !pipes_scratch(stmts, g, c) {
            return None;
        }
        Some(Assignment {
            target: c.target.clone(),
            op: OpKind::FusedRestructure(Box::new(RestructureChain {
                group_by: group_by.clone(),
                group_on: group_on.clone(),
                cleanup_by: cleanup_by.clone(),
                cleanup_on: cleanup_on.clone(),
                purge: None,
            })),
            args: g.args.clone(),
        })
    }

    /// Extend a 2-op fusion at `i` to the 3-op chain, if `stmts[i+1]` is a
    /// `PURGE` consuming the clean-up's single-read scratch result.
    fn extend(stmts: &[Statement], i: usize, two: &Assignment) -> Option<Assignment> {
        let (Statement::Assign(c), Statement::Assign(pu)) = (&stmts[i], stmts.get(i + 1)?) else {
            return None;
        };
        let OpKind::Purge { on, by } = &pu.op else {
            return None;
        };
        if !on.is_rigid() || !by.is_rigid() || !pipes_scratch(stmts, c, pu) {
            return None;
        }
        let OpKind::FusedRestructure(chain) = two.op.clone() else {
            unreachable!("prefix builds a FusedRestructure");
        };
        Some(Assignment {
            target: pu.target.clone(),
            op: OpKind::FusedRestructure(Box::new(RestructureChain {
                purge: Some((on.clone(), by.clone())),
                ..*chain
            })),
            args: two.args.clone(),
        })
    }

    let mut i = 1;
    while i < stmts.len() {
        let Some(two) = prefix(stmts, i) else {
            match &mut stmts[i] {
                Statement::While { body, .. } => fuse_restructure_in(body),
                Statement::Assign(_) => {}
            }
            i += 1;
            continue;
        };
        match extend(stmts, i, &two) {
            Some(three) => {
                stmts[i - 1] = Statement::Assign(three);
                stmts.remove(i);
                stmts.remove(i);
            }
            None => {
                stmts[i - 1] = Statement::Assign(two);
                stmts.remove(i);
            }
        }
    }
    if let Some(Statement::While { body, .. }) = stmts.first_mut() {
        fuse_restructure_in(body);
    }
}

/// The full pipeline: copy forwarding, join fusion, restructuring fusion,
/// then dead-code elimination.
pub fn optimize(program: &Program) -> Program {
    eliminate_dead(&fuse_restructure(&fuse_joins(&forward_copies(program))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalLimits};
    use crate::param::Param;
    use tabular_core::{fixtures, Database};

    fn scratch(n: u32) -> Symbol {
        Symbol::name(&format!("\u{1F}opt{n}"))
    }

    #[test]
    fn dead_scratch_assignments_are_removed() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Copy,
                vec![Param::name("Sales")],
            )
            .assign(Param::name("Out"), OpKind::Copy, vec![Param::name("Sales")]);
        let opt = eliminate_dead(&p);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn dead_chains_are_removed_to_a_fixpoint() {
        // s1 feeds s2 feeds nothing: both must go.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Copy,
                vec![Param::name("Sales")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::Copy,
                vec![Param::sym(scratch(1))],
            )
            .assign(Param::name("Out"), OpKind::Copy, vec![Param::name("Sales")]);
        assert_eq!(eliminate_dead(&p).len(), 1);
    }

    #[test]
    fn user_visible_targets_are_never_removed() {
        let p = Program::new().assign(
            Param::name("Unused"),
            OpKind::Copy,
            vec![Param::name("Sales")],
        );
        assert_eq!(eliminate_dead(&p).len(), 1);
    }

    #[test]
    fn copy_forwarding_fuses_producer_and_copy() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Transpose,
                vec![Param::name("Sales")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Copy,
                vec![Param::sym(scratch(1))],
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(matches!(a.op, OpKind::Transpose));
    }

    #[test]
    fn copy_forwarding_respects_multiple_readers() {
        // The scratch result is read twice: the copy cannot be fused away.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Transpose,
                vec![Param::name("Sales")],
            )
            .assign(Param::name("A"), OpKind::Copy, vec![Param::sym(scratch(1))])
            .assign(Param::name("B"), OpKind::Copy, vec![Param::sym(scratch(1))]);
        assert_eq!(optimize(&p).len(), 3);
    }

    #[test]
    fn wildcard_programs_are_left_untouched() {
        let p = Program::new()
            .assign(Param::sym(scratch(1)), OpKind::Copy, vec![Param::name("X")])
            .assign(Param::star_k(1), OpKind::Transpose, vec![Param::star_k(1)]);
        // The wildcard could read the scratch table: no elimination.
        assert_eq!(optimize(&p).len(), 2);
    }

    #[test]
    fn optimizing_a_compiled_program_preserves_results() {
        // A small pipeline with real scratch traffic.
        let p = crate::parser::parse(
            "Sales <- GROUP[by {Region} on {Sold}](Sales)
             Sales <- CLEANUP[by {Part} on {_}](Sales)
             Sales <- PURGE[on {Sold} by {Region}](Sales)",
        )
        .unwrap();
        let db = fixtures::sales_info1();
        let opt = optimize(&p);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn while_bodies_are_preserved_correctly() {
        let p = Program::new()
            .assign(Param::name("T"), OpKind::Copy, vec![Param::name("Sales")])
            .while_nonempty(
                Param::name("T"),
                Program::new().assign(
                    Param::name("T"),
                    OpKind::Difference,
                    vec![Param::name("T"), Param::name("T")],
                ),
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), p.len());
        let db = fixtures::sales_info1();
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn select_over_scratch_product_fuses_into_a_join() {
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            );
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(matches!(a.op, OpKind::FusedJoin { .. }));
        assert_eq!(a.args, vec![Param::name("R"), Param::name("S")]);

        let db = Database::from_tables([
            tabular_core::Table::relational("R", &["A", "B"], &[&["1", "2"], &["3", "4"]]),
            tabular_core::Table::relational("S", &["C", "D"], &[&["2", "x"], &["9", "y"]]),
        ]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn fusion_respects_multiple_readers_and_visible_targets() {
        // The product result is read twice: fusing would lose it.
        let multi = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("A"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            )
            .assign(Param::name("B"), OpKind::Copy, vec![Param::sym(scratch(1))]);
        assert_eq!(optimize(&multi).len(), 3);

        // A user-visible product is observable output: never fused away.
        let visible = Program::new()
            .assign(
                Param::name("P"),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::name("B"),
                    b: Param::name("C"),
                },
                vec![Param::name("P")],
            );
        assert_eq!(optimize(&visible).len(), 2);
    }

    #[test]
    fn fusion_requires_ground_selection_attributes() {
        // A pair parameter denotes a position *in the product table*; the
        // rewrite would change what it points at.
        let p = Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Product,
                vec![Param::name("R"), Param::name("S")],
            )
            .assign(
                Param::name("Out"),
                OpKind::Select {
                    a: Param::pair(Param::name("r"), Param::name("c")),
                    b: Param::name("C"),
                },
                vec![Param::sym(scratch(1))],
            );
        assert_eq!(fuse_joins(&p).len(), 2);
    }

    /// The paper's pivot chain over single-read scratches, builder-style.
    fn pivot_chain() -> Program {
        Program::new()
            .assign(
                Param::sym(scratch(1)),
                OpKind::Group {
                    by: Param::name("Region"),
                    on: Param::name("Sold"),
                },
                vec![Param::name("R")],
            )
            .assign(
                Param::sym(scratch(2)),
                OpKind::CleanUp {
                    by: Param::name("Part"),
                    on: Param::null(),
                },
                vec![Param::sym(scratch(1))],
            )
            .assign(
                Param::name("Out"),
                OpKind::Purge {
                    on: Param::name("Sold"),
                    by: Param::name("Region"),
                },
                vec![Param::sym(scratch(2))],
            )
    }

    #[test]
    fn pivot_chain_fuses_into_a_restructure() {
        let p = pivot_chain();
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert_eq!(a.target, Param::name("Out"));
        assert!(
            matches!(&a.op, OpKind::FusedRestructure(chain) if chain.purge.is_some()),
            "{:?}",
            a.op
        );
        assert_eq!(a.args, vec![Param::name("R")]);

        let db = Database::from_tables([fixtures::sales_relation()]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn group_cleanup_prefix_fuses_without_a_purge() {
        let mut p = pivot_chain();
        p.statements.truncate(2);
        // Retarget the clean-up to a visible name so the chain ends there.
        let Statement::Assign(c) = &mut p.statements[1] else {
            panic!("assignment expected");
        };
        c.target = Param::name("Out");
        let opt = optimize(&p);
        assert_eq!(opt.len(), 1);
        let Statement::Assign(a) = &opt.statements[0] else {
            panic!("assignment expected");
        };
        assert!(matches!(
            &a.op,
            OpKind::FusedRestructure(chain) if chain.purge.is_none()
        ));

        let db = Database::from_tables([fixtures::sales_relation()]);
        let a = run(&p, &db, &EvalLimits::default()).unwrap();
        let b = run(&opt, &db, &EvalLimits::default()).unwrap();
        assert!(compare_visible(&a, &b));
    }

    #[test]
    fn restructure_fusion_respects_multiple_readers_and_visible_targets() {
        // The grouped scratch is read twice: fusing would lose it.
        let mut multi = pivot_chain();
        multi = multi.assign(
            Param::name("Again"),
            OpKind::Copy,
            vec![Param::sym(scratch(1))],
        );
        assert_eq!(fuse_restructure(&multi).len(), 4);

        // A visible intermediate is observable output: never fused away.
        let visible = crate::parser::parse(
            "G <- GROUP[by {Region} on {Sold}](R)
             C <- CLEANUP[by {Part} on {_}](G)
             Out <- PURGE[on {Sold} by {Region}](C)",
        )
        .unwrap();
        assert_eq!(fuse_restructure(&visible).len(), 3);
    }

    #[test]
    fn restructure_fusion_requires_rigid_merge_parameters() {
        // `CLEANUP by *` denotes "all column attributes *of the grouped
        // intermediate*" — the rewrite would change what it expands to.
        let mut p = pivot_chain();
        let Statement::Assign(c) = &mut p.statements[1] else {
            panic!("assignment expected");
        };
        c.op = OpKind::CleanUp {
            by: Param::star(),
            on: Param::null(),
        };
        assert_eq!(fuse_restructure(&p).len(), 3);
    }

    #[test]
    fn restructure_fusion_reaches_into_while_bodies() {
        let p = Program::new()
            .assign(Param::name("W"), OpKind::Copy, vec![Param::name("R")])
            .while_nonempty(Param::name("W"), pivot_chain());
        let opt = fuse_restructure(&p);
        assert_eq!(opt.len(), 3, "{opt:?}");
    }

    /// Compare databases on their user-visible (non-scratch) tables.
    fn compare_visible(a: &Database, b: &Database) -> bool {
        let strip = |db: &Database| {
            let mut out = db.snapshot();
            out.retain(|t| !is_scratch(t.name()));
            out
        };
        strip(a).equiv(&strip(b))
    }
}
